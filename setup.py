"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools/wheel combination cannot perform PEP 660
editable installs (pip then falls back to the legacy ``setup.py develop``
path, which needs this file).
"""

from setuptools import setup

setup()

#!/usr/bin/env python3
"""Offline computation, installable tables: the serving-layer deployment.

The paper's premise is that routing tables are computed *once*, with as much
offline effort as needed, and then installed on the network.  This example
plays through that workflow end to end against the compiled serving layer:

1. an "offline planner" builds the strongest routing for the target network,
   audits it (guarantee verification + table statistics), and **compiles** it
   into a serving artifact — flat next-hop tables versioned on the routing
   fingerprint (`repro compile` does the same from the shell);
2. a "server operator" loads the artifact from disk *without access to the
   planner's code path* — the load verifies the payload checksum and the
   expected fingerprint — and exposes it over the asyncio JSON-lines
   protocol (`repro serve`);
3. "clients" connect with the thin :class:`repro.serving.ServingClient` and
   query next hops, full routes and the surviving diameter;
4. the operator **fails a node live**: one incremental delta on the server
   (no recompilation, no restart), a generation bump, and every following
   query answers for the degraded network — then the node is restored and
   service returns to the fault-free tables.

Run with::

    python examples/routing_table_deployment.py
"""

from __future__ import annotations

import asyncio
import os
import tempfile

from repro.analysis import format_table
from repro.core import build_routing, routing_statistics, verify_construction
from repro.graphs import generators
from repro.serving import (
    RoutingTableServer,
    ServingClient,
    ServingEngine,
    compile_routing_artifact,
    load_artifact,
)


def plan_and_compile(path: str) -> str:
    """The offline planner: build, audit, compile.  Returns the fingerprint."""
    graph = generators.circulant_graph(18, [1, 2])
    result = build_routing(graph, strategy="kernel+clique")
    print("--- offline planner ---")
    print(result.describe())

    report = verify_construction(result)
    stats = routing_statistics(result.routing)
    print()
    print(f"verification        : {report}")
    print(format_table([stats.as_row()], caption="route-table statistics"))

    artifact = compile_routing_artifact(graph, result.routing, scheme=result.scheme)
    artifact.save(path)
    print(f"\n{artifact.describe()}")
    print(f"serving artifact written to {path} ({os.path.getsize(path)} bytes)")
    return artifact.fingerprint


async def serve_and_query(path: str, fingerprint: str) -> None:
    """The operator + clients: load (verified), serve, query, fail, re-query."""
    print("\n--- server operator ---")
    # The load checks the payload checksum unconditionally and refuses the
    # artifact unless it was compiled from the expected routing (this is
    # what `repro serve --artifact ... --graph ...` does).
    artifact = load_artifact(path, expect_fingerprint=fingerprint)
    engine = ServingEngine(artifact)
    server = RoutingTableServer(engine)
    await server.start()
    host, port = server.address
    print(f"loaded + verified   : {artifact.describe()}")
    print(f"serving on          : {host}:{port}")

    print("\n--- clients ---")
    async with await ServingClient.connect(host, port) as client:
        info = await client.info()
        print(f"server info         : n={info['n']}, scheme={info['scheme']!r}, "
              f"backend={info['backend']}")

        probes = [(0, 9), (3, 12), (17, 5), (8, 2)]
        rows = []
        for source, target in probes:
            hop = await client.next_hop(source, target)
            route = await client.route(source, target)
            rows.append({
                "pair": f"{source}->{target}",
                "next hop": hop,
                "route": "-".join(str(n) for n in route) if route else "(none)",
            })
        print(format_table(rows, caption="fault-free forwarding queries"))
        diameter = await client.diameter()
        print(f"surviving diameter  : {diameter:g} (generation "
              f"{client.last_generation})")

        # --- live fault injection: one delta, no restart -------------
        victim = 9
        generation = await client.fail(victim)
        print(f"\nnode {victim} failed       : generation "
              f"{client.last_generation - 1} -> {generation}")
        rows = []
        for source, target in probes:
            hop = await client.next_hop(source, target)
            reachable = await client.reachable(source, target)
            rows.append({
                "pair": f"{source}->{target}",
                "next hop": "(no route)" if hop is None else hop,
                "reachable": "yes" if reachable else "NO",
            })
        print(format_table(rows, caption=f"queries with node {victim} failed"))
        degraded = await client.diameter()
        note = "disconnected" if degraded == float("inf") else f"{degraded:g}"
        print(f"degraded diameter   : {note}")

        # Batched queries answer against one consistent snapshot.
        nodes = [node for node in range(18) if node != victim]
        pairs = [(s, d) for s in nodes[:6] for d in nodes[-6:] if s != d]
        hops = await client.batch_next_hop(pairs)
        served = sum(1 for hop in hops if hop is not None)
        print(f"batch of {len(pairs)} queries  : {served} routed, "
              f"{len(pairs) - served} without a surviving route")

        # --- restore: the flap lands back on the cached fault state --
        await client.restore(victim)
        restored = await client.diameter()
        print(f"node {victim} restored     : diameter back to {restored:g} "
              f"(generation {client.last_generation})")

    stats = engine.stats()
    print(f"\nengine stats        : {stats['queries']} queries, "
          f"{stats['cursor_lru_hits']} cursor-cache hits, "
          f"generation {stats['generation']}")
    await server.stop()


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "routing.repart")
        fingerprint = plan_and_compile(path)
        asyncio.run(serve_and_query(path, fingerprint))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Offline computation, installable tables: the deployment workflow.

The paper's premise is that routing tables are computed *once*, with as much
offline effort as needed, and then installed on the network.  This example
plays through that workflow end to end:

1. an "offline planner" builds the strongest routing for the target network
   and audits it (guarantee verification + table statistics + concentrator
   load share);
2. the construction is exported to JSON — the install artifact a deployment
   system would ship to the nodes;
3. an "operator" process loads the artifact *without access to the planner's
   code path*, binds it to the live network, re-verifies the guarantee
   independently, and runs traffic over it with failures injected;
4. finally the per-node forwarding-table sizes are reported, since that is the
   memory each router must dedicate to the scheme.

Run with::

    python examples/routing_table_deployment.py
"""

from __future__ import annotations

import os
import tempfile

from repro.analysis import format_table
from repro.core import (
    build_routing,
    per_node_table_sizes,
    routing_statistics,
    concentrator_load_share,
    verify_construction,
)
from repro.graphs import generators
from repro.network import NetworkSimulator, ChecksumService
from repro.serialization import (
    construction_from_dict,
    construction_to_dict,
    load_json,
    save_json,
)


def plan_and_export(path: str) -> None:
    """The offline planner: build, audit, export."""
    graph = generators.circulant_graph(18, [1, 2])
    result = build_routing(graph, strategy="kernel+clique")
    print("--- offline planner ---")
    print(result.describe())

    report = verify_construction(result)
    stats = routing_statistics(result.routing)
    print()
    print(f"verification        : {report}")
    print(format_table([stats.as_row()], caption="route-table statistics"))
    print(f"concentrator share  : {concentrator_load_share(result.routing, result.concentrator):.0%}")

    save_json(construction_to_dict(result), path)
    print(f"\ninstall artifact written to {path} ({os.path.getsize(path)} bytes)")


def load_and_operate(path: str) -> None:
    """The operator: load the artifact, re-verify, run traffic with failures."""
    print("\n--- operator ---")
    document = load_json(path)
    result = construction_from_dict(document)
    print(f"loaded scheme       : {result.scheme}, guarantee {result.guarantee}")
    print(f"routes loaded       : {len(result.routing)}")

    # Independent re-verification from the artifact alone.
    report = verify_construction(result)
    print(f"re-verification     : {report}")

    # Run traffic with a concentrator member failed.
    graph = result.graph
    simulator = NetworkSimulator(graph, result.routing, service=ChecksumService())
    victim = result.concentrator[0]
    simulator.fail_node(victim)
    rows = []
    nodes = [node for node in graph.nodes() if node != victim]
    for origin, destination in zip(nodes[:6], reversed(nodes[-6:])):
        if origin == destination:
            continue
        receipt = simulator.send(origin, destination, f"{origin}->{destination}")
        rows.append(
            {
                "from": origin,
                "to": destination,
                "delivered": "yes" if receipt.delivered else "NO",
                "route_segments": receipt.routes_used,
            }
        )
    print(format_table(rows, caption=f"traffic with concentrator node {victim!r} failed"))

    # Per-node forwarding table sizes (the memory cost of the scheme).
    sizes = per_node_table_sizes(result.routing)
    largest = sorted(sizes.items(), key=lambda item: -item[1])[:5]
    print(
        format_table(
            [{"node": node, "stored_routes": count} for node, count in largest],
            caption="largest per-node forwarding tables",
        )
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        artifact = os.path.join(workdir, "routing-install.json")
        plan_and_export(artifact)
        load_and_operate(artifact)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Sparse random graphs: the two-trees property and bipolar routings in practice.

Theorem 25 says that almost every sparse random graph ``G(n, p)`` (with
``p <= c n^eps / n``, ``eps < 1/4``) admits the bipolar routings, because the
two-trees property holds almost everywhere in that regime (Lemma 24).  This
example measures that claim empirically:

1. sweep ``n`` and sample ``G(n, p)`` in the sparse regime, recording how often
   a fixed pair — and how often *some* pair — witnesses the two-trees
   property, next to Lemma 24's analytic bound on the failure probability;
2. take connected, 2-connected samples that have the property, build the
   unidirectional bipolar routing, and measure the worst surviving diameter
   over an adversarial fault battery (the paper's bound is 4);
3. show the contrast outside the regime: denser samples lose the property.

Run with::

    python examples/random_graph_survey.py
"""

from __future__ import annotations

from repro.analysis import format_table, sweep_two_trees
from repro.core import check_tolerance, unidirectional_bipolar_routing
from repro.graphs import generators, has_two_trees_property, is_connected, node_connectivity


def property_sweep() -> None:
    samples = sweep_two_trees(sizes=[40, 60, 80, 120], c=1.0, eps=0.2, samples=10, seed=1)
    rows = [sample.as_row() for sample in samples]
    print(format_table(rows, caption="Two-trees property in sparse G(n, p)  [p = n^0.2 / n]"))
    print()


def bipolar_on_samples() -> None:
    rows = []
    built = 0
    for seed in range(40):
        if built >= 4:
            break
        n = 36
        p = (n ** 0.2) / n
        graph = generators.gnp_random_graph(n, p, seed=seed)
        if not is_connected(graph):
            continue
        kappa = node_connectivity(graph)
        if kappa < 2 or not has_two_trees_property(graph):
            continue
        t = kappa - 1
        result = unidirectional_bipolar_routing(graph, t=t)
        report = check_tolerance(
            graph,
            result.routing,
            diameter_bound=4,
            max_faults=t,
            exhaustive_limit=300,
            concentrator=result.concentrator,
            seed=0,
        )
        rows.append(
            {
                "sample": f"gnp-{n} (seed {seed})",
                "kappa": kappa,
                "t": t,
                "measured_worst": report.worst_diameter,
                "paper_bound": 4,
                "mode": "exhaustive" if report.exhaustive else "adversarial",
            }
        )
        built += 1
    print(format_table(rows, caption="Unidirectional bipolar routing on sparse random samples"))
    print()


def dense_contrast() -> None:
    rows = []
    for p in (0.15, 0.3, 0.5):
        hits = 0
        samples = 6
        for seed in range(samples):
            graph = generators.gnp_random_graph(30, p, seed=100 + seed)
            if has_two_trees_property(graph):
                hits += 1
        rows.append({"p": p, "samples": samples, "two_trees_fraction": hits / samples})
    print(format_table(rows, caption="Contrast: the property vanishes for dense G(30, p)"))


def main() -> None:
    property_sweep()
    bipolar_on_samples()
    dense_contrast()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A running network: encrypted delivery, node failures, table recomputation.

This example exercises the systems side of the paper's model with the
discrete-event simulator in :mod:`repro.network`:

* a cluster interconnect is modelled as a flower graph (a ``(t+1)``-connected
  network engineered to have the neighbourhood set the tri-circular routing
  needs);
* every message carries its fixed source route and is encrypted / decrypted at
  the endpoints of each route segment (the paper's motivating scenario — the
  per-route endpoint processing dominates cost, so the number of route
  traversals is what matters);
* nodes fail mid-run; deliveries keep succeeding as long as the fault count
  stays below the connectivity, using at most ``diameter_bound`` route
  segments;
* finally the route-counter broadcast of Section 1 recomputes reachability,
  and we confirm it needs no more rounds than the surviving diameter.

Run with::

    python examples/datacenter_broadcast.py
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.core import surviving_diameter, tricircular_routing
from repro.graphs import synthetic
from repro.network import (
    NetworkSimulator,
    StackedService,
    XorEncryptionService,
    ChecksumService,
    route_counter_broadcast,
)


def main() -> None:
    # The cluster: t = 1 (2-connected), 15 designated concentrator nodes.
    graph, flowers = synthetic.flower_graph(t=1, k=15)
    result = tricircular_routing(graph, t=1, concentrator=flowers)
    print(f"cluster          : {graph!r}")
    print(f"routing          : {result.scheme}, guarantee {result.guarantee}")

    service = StackedService(XorEncryptionService(), ChecksumService())
    simulator = NetworkSimulator(graph, result.routing, service=service, hop_latency=0.05)

    rng = random.Random(7)
    ring_nodes = [node for node in graph.nodes() if node[0] == "ring"]
    rows = []

    def send_batch(label: str, count: int = 6) -> None:
        for index in range(count):
            origin, destination = rng.sample(ring_nodes, 2)
            if origin in simulator.failed_nodes() or destination in simulator.failed_nodes():
                continue
            receipt = simulator.send(origin, destination, f"{label}-payload-{index}")
            rows.append(
                {
                    "phase": label,
                    "from": str(origin),
                    "to": str(destination),
                    "delivered": "yes" if receipt.delivered else "NO",
                    "route_segments": receipt.routes_used,
                    "hops": receipt.hops,
                    "latency": round(receipt.latency, 2),
                }
            )

    # Phase 1: healthy network.
    send_batch("healthy")

    # Phase 2: one node fails (within the t = 1 budget).
    victim = flowers[0]
    simulator.fail_node(victim)
    print(f"\n*** node {victim!r} failed ***")
    send_batch("degraded")

    # Phase 3: the failed node is replaced / repaired.
    simulator.repair_node(victim)
    print(f"*** node {victim!r} repaired ***\n")
    send_batch("repaired")

    print(format_table(rows, caption="Message deliveries (endpoint encryption + checksums)"))

    # Every delivery in the degraded phase used at most `diameter_bound` route
    # segments, as the theorems promise.
    worst_segments = max(row["route_segments"] for row in rows if row["phase"] == "degraded")
    print(f"\nworst route segments while degraded: {worst_segments} "
          f"(bound: {result.guarantee.diameter_bound})")

    # Section 1's broadcast: recompute routing tables after the failure.  The
    # counter limit is a diameter bound, so whether it is safe is a bounded
    # *decision* (early-exit BFS), not an exact diameter evaluation.
    from repro.network import counter_limit_suffices

    simulator.fail_node(victim)
    limit_ok = counter_limit_suffices(
        graph, result.routing, result.guarantee.diameter_bound, faults={victim}
    )
    diameter = surviving_diameter(graph, result.routing, {victim})
    outcome = route_counter_broadcast(
        graph,
        result.routing,
        origin=ring_nodes[0],
        faults={victim},
        counter_limit=result.guarantee.diameter_bound,
    )
    print(f"\nroute-counter broadcast from {ring_nodes[0]!r} with node {victim!r} down:")
    print(f"  counter limit safe   : {'yes' if limit_ok else 'NO'} (bounded decision)")
    print(f"  surviving diameter   : {diameter}")
    print(f"  rounds used          : {outcome.rounds_used}")
    print(f"  nodes reached        : {len(outcome.reached)} / {graph.number_of_nodes() - 1}")
    print(f"  messages transmitted : {outcome.messages_sent}")
    print(f"  coverage             : {outcome.coverage():.0%}")

    print(f"\nsimulator summary: {simulator.describe()}")


if __name__ == "__main__":
    main()

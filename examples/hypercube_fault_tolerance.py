#!/usr/bin/env python3
"""Interconnection networks: comparing constructions on hypercube-family graphs.

The paper motivates its constructions with the interconnection networks used
in distributed systems — the hypercube and its bounded-degree realisations,
the cube-connected cycles (CCC) and the butterfly ("d-way shuffle").  This
example builds every applicable construction on each of those networks, then
reports, per construction,

* the proven ``(d, f)`` guarantee,
* the route-table size (the cost of the routing), and
* the measured worst surviving diameter over an adversarial battery of fault
  sets of the admissible size,

so you can see the trade-off the paper is about: stronger constructions need
stronger structural properties but promise smaller surviving diameters.

Run with::

    python examples/hypercube_fault_tolerance.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import applicable_strategies, build_routing, check_tolerance
from repro.graphs import generators, node_connectivity


NETWORKS = [
    ("hypercube Q3", generators.hypercube_graph(3)),
    ("hypercube Q4", generators.hypercube_graph(4)),
    ("CCC(3)", generators.cube_connected_cycles_graph(3)),
    ("wrapped butterfly(3)", generators.butterfly_graph(3, wrapped=True)),
    ("torus 4x4", generators.torus_graph(4, 4)),
]


def main() -> None:
    rows = []
    for name, graph in NETWORKS:
        t = node_connectivity(graph) - 1
        strategies = applicable_strategies(graph, t=t)
        print(f"{name}: n={graph.number_of_nodes()}, kappa={t + 1}, "
              f"applicable constructions: {strategies}")
        for strategy in strategies:
            result = build_routing(graph, strategy=strategy, t=t)
            report = check_tolerance(
                result.graph,
                result.routing,
                result.guarantee.diameter_bound,
                result.guarantee.max_faults,
                exhaustive_limit=300,
                concentrator=result.concentrator,
                seed=0,
            )
            rows.append(
                {
                    "network": name,
                    "n": graph.number_of_nodes(),
                    "t": t,
                    "construction": result.scheme,
                    "guarantee": str(result.guarantee),
                    "routes": len(result.routing),
                    "measured_worst": report.worst_diameter,
                    "mode": "exhaustive" if report.exhaustive else "adversarial",
                }
            )

    print()
    print(
        format_table(
            rows,
            caption="Fault-tolerant routings on the paper's interconnection networks",
        )
    )
    print()
    print("Reading the table: 'measured_worst' never exceeds the bound inside")
    print("'guarantee'; the kernel fallback applies everywhere, while the")
    print("circular / bipolar constructions need the structural properties of")
    print("Sections 4 and 5 (hypercubes lack them at these sizes - their girth")
    print("is 4 and their neighbourhood sets are small - which is exactly why")
    print("the paper highlights sparse, high-girth networks).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: build a fault-tolerant routing, break the network, keep talking.

This example walks through the library's core loop on a small network:

1. generate a graph (a circulant network of connectivity 4, so ``t = 3``);
2. let :func:`repro.build_routing` pick the strongest applicable construction;
3. inspect the routing and its proven ``(d, f)`` guarantee;
4. inject faults and look at the surviving route graph's diameter;
5. check the guarantee against every fault set of the admissible size.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_routing, surviving_diameter
from repro.core import surviving_route_graph, verify_construction
from repro.faults import FaultSet
from repro.graphs import generators


def main() -> None:
    # 1. The network: a 4-regular circulant on 16 nodes (connectivity 4 => t = 3).
    graph = generators.circulant_graph(16, [1, 2])
    print(f"network           : {graph!r}")

    # 2. Build a routing.  "auto" tries the strongest construction first
    #    (tri-circular, then bipolar, then circular, then the kernel fallback).
    result = build_routing(graph)
    print()
    print(result.describe())

    # 3. The guarantee is a worst-case statement: for ANY fault set of at most
    #    `max_faults` nodes, the surviving route graph has diameter at most
    #    `diameter_bound`.
    guarantee = result.guarantee
    print()
    print(f"proven guarantee  : {guarantee}")

    # 4. Break something and look at the surviving route graph.
    faults = FaultSet({0, 5}, description="two failed routers")
    surviving = surviving_route_graph(graph, result.routing, faults)
    diameter = surviving_diameter(graph, result.routing, faults)
    print()
    print(f"failed nodes      : {sorted(faults)}")
    print(f"surviving graph   : {surviving!r}")
    print(f"surviving diameter: {diameter}  (every pair still within {diameter} route hops)")

    # 5. Verify the guarantee against a battery of fault sets (exhaustive when
    #    feasible, adversarial otherwise).
    report = verify_construction(result)
    print()
    print(f"verification      : {report}")
    if report.holds:
        print("the measured worst case respects the paper's bound.")
    else:
        print("BOUND VIOLATED - this would indicate a bug, please report it.")


if __name__ == "__main__":
    main()

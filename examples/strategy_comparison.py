#!/usr/bin/env python3
"""Strategy comparison: the paper's side-by-side tables in one grid sweep.

Peleg & Simons prove different surviving-diameter bounds per construction
(kernel: Theorems 3/4; circular: Theorem 10).  This example sweeps both
strategies over the same workloads with one grid spec and renders the
comparison table — rows are family/size, column groups are strategy × ``t``,
cells are ``mean ± worst`` surviving diameter — then shows that splitting
the sweep per strategy into two stores and merging them reproduces the
same table byte for byte.

Run with::

    python examples/strategy_comparison.py
"""

from __future__ import annotations

import os
import tempfile

from repro.analysis import render_scaling_report
from repro.results import ResultStore, merge_result_stores, result_frame
from repro.scenarios import expand_grids, run_scenario_suite, suite_manifest

#: One spec, full cross-product: strategies × sizes × t.
GRID = "cycle:n=10..14/kernel|circular/t=1/sizes:1"
SAMPLES, SEED = 20, 7


def main() -> None:
    # 1. One combined sweep.  A strategy set expands to one scenario per
    #    member; inapplicable strategy/graph combinations would simply be
    #    skipped (empty table cells) with skip_inapplicable=True.
    scenarios = expand_grids([GRID])
    run = suite_manifest(scenarios, SAMPLES, SEED)
    rows = run_scenario_suite(scenarios, samples=SAMPLES, seed=SEED)
    frame = result_frame(row.record() for row in rows)
    report = render_scaling_report(frame, run)
    print(report)

    # 2. The same sweep, split per strategy into separate stores.  Battery
    #    seeds hash scenario identity — not suite position — so each half
    #    computes exactly the rows the combined run did.
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for strategy in ("kernel", "circular"):
            spec = GRID.replace("kernel|circular", strategy)
            half = expand_grids([spec])
            path = os.path.join(tmp, f"{strategy}.jsonl")
            with ResultStore.open(path, suite_manifest(half, SAMPLES, SEED)) as store:
                run_scenario_suite(half, samples=SAMPLES, seed=SEED, store=store)
            paths.append(path)

        # 3. Merge and re-render.  Duplicate keys must agree (a fingerprint
        #    mismatch would mean different constructions — a hard error);
        #    the merged table equals the combined run's.
        merged = merge_result_stores(paths)
        merged_report = render_scaling_report(merged.frame, run)

    table = report[report.index("| family") :]
    merged_table = merged_report[merged_report.index("| family") :]
    print()
    print(
        "split-per-strategy stores merged back: table "
        + ("IDENTICAL to the combined run" if merged_table == table else "DIVERGES")
    )


if __name__ == "__main__":
    main()

"""Compiled routing-table serving layer.

The offline pipeline builds a routing once, with as much effort as needed;
this package turns the result into something that can *serve*: a compact,
immutable, versioned artifact of flat next-hop tables (:mod:`.artifact`), a
query engine answering next-hop / route / reachability / surviving-diameter
queries against it at memory-bandwidth speed with incremental live fault
updates (:mod:`.engine`), and an asyncio front end multiplexing concurrent
clients over one engine (:mod:`.server`, :mod:`.client`).
"""

from repro.serving.artifact import (
    ARTIFACT_FORMAT_VERSION,
    RoutingArtifact,
    compile_routing_artifact,
    load_artifact,
)
from repro.serving.client import ServingClient
from repro.serving.engine import EngineView, ServingEngine
from repro.serving.server import RoutingTableServer

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "RoutingArtifact",
    "compile_routing_artifact",
    "load_artifact",
    "ServingEngine",
    "EngineView",
    "RoutingTableServer",
    "ServingClient",
]

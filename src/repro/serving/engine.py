"""Memory-bandwidth query engine over a compiled routing artifact.

The engine splits the serving problem in two:

* :class:`EngineView` — an **immutable snapshot** of one fault state.  A view
  owns the :class:`~repro.core.route_index.EvalCursor` for its fault set plus
  the lazily packed lookup structures queries touch, and never changes after
  creation: a batch that grabbed a view keeps answering against that exact
  fault state even while the engine applies further updates.
* :class:`ServingEngine` — the **mutable front**.  It holds the current view,
  applies ``fail(node)`` / ``restore(node)`` deltas through
  ``EvalCursor.with_added`` (never a from-scratch re-evaluation), bumps a
  generation counter per update, and keeps a small LRU of hot
  ``fault_mask → EvalCursor`` states so a fault that flaps — fail, restore,
  fail again — lands back on its memoised cursor (diameter, witnesses,
  reachability) instead of paying for the evaluation twice.

Point queries go through flat-table lookups (one index into the artifact's
``next_hop`` array plus one bit test against the cursor's surviving rows).
The batch API additionally vectorises through numpy when available: the
surviving rows are packed once per view into a ``(n, ceil(n/64))`` uint64
matrix and a whole batch becomes two gathers and a shift — no per-query
Python at all.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.route_index import EvalCursor, RouteIndex
from repro.exceptions import FaultModelError, ServingError
from repro.serving.artifact import RoutingArtifact

Node = Hashable

_INF = float("inf")


def _numpy():
    """Return the numpy module when the packed backend is usable, else None."""
    from repro.core.np_kernel import numpy_available

    if not numpy_available():
        return None
    import numpy

    return numpy


class EngineView:
    """One immutable fault-state snapshot of a :class:`ServingEngine`.

    All queries answer for exactly the fault set the view was created with;
    the engine's later updates produce *new* views and leave this one intact
    (that is the consistency model: a batch holds one view for its whole
    lifetime, so it never observes a half-applied update).
    """

    __slots__ = (
        "artifact",
        "index",
        "generation",
        "fault_mask",
        "cursor",
        "_np_effective",
        "_reach_masks",
        "_multi_lookup",
    )

    def __init__(
        self,
        artifact: RoutingArtifact,
        index: RouteIndex,
        generation: int,
        cursor: EvalCursor,
        multi_lookup: Optional[Dict[Tuple[int, int], Tuple[int, int]]],
    ) -> None:
        self.artifact = artifact
        self.index = index
        self.generation = generation
        self.fault_mask = cursor._fault_mask
        self.cursor = cursor
        self._np_effective = None  # lazy flat effective next-hop table
        self._reach_masks: Dict[int, int] = {}
        self._multi_lookup = multi_lookup

    # ------------------------------------------------------------------
    # Fault set
    # ------------------------------------------------------------------
    @property
    def faults(self) -> Tuple[Node, ...]:
        """The view's faulty nodes, in id order."""
        nodes = self.artifact.nodes
        return tuple(nodes[nid] for nid in self.cursor._fault_id_list())

    def is_faulty(self, node: Node) -> bool:
        nid = self.artifact.id_of.get(node)
        return nid is not None and bool((self.fault_mask >> nid) & 1)

    # ------------------------------------------------------------------
    # Point queries (label-based)
    # ------------------------------------------------------------------
    def _ids(self, source: Node, target: Node) -> Tuple[int, int]:
        id_of = self.artifact.id_of
        sid = id_of.get(source)
        tid = id_of.get(target)
        if sid is None or tid is None:
            missing = source if sid is None else target
            raise FaultModelError(
                f"node {missing!r} is not a node of the served routing"
            )
        return sid, tid

    def next_hop(self, source: Node, target: Node) -> Optional[Node]:
        """First hop of the first surviving route ``source -> target``.

        ``None`` when the pair has no surviving route under the view's fault
        set (including either endpoint being faulty, or the pair never having
        been routed at all).
        """
        sid, tid = self._ids(source, target)
        hop = self.next_hop_id(sid, tid)
        return None if hop < 0 else self.artifact.nodes[hop]

    def route(self, source: Node, target: Node) -> Optional[Tuple[Node, ...]]:
        """The full first surviving route, as node labels, or ``None``."""
        sid, tid = self._ids(source, target)
        ids = self.route_ids(sid, tid)
        if ids is None:
            return None
        nodes = self.artifact.nodes
        return tuple(nodes[nid] for nid in ids)

    def reachable(self, source: Node, target: Node) -> bool:
        """Is ``target`` reachable from ``source`` in ``R(G, rho)/F``?"""
        sid, tid = self._ids(source, target)
        if (self.fault_mask >> sid) & 1 or (self.fault_mask >> tid) & 1:
            return False
        return bool((self._reach_mask(sid) >> tid) & 1)

    def surviving_diameter(self, cap: Optional[float] = None) -> float:
        """Diameter of the surviving route graph (memoised on the cursor)."""
        return self.cursor.diameter(cap=cap)

    # ------------------------------------------------------------------
    # Point queries (id-native)
    # ------------------------------------------------------------------
    def next_hop_id(self, sid: int, tid: int) -> int:
        """Id-native :meth:`next_hop`: the hop id, or ``-1``."""
        artifact = self.artifact
        if not self.fault_mask:
            return artifact.next_hop[sid * artifact.n + tid]
        rows = self.cursor._materialise_rows()
        if not (rows[sid] >> tid) & 1:
            return -1
        if not artifact.multi:
            return artifact.next_hop[sid * artifact.n + tid]
        ids = self._surviving_multi_route(sid, tid)
        return -1 if ids is None else ids[1]

    def route_ids(self, sid: int, tid: int) -> Optional[Tuple[int, ...]]:
        """Id-native :meth:`route`: the surviving route's ids, or ``None``."""
        artifact = self.artifact
        if not self.fault_mask:
            ids = artifact.route_ids(sid, tid)
            return ids or None
        rows = self.cursor._materialise_rows()
        if not (rows[sid] >> tid) & 1:
            return None
        if not artifact.multi:
            return artifact.route_ids(sid, tid)
        return self._surviving_multi_route(sid, tid)

    def _surviving_multi_route(
        self, sid: int, tid: int
    ) -> Optional[Tuple[int, ...]]:
        """First route of ``(sid, tid)`` disjoint from the view's faults."""
        entry = self._multi_lookup.get((sid, tid))
        if entry is None:
            return None
        route_base, count = entry
        artifact = self.artifact
        fault_mask = self.fault_mask
        for position in range(count):
            if artifact.pair_route_masks[route_base + position] & fault_mask:
                continue
            route_no = route_base + position
            start = artifact.multi_route_offsets[route_no]
            stop = artifact.multi_route_offsets[route_no + 1]
            return tuple(artifact.multi_route_nodes[start:stop])
        return None

    def _reach_mask(self, sid: int) -> int:
        """Memoised reachability closure of ``sid`` over the surviving rows."""
        reach = self._reach_masks.get(sid)
        if reach is None:
            rows = self.cursor._materialise_rows()
            reach = 1 << sid
            frontier = rows[sid] & ~reach
            reach |= frontier
            while frontier:
                step = 0
                while frontier:
                    bit = frontier & -frontier
                    step |= rows[bit.bit_length() - 1]
                    frontier ^= bit
                frontier = step & ~reach
                reach |= frontier
            self._reach_masks[sid] = reach
        return reach

    # ------------------------------------------------------------------
    # Batch queries
    # ------------------------------------------------------------------
    def batch_next_hop(
        self, pairs: Iterable[Tuple[Node, Node]]
    ) -> List[Optional[Node]]:
        """Next hops for a batch of ``(source, target)`` label pairs."""
        id_of = self.artifact.id_of
        sources: List[int] = []
        targets: List[int] = []
        for source, target in pairs:
            sid, tid = id_of.get(source), id_of.get(target)
            if sid is None or tid is None:
                missing = source if id_of.get(source) is None else target
                raise FaultModelError(
                    f"node {missing!r} is not a node of the served routing"
                )
            sources.append(sid)
            targets.append(tid)
        nodes = self.artifact.nodes
        return [
            None if hop < 0 else nodes[hop]
            for hop in self.batch_next_hop_ids(sources, targets)
        ]

    def batch_next_hop_ids(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> Sequence[int]:
        """Id-native batch next-hop: one ``int`` per pair (``-1`` = no route).

        On the numpy backend (single routings) the view compiles its fault
        state into a flat *effective* next-hop table on first use — the
        artifact's table with every faulted-out pair already set to ``-1``
        (views are immutable, so the table never goes stale) — and a whole
        batch is then a single fancy-index gather: the memory-bandwidth path
        the serving gate measures.  The result mirrors the input container:
        numpy arrays in, an ``int32`` array out (zero conversion cost);
        plain sequences in, a list out.  Multiroutings and numpy-less
        processes fall back to a tight Python loop over the flat data.
        """
        artifact = self.artifact
        if not artifact.multi:
            np = _numpy()
            if np is not None:
                table = self._np_effective
                if table is None:
                    table = self._np_effective = self._compile_np_table(np)
                sid = np.asarray(sources, dtype=np.int64)
                tid = np.asarray(targets, dtype=np.int64)
                out = table[sid * artifact.n + tid]
                if isinstance(sources, np.ndarray):
                    return out
                return out.tolist()
        # Fallback: flat-table loop (still no per-query object churn).
        n = artifact.n
        next_hop = artifact.next_hop
        if not self.fault_mask:
            return [
                next_hop[sid * n + tid] for sid, tid in zip(sources, targets)
            ]
        rows = self.cursor._materialise_rows()
        if artifact.multi:
            out: List[int] = []
            for sid, tid in zip(sources, targets):
                if (rows[sid] >> tid) & 1:
                    ids = self._surviving_multi_route(sid, tid)
                    out.append(-1 if ids is None else ids[1])
                else:
                    out.append(-1)
            return out
        return [
            next_hop[sid * n + tid] if (rows[sid] >> tid) & 1 else -1
            for sid, tid in zip(sources, targets)
        ]

    def _compile_np_table(self, np):
        """Flatten this view's fault state into one effective next-hop table.

        ``table[s * n + d]`` is the surviving next hop of ``(s, d)`` or
        ``-1`` — the artifact's flat table with the cursor's dead arcs
        already masked out, so per-batch work drops to a single gather.
        Built once per view (the fault set is frozen by construction).
        """
        artifact = self.artifact
        n = artifact.n
        rows = self.cursor._materialise_rows()
        width = (n + 7) // 8
        buffer = b"".join(row.to_bytes(width, "little") for row in rows)
        alive = np.unpackbits(
            np.frombuffer(buffer, dtype=np.uint8).reshape(n, width),
            axis=1,
            bitorder="little",
        )[:, :n]
        hops = np.frombuffer(artifact.next_hop, dtype="<i4")
        return np.where(alive.reshape(-1) != 0, hops, np.int32(-1))


class ServingEngine:
    """Mutable serving front over one artifact: views, deltas, cursor LRU."""

    def __init__(
        self,
        artifact: RoutingArtifact,
        *,
        backend: Optional[str] = None,
        cursor_lru: int = 128,
    ) -> None:
        if cursor_lru < 1:
            raise ServingError("cursor_lru must be at least 1")
        self.artifact = artifact
        self.index = artifact.to_index(backend=backend)
        self._lru_size = cursor_lru
        # fault_mask -> EvalCursor.  The base (fault-free) cursor is pinned
        # outside the LRU: every restore path replays from it.
        self._base_cursor = self.index.cursor(())
        self._lru: "OrderedDict[int, EvalCursor]" = OrderedDict()
        self._generation = 0
        self._lru_hits = 0
        self._lru_misses = 0
        self._queries = 0
        self._batched = 0
        multi_lookup: Optional[Dict[Tuple[int, int], Tuple[int, int]]] = None
        if artifact.multi:
            multi_lookup = {}
            route_base = 0
            for pair, count in zip(
                artifact.pair_list, artifact.pair_route_counts
            ):
                multi_lookup[pair] = (route_base, count)
                route_base += count
        self._multi_lookup = multi_lookup
        self._view = EngineView(
            artifact, self.index, self._generation, self._base_cursor,
            multi_lookup,
        )

    # ------------------------------------------------------------------
    # Consistency model
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic update counter; each fault delta bumps it by one."""
        return self._generation

    def view(self) -> EngineView:
        """The current immutable snapshot.

        Grab one view per logical batch: the snapshot keeps answering for
        its own generation even while :meth:`fail` / :meth:`restore` move
        the engine on.
        """
        return self._view

    # ------------------------------------------------------------------
    # Incremental fault updates
    # ------------------------------------------------------------------
    def _cursor_for(self, fault_ids: Sequence[int]) -> EvalCursor:
        """Cursor for an arbitrary fault-id set, via LRU or delta replay."""
        mask = 0
        for nid in fault_ids:
            mask |= 1 << nid
        if mask == 0:
            return self._base_cursor
        cached = self._lru.get(mask)
        if cached is not None:
            self._lru.move_to_end(mask)
            self._lru_hits += 1
            return cached
        self._lru_misses += 1
        # Replay deltas from the deepest cached prefix (longest chain of
        # with_added steps we already paid for), falling back to the base
        # cursor.  Never re-evaluates from scratch.
        cursor = self._base_cursor
        prefix = 0
        for nid in fault_ids:
            probe = prefix | (1 << nid)
            hit = self._lru.get(probe)
            if hit is None:
                break
            cursor, prefix = hit, probe
        nodes = self.artifact.nodes
        for nid in fault_ids:
            bit = 1 << nid
            if prefix & bit:
                continue
            cursor = cursor.with_added(nodes[nid])
            prefix |= bit
            self._remember(prefix, cursor)
        return cursor

    def _remember(self, mask: int, cursor: EvalCursor) -> None:
        self._lru[mask] = cursor
        self._lru.move_to_end(mask)
        while len(self._lru) > self._lru_size:
            self._lru.popitem(last=False)

    def _swap_view(self, cursor: EvalCursor) -> int:
        self._generation += 1
        self._view = EngineView(
            self.artifact, self.index, self._generation, cursor,
            self._multi_lookup,
        )
        return self._generation

    def fail(self, node: Node) -> int:
        """Mark ``node`` faulty; returns the new generation.

        A pure delta: the new state's cursor derives from the current one
        via ``EvalCursor.with_added`` (lazy row delta, inherited witnesses)
        — or comes straight out of the LRU when this fault set was seen
        before.  A node that is already faulty is a no-op (same generation).
        """
        nid = self.artifact.id_of.get(node)
        if nid is None:
            raise FaultModelError(
                f"faulty node {node!r} is not a node of the served routing"
            )
        view = self._view
        bit = 1 << nid
        if view.fault_mask & bit:
            return self._generation
        mask = view.fault_mask | bit
        cursor = self._lru.get(mask)
        if cursor is not None:
            self._lru.move_to_end(mask)
            self._lru_hits += 1
        else:
            self._lru_misses += 1
            cursor = view.cursor.with_added(node)
            self._remember(mask, cursor)
        return self._swap_view(cursor)

    def restore(self, node: Node) -> int:
        """Clear ``node``'s fault; returns the new generation.

        ``with_added`` only knows how to *grow* a fault set, so a restore
        re-derives the remaining set by replaying deltas from the deepest
        LRU-cached prefix (usually the immediate predecessor state, making
        the common fail→restore flap a pure cache hit).  A node that is not
        faulty is a no-op.
        """
        nid = self.artifact.id_of.get(node)
        if nid is None:
            raise FaultModelError(
                f"restored node {node!r} is not a node of the served routing"
            )
        view = self._view
        bit = 1 << nid
        if not view.fault_mask & bit:
            return self._generation
        remaining = [i for i in view.cursor._fault_id_list() if i != nid]
        cursor = self._cursor_for(remaining)
        return self._swap_view(cursor)

    def set_faults(self, nodes: Iterable[Node]) -> int:
        """Replace the whole fault set at once; returns the new generation."""
        id_of = self.artifact.id_of
        ids = []
        for node in nodes:
            nid = id_of.get(node)
            if nid is None:
                raise FaultModelError(
                    f"faulty node {node!r} is not a node of the served routing"
                )
            ids.append(nid)
        cursor = self._cursor_for(sorted(set(ids)))
        return self._swap_view(cursor)

    # ------------------------------------------------------------------
    # Query facade (current view)
    # ------------------------------------------------------------------
    @property
    def faults(self) -> Tuple[Node, ...]:
        return self._view.faults

    def next_hop(self, source: Node, target: Node) -> Optional[Node]:
        self._queries += 1
        return self._view.next_hop(source, target)

    def route(self, source: Node, target: Node) -> Optional[Tuple[Node, ...]]:
        self._queries += 1
        return self._view.route(source, target)

    def reachable(self, source: Node, target: Node) -> bool:
        self._queries += 1
        return self._view.reachable(source, target)

    def surviving_diameter(self, cap: Optional[float] = None) -> float:
        self._queries += 1
        return self._view.surviving_diameter(cap=cap)

    def batch_next_hop(
        self, pairs: Sequence[Tuple[Node, Node]]
    ) -> List[Optional[Node]]:
        self._queries += len(pairs)
        self._batched += len(pairs)
        return self._view.batch_next_hop(pairs)

    def batch_next_hop_ids(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> Sequence[int]:
        self._queries += len(sources)
        self._batched += len(sources)
        return self._view.batch_next_hop_ids(sources, targets)

    def note_queries(self, count: int, batched: bool = False) -> None:
        """Record queries answered off a view directly (the server does)."""
        self._queries += count
        if batched:
            self._batched += count

    def stats(self) -> Dict[str, object]:
        """Operational counters (served by the ``stats`` wire op)."""
        return {
            "generation": self._generation,
            "faults": len(self._view.cursor._fault_id_list()),
            "queries": self._queries,
            "batched_queries": self._batched,
            "cursor_lru_size": len(self._lru),
            "cursor_lru_hits": self._lru_hits,
            "cursor_lru_misses": self._lru_misses,
            "backend": self.index.eval_backend,
            "fingerprint": self.artifact.fingerprint,
            "n": self.artifact.n,
        }

"""Thin asyncio client for :class:`~repro.serving.server.RoutingTableServer`.

Speaks the JSON-lines protocol documented in :mod:`repro.serving.server`.
One client owns one connection; requests are serialised on it (the protocol
is strictly request/response), so share a client only from one task or wrap
calls in your own lock.  Every reply's ``generation`` is remembered in
:attr:`ServingClient.last_generation` so callers can watch fault updates
propagate.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import ServingError
from repro.serialization import decode_node, encode_node

Node = Hashable

_MAX_LINE = 16 * 1024 * 1024


class ServingClient:
    """One JSON-lines connection to a routing-table server."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.last_generation: Optional[int] = None

    @classmethod
    async def connect(cls, host: str, port: int) -> "ServingClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=_MAX_LINE
        )
        return cls(reader, writer)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "ServingClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    async def _call(self, op: str, **fields: Any) -> Any:
        request = {"op": op, **fields}
        self._writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ServingError(f"server closed the connection during {op!r}")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServingError(
                f"server rejected {op!r}: {response.get('error')} "
                f"({response.get('kind')})"
            )
        generation = response.get("generation")
        if generation is not None:
            self.last_generation = generation
        return response.get("result")

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    async def ping(self) -> str:
        return await self._call("ping")

    async def info(self) -> Dict[str, Any]:
        info = await self._call("info")
        protocol = info.get("protocol")
        if protocol != 1:
            raise ServingError(
                f"server speaks protocol {protocol!r}; this client speaks 1"
            )
        return info

    async def stats(self) -> Dict[str, Any]:
        return await self._call("stats")

    async def next_hop(self, source: Node, target: Node) -> Optional[Node]:
        result = await self._call(
            "next_hop", source=encode_node(source), target=encode_node(target)
        )
        return None if result is None else decode_node(result)

    async def route(
        self, source: Node, target: Node
    ) -> Optional[Tuple[Node, ...]]:
        result = await self._call(
            "route", source=encode_node(source), target=encode_node(target)
        )
        if result is None:
            return None
        return tuple(decode_node(node) for node in result)

    async def reachable(self, source: Node, target: Node) -> bool:
        return await self._call(
            "reachable", source=encode_node(source), target=encode_node(target)
        )

    async def diameter(self, cap: Optional[float] = None) -> float:
        """Surviving diameter; ``inf`` when disconnected (or above ``cap``)."""
        result = await self._call("diameter", cap=cap)
        return float("inf") if result is None else result

    async def batch_next_hop(
        self, pairs: Sequence[Tuple[Node, Node]]
    ) -> List[Optional[Node]]:
        result = await self._call(
            "batch_next_hop",
            pairs=[
                [encode_node(source), encode_node(target)]
                for source, target in pairs
            ],
        )
        return [
            None if hop is None else decode_node(hop) for hop in result
        ]

    async def faults(self) -> Tuple[Node, ...]:
        result = await self._call("faults")
        return tuple(decode_node(node) for node in result)

    async def fail(self, node: Node) -> int:
        """Mark ``node`` faulty; returns the server's new generation."""
        await self._call("fail", node=encode_node(node))
        return self.last_generation

    async def restore(self, node: Node) -> int:
        """Clear ``node``'s fault; returns the server's new generation."""
        await self._call("restore", node=encode_node(node))
        return self.last_generation

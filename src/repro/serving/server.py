"""Asyncio front end multiplexing concurrent clients over one serving engine.

The wire protocol is JSON lines: each request is one JSON object terminated
by ``\\n``, each response one JSON object on its own line.  Requests carry an
``op`` plus op-specific fields; node labels travel through
:func:`repro.serialization.encode_node` tagging (so tuple labels survive the
trip).  Every successful response carries the ``generation`` it was answered
at — for query ops that is the generation of the snapshot the whole request
was served from (batch requests grab one :class:`~repro.serving.engine
.EngineView` up front, so a concurrent ``fail`` never tears a batch).

Ops: ``ping``, ``info``, ``stats``, ``next_hop``, ``route``, ``reachable``,
``diameter``, ``batch_next_hop``, ``fail``, ``restore``, ``faults``.
Errors come back as ``{"ok": false, "error": ..., "kind": ...}`` and keep
the connection open; malformed JSON closes it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from repro.exceptions import ReproError, ServingError
from repro.serialization import decode_node, encode_node
from repro.serving.engine import ServingEngine

#: Protocol revision, reported by ``info`` and checked by the thin client.
PROTOCOL_VERSION = 1

_MAX_LINE = 16 * 1024 * 1024


class RoutingTableServer:
    """Serve one :class:`ServingEngine` to many concurrent clients."""

    def __init__(
        self,
        engine: ServingEngine,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.engine = engine
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port, limit=_MAX_LINE
        )

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — resolves port 0 to the real port."""
        if self._server is None:
            raise ServingError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        await self.start()
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except ValueError:
                    break  # not speaking the protocol; drop the connection
                response = self._dispatch(request)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # peer vanished or server shut down mid-close

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, request: Any) -> Dict[str, Any]:
        if not isinstance(request, dict):
            return _error("request must be a JSON object")
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            response = _error(f"unknown op {op!r}", request)
        else:
            try:
                response = handler(request)
            except ReproError as exc:
                response = _error(str(exc), request, kind=type(exc).__name__)
            except (KeyError, TypeError, ValueError) as exc:
                response = _error(
                    f"bad request: {exc}", request, kind="bad-request"
                )
        if "id" in request:
            response["id"] = request["id"]
        return response

    # -- read ops -------------------------------------------------------
    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return _ok(request, "pong", self.engine.generation)

    def _op_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        artifact = self.engine.artifact
        return _ok(
            request,
            {
                "protocol": PROTOCOL_VERSION,
                "fingerprint": artifact.fingerprint,
                "n": artifact.n,
                "multi": artifact.multi,
                "scheme": artifact.scheme,
                "routing_name": artifact.routing_name,
                "backend": self.engine.index.eval_backend,
            },
            self.engine.generation,
        )

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return _ok(request, self.engine.stats(), self.engine.generation)

    def _op_next_hop(self, request: Dict[str, Any]) -> Dict[str, Any]:
        view = self.engine.view()
        self.engine.note_queries(1)
        hop = view.next_hop(
            decode_node(request["source"]), decode_node(request["target"])
        )
        return _ok(
            request, None if hop is None else encode_node(hop), view.generation
        )

    def _op_route(self, request: Dict[str, Any]) -> Dict[str, Any]:
        view = self.engine.view()
        self.engine.note_queries(1)
        path = view.route(
            decode_node(request["source"]), decode_node(request["target"])
        )
        result = None if path is None else [encode_node(node) for node in path]
        return _ok(request, result, view.generation)

    def _op_reachable(self, request: Dict[str, Any]) -> Dict[str, Any]:
        view = self.engine.view()
        self.engine.note_queries(1)
        value = view.reachable(
            decode_node(request["source"]), decode_node(request["target"])
        )
        return _ok(request, value, view.generation)

    def _op_diameter(self, request: Dict[str, Any]) -> Dict[str, Any]:
        view = self.engine.view()
        self.engine.note_queries(1)
        cap = request.get("cap")
        value = view.surviving_diameter(cap=cap)
        # JSON has no Infinity; null means disconnected / above the cap.
        result = None if value == float("inf") else value
        return _ok(request, result, view.generation)

    def _op_batch_next_hop(self, request: Dict[str, Any]) -> Dict[str, Any]:
        view = self.engine.view()  # one snapshot for the whole batch
        pairs = [
            (decode_node(source), decode_node(target))
            for source, target in request["pairs"]
        ]
        self.engine.note_queries(len(pairs), batched=True)
        hops = view.batch_next_hop(pairs)
        result = [
            None if hop is None else encode_node(hop) for hop in hops
        ]
        return _ok(request, result, view.generation)

    def _op_faults(self, request: Dict[str, Any]) -> Dict[str, Any]:
        view = self.engine.view()
        return _ok(
            request,
            [encode_node(node) for node in view.faults],
            view.generation,
        )

    # -- write ops ------------------------------------------------------
    def _op_fail(self, request: Dict[str, Any]) -> Dict[str, Any]:
        generation = self.engine.fail(decode_node(request["node"]))
        return _ok(request, True, generation)

    def _op_restore(self, request: Dict[str, Any]) -> Dict[str, Any]:
        generation = self.engine.restore(decode_node(request["node"]))
        return _ok(request, True, generation)


def _ok(request: Dict[str, Any], result: Any, generation: int) -> Dict[str, Any]:
    return {"ok": True, "result": result, "generation": generation}


def _error(
    message: str, request: Optional[Dict[str, Any]] = None, kind: str = "error"
) -> Dict[str, Any]:
    return {"ok": False, "error": message, "kind": kind}

"""Compiled routing artifacts: flat next-hop tables in a versioned container.

The sweep pipeline treats a routing as something to *evaluate*; the serving
layer treats it as something to *look up*.  :func:`compile_routing_artifact`
lowers a built :class:`~repro.core.routing.Routing` (or
:class:`~repro.core.routing.MultiRouting`) into a :class:`RoutingArtifact` —
an immutable bundle of flat arrays keyed by the same ``0..n-1`` node
relabelling the :class:`~repro.core.route_index.RouteIndex` bitset kernel
uses:

* ``next_hop`` — one ``int32`` per ordered pair (``s * n + d``): the id of
  the first hop of ``rho(s, d)``, or ``-1`` where the pair carries no route.
  A batch of point queries is then a single gather into this table.
* ``route_offsets`` / ``route_nodes`` — every route laid out end to end,
  with one offset per pair, so a full-route query is two offset reads and a
  slice (for multiroutings this is the primary route; the parallel routes
  live in the ``multi_*`` sections below).
* the packed evaluation state exported by
  :meth:`~repro.core.route_index.RouteIndex.export_state` — base adjacency
  and predecessor rows plus per-node kill masks (or per-pair route masks) —
  so the serving engine rebuilds a full evaluation index (cursors, batched
  kernels, every backend) without the graph or routing objects.

On disk an artifact is a single file: an 8-byte magic, a JSON header
(format version, the source routing's canonical
:meth:`~repro.core.routing.Routing.fingerprint`, node labels, section
directory, payload checksum) and the raw little-endian array payload.
:func:`load_artifact` refuses loudly — :class:`~repro.exceptions
.ArtifactError` — on unknown magic, a format-version mismatch, a payload
that fails its checksum (tampering, torn writes) and, when the caller
supplies the expected value, a routing-fingerprint mismatch.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from array import array
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.route_index import RouteIndex
from repro.core.routing import MultiRouting, Routing
from repro.exceptions import ArtifactError
from repro.graphs.graph import Graph
from repro.serialization import decode_node, encode_node

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]

#: Magic prefix of every artifact file.
ARTIFACT_MAGIC = b"REPROART"

#: Bumped whenever the container layout or a section's meaning changes; a
#: reader only accepts exactly its own version (artifacts are cheap to
#: recompile, silent misreads are not).
ARTIFACT_FORMAT_VERSION = 1

_I4, _I8 = "<i4", "<i8"
_MASK = "mask"

#: Section order is part of the format: payload bytes are concatenated in
#: exactly this order and the checksum covers them as laid out.
_SECTION_ORDER = (
    "next_hop",
    "route_offsets",
    "route_nodes",
    "base_rows",
    "base_preds",
    "kill_counts",
    "kill_sids",
    "kill_masks",
    "pair_list",
    "pair_route_counts",
    "pair_route_masks",
    "multi_route_offsets",
    "multi_route_nodes",
)


def _int_array(typecode: str, values: Sequence[int]) -> array:
    arr = array(typecode, values)
    if arr.itemsize != {"i": 4, "q": 8}[typecode]:  # pragma: no cover
        raise ArtifactError(
            f"platform array({typecode!r}) width {arr.itemsize} is not the "
            "artifact's fixed width; cannot compile a portable artifact"
        )
    return arr


def _array_bytes(arr: array) -> bytes:
    if sys.byteorder == "big":  # pragma: no cover - little-endian on disk
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _bytes_array(typecode: str, data: bytes) -> array:
    arr = array(typecode)
    arr.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - little-endian on disk
        arr.byteswap()
    return arr


def _masks_bytes(masks: Sequence[int], width: int) -> bytes:
    return b"".join(mask.to_bytes(width, "little") for mask in masks)


def _bytes_masks(data: bytes, width: int) -> List[int]:
    if width == 0:
        return []
    return [
        int.from_bytes(data[pos : pos + width], "little")
        for pos in range(0, len(data), width)
    ]


class RoutingArtifact:
    """An immutable compiled routing: flat lookup tables + evaluation state.

    Instances come from :func:`compile_routing_artifact` (fresh compilation)
    or :func:`load_artifact` (disk).  The artifact owns no graph and no
    routing object — only arrays — which is exactly what lets a serving
    process load and answer queries for a routing it never built.
    """

    def __init__(
        self,
        *,
        fingerprint: str,
        nodes: Tuple[Node, ...],
        multi: bool,
        scheme: str,
        routing_name: str,
        backend: str,
        density_threshold: int,
        next_hop: array,
        route_offsets: array,
        route_nodes: array,
        base_rows: List[int],
        base_preds: List[int],
        kill_rows: Optional[List[Dict[int, int]]] = None,
        pair_list: Optional[List[Tuple[int, int]]] = None,
        pair_route_counts: Optional[List[int]] = None,
        pair_route_masks: Optional[List[int]] = None,
        multi_route_offsets: Optional[array] = None,
        multi_route_nodes: Optional[array] = None,
    ) -> None:
        self.fingerprint = fingerprint
        self.nodes = nodes
        self.n = len(nodes)
        self.multi = multi
        self.scheme = scheme
        self.routing_name = routing_name
        self.backend = backend
        self.density_threshold = density_threshold
        self.next_hop = next_hop
        self.route_offsets = route_offsets
        self.route_nodes = route_nodes
        self.base_rows = base_rows
        self.base_preds = base_preds
        self.kill_rows = kill_rows
        self.pair_list = pair_list
        self.pair_route_counts = pair_route_counts
        self.pair_route_masks = pair_route_masks
        self.multi_route_offsets = multi_route_offsets
        self.multi_route_nodes = multi_route_nodes
        self.id_of: Dict[Node, int] = {
            node: position for position, node in enumerate(nodes)
        }
        self._mask_width = (self.n + 63) // 64 * 8

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def next_hop_id(self, sid: int, tid: int) -> int:
        """First-hop id of the primary route for ``(sid, tid)``, or ``-1``."""
        return self.next_hop[sid * self.n + tid]

    def route_ids(self, sid: int, tid: int) -> Tuple[int, ...]:
        """Primary route of ``(sid, tid)`` as node ids (empty if unrouted)."""
        pair = sid * self.n + tid
        start, stop = self.route_offsets[pair], self.route_offsets[pair + 1]
        return tuple(self.route_nodes[start:stop])

    def to_index(self, backend: Optional[str] = None) -> RouteIndex:
        """Rebuild the evaluation-only :class:`RouteIndex` for this artifact.

        ``backend`` overrides the backend recorded at compile time (resolved
        in this process, so ``"auto"`` honours the local numpy situation).
        """
        state: Dict[str, object] = {
            "nodes": self.nodes,
            "multi": self.multi,
            "base_rows": self.base_rows,
            "base_preds": self.base_preds,
            "density_threshold": self.density_threshold,
            "backend": self.backend,
        }
        if self.multi:
            pair_routes: Dict[Tuple[int, int], Tuple[int, ...]] = {}
            cursor = 0
            for pair, count in zip(self.pair_list, self.pair_route_counts):
                pair_routes[pair] = tuple(
                    self.pair_route_masks[cursor : cursor + count]
                )
                cursor += count
            state["pair_routes"] = pair_routes
        else:
            state["kill_rows"] = self.kill_rows
        return RouteIndex.from_state(state, backend=backend)

    # ------------------------------------------------------------------
    # Disk format
    # ------------------------------------------------------------------
    def _sections(self) -> Dict[str, Tuple[bytes, str]]:
        width = self._mask_width
        sections: Dict[str, Tuple[bytes, str]] = {
            "next_hop": (_array_bytes(self.next_hop), _I4),
            "route_offsets": (_array_bytes(self.route_offsets), _I8),
            "route_nodes": (_array_bytes(self.route_nodes), _I4),
            "base_rows": (_masks_bytes(self.base_rows, width), _MASK),
            "base_preds": (_masks_bytes(self.base_preds, width), _MASK),
        }
        if self.multi:
            flat_pairs: List[int] = []
            for sid, tid in self.pair_list:
                flat_pairs.append(sid)
                flat_pairs.append(tid)
            sections["pair_list"] = (
                _array_bytes(_int_array("i", flat_pairs)),
                _I4,
            )
            sections["pair_route_counts"] = (
                _array_bytes(_int_array("i", self.pair_route_counts)),
                _I4,
            )
            sections["pair_route_masks"] = (
                _masks_bytes(self.pair_route_masks, width),
                _MASK,
            )
            sections["multi_route_offsets"] = (
                _array_bytes(self.multi_route_offsets),
                _I8,
            )
            sections["multi_route_nodes"] = (
                _array_bytes(self.multi_route_nodes),
                _I4,
            )
        else:
            counts: List[int] = []
            sids: List[int] = []
            masks: List[int] = []
            for kill in self.kill_rows:
                counts.append(len(kill))
                for sid, mask in kill.items():
                    sids.append(sid)
                    masks.append(mask)
            sections["kill_counts"] = (
                _array_bytes(_int_array("i", counts)),
                _I4,
            )
            sections["kill_sids"] = (_array_bytes(_int_array("i", sids)), _I4)
            sections["kill_masks"] = (_masks_bytes(masks, width), _MASK)
        return sections

    def save(self, path: str) -> None:
        """Write the artifact to ``path`` (atomically, via a temp sibling)."""
        sections = self._sections()
        directory: Dict[str, List[object]] = {}
        payload_parts: List[bytes] = []
        offset = 0
        for name in _SECTION_ORDER:
            if name not in sections:
                continue
            data, dtype = sections[name]
            directory[name] = [offset, len(data), dtype]
            payload_parts.append(data)
            offset += len(data)
        payload = b"".join(payload_parts)
        header = {
            "format": ARTIFACT_FORMAT_VERSION,
            "kind": "routing-artifact",
            "fingerprint": self.fingerprint,
            "scheme": self.scheme,
            "routing_name": self.routing_name,
            "multi": self.multi,
            "n": self.n,
            "mask_bytes": self._mask_width,
            "nodes": [encode_node(node) for node in self.nodes],
            "backend": self.backend,
            "density_threshold": self.density_threshold,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "sections": directory,
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        blob = (
            ARTIFACT_MAGIC
            + len(header_bytes).to_bytes(4, "big")
            + header_bytes
            + payload
        )
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, path)

    def describe(self) -> str:
        """One-line human summary (used by ``repro compile`` / ``serve``)."""
        routed = sum(1 for hop in self.next_hop if hop >= 0)
        kind = "multirouting" if self.multi else "routing"
        return (
            f"compiled {kind} artifact: n={self.n}, {routed} routed pairs, "
            f"scheme={self.scheme or '?'}, backend={self.backend}, "
            f"fingerprint={self.fingerprint[:12]}…"
        )


def compile_routing_artifact(
    graph: Graph,
    routing: AnyRouting,
    *,
    scheme: str = "",
    backend: Optional[str] = None,
    density_threshold: Optional[Union[int, str]] = None,
    index: Optional[RouteIndex] = None,
) -> RoutingArtifact:
    """Lower a built routing into a :class:`RoutingArtifact`.

    Builds (or reuses, via ``index``) the :class:`RouteIndex` for the pair,
    exports its evaluation state, and lays the route table out as flat
    next-hop / route arrays keyed by the index's ``0..n-1`` relabelling.
    The artifact is versioned on ``routing.fingerprint()``.
    """
    if index is None:
        index = RouteIndex(
            graph, routing, density_threshold=density_threshold, backend=backend
        )
    elif not index.matches(graph, routing):
        raise ArtifactError(
            "the supplied index was built for a different (graph, routing) pair"
        )
    state = index.export_state()
    nodes: Tuple[Node, ...] = tuple(state["nodes"])
    n = len(nodes)
    id_of = {node: position for position, node in enumerate(nodes)}
    multi = isinstance(routing, MultiRouting)

    next_hop = _int_array("i", [-1] * (n * n))
    routes_by_pair: Dict[int, Tuple[int, ...]] = {}
    pair_list: List[Tuple[int, int]] = []
    pair_route_counts: List[int] = []
    pair_route_masks: List[int] = []
    multi_offsets: List[int] = [0]
    multi_nodes: List[int] = []
    if multi:
        # Pair order must match the index's ``pair_routes`` insertion order:
        # the per-route masks are identified positionally.
        for (sid, tid), masks in state["pair_routes"].items():
            paths = routing.get_routes(nodes[sid], nodes[tid])
            pair_list.append((sid, tid))
            pair_route_counts.append(len(masks))
            pair_route_masks.extend(masks)
            for path in paths:
                path_ids = tuple(id_of[node] for node in path)
                multi_nodes.extend(path_ids)
                multi_offsets.append(len(multi_nodes))
            primary = tuple(id_of[node] for node in paths[0])
            routes_by_pair[sid * n + tid] = primary
            next_hop[sid * n + tid] = primary[1]
    else:
        for (source, target), path in routing.items():
            sid, tid = id_of[source], id_of[target]
            path_ids = tuple(id_of[node] for node in path)
            routes_by_pair[sid * n + tid] = path_ids
            next_hop[sid * n + tid] = path_ids[1]

    route_offsets = _int_array("q", [0] * (n * n + 1))
    route_nodes: List[int] = []
    for pair in range(n * n):
        path_ids = routes_by_pair.get(pair)
        if path_ids:
            route_nodes.extend(path_ids)
        route_offsets[pair + 1] = len(route_nodes)

    fingerprint = routing.fingerprint()
    kwargs: Dict[str, object] = {}
    if multi:
        kwargs.update(
            pair_list=pair_list,
            pair_route_counts=pair_route_counts,
            pair_route_masks=pair_route_masks,
            multi_route_offsets=_int_array("q", multi_offsets),
            multi_route_nodes=_int_array("i", multi_nodes),
        )
    else:
        kwargs.update(kill_rows=state["kill_rows"])
    return RoutingArtifact(
        fingerprint=fingerprint,
        nodes=nodes,
        multi=multi,
        scheme=scheme,
        routing_name=routing.name or "",
        backend=str(state["backend"]),
        density_threshold=int(state["density_threshold"]),
        next_hop=next_hop,
        route_offsets=route_offsets,
        route_nodes=_int_array("i", route_nodes),
        base_rows=list(state["base_rows"]),
        base_preds=list(state["base_preds"]),
        **kwargs,
    )


def load_artifact(
    path: str, expect_fingerprint: Optional[str] = None
) -> RoutingArtifact:
    """Load (and verify) an artifact written by :meth:`RoutingArtifact.save`.

    Verification is unconditional for structure — magic, format version,
    section directory bounds and the payload SHA-256 — and opt-in for
    provenance: with ``expect_fingerprint`` the header's routing fingerprint
    must match exactly (``repro serve`` passes the fingerprint of a freshly
    rebuilt construction here).  Every failure raises
    :class:`~repro.exceptions.ArtifactError`.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from exc
    if len(blob) < len(ARTIFACT_MAGIC) + 4 or not blob.startswith(ARTIFACT_MAGIC):
        raise ArtifactError(
            f"{path!r} is not a routing artifact (bad magic); expected a file "
            "written by RoutingArtifact.save"
        )
    header_start = len(ARTIFACT_MAGIC) + 4
    header_len = int.from_bytes(blob[len(ARTIFACT_MAGIC) : header_start], "big")
    if header_start + header_len > len(blob):
        raise ArtifactError(f"artifact {path!r} is truncated (header)")
    try:
        header = json.loads(blob[header_start : header_start + header_len])
    except ValueError as exc:
        raise ArtifactError(f"artifact {path!r} has a corrupt header") from exc
    version = header.get("format")
    if version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"artifact {path!r} has format version {version!r}; this build "
            f"reads exactly version {ARTIFACT_FORMAT_VERSION} — recompile the "
            "artifact with `repro compile`"
        )
    if header.get("kind") != "routing-artifact":
        raise ArtifactError(f"artifact {path!r} has kind {header.get('kind')!r}")
    payload = blob[header_start + header_len :]
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("payload_sha256"):
        raise ArtifactError(
            f"artifact {path!r} failed its payload checksum (tampered or torn "
            f"write): header says {header.get('payload_sha256')!r}, payload "
            f"hashes to {digest!r}"
        )
    fingerprint = header.get("fingerprint", "")
    if expect_fingerprint is not None and fingerprint != expect_fingerprint:
        raise ArtifactError(
            f"artifact {path!r} was compiled from a routing with fingerprint "
            f"{fingerprint[:16]}…, but the expected construction fingerprints "
            f"to {expect_fingerprint[:16]}… — the artifact does not serve "
            "this routing; recompile it with `repro compile`"
        )

    directory = header.get("sections", {})

    def section(name: str) -> bytes:
        entry = directory.get(name)
        if entry is None:
            raise ArtifactError(f"artifact {path!r} lacks section {name!r}")
        offset, nbytes, _dtype = entry
        if offset + nbytes > len(payload):
            raise ArtifactError(
                f"artifact {path!r} section {name!r} overruns the payload"
            )
        return payload[offset : offset + nbytes]

    nodes = tuple(decode_node(value) for value in header["nodes"])
    n = int(header["n"])
    if len(nodes) != n:
        raise ArtifactError(
            f"artifact {path!r} header n={n} disagrees with its "
            f"{len(nodes)} node labels"
        )
    width = int(header["mask_bytes"])
    multi = bool(header["multi"])
    kwargs: Dict[str, object] = {}
    if multi:
        flat_pairs = _bytes_array("i", section("pair_list"))
        kwargs["pair_list"] = [
            (flat_pairs[i], flat_pairs[i + 1])
            for i in range(0, len(flat_pairs), 2)
        ]
        kwargs["pair_route_counts"] = list(
            _bytes_array("i", section("pair_route_counts"))
        )
        kwargs["pair_route_masks"] = _bytes_masks(
            section("pair_route_masks"), width
        )
        kwargs["multi_route_offsets"] = _bytes_array(
            "q", section("multi_route_offsets")
        )
        kwargs["multi_route_nodes"] = _bytes_array(
            "i", section("multi_route_nodes")
        )
    else:
        counts = _bytes_array("i", section("kill_counts"))
        sids = _bytes_array("i", section("kill_sids"))
        masks = _bytes_masks(section("kill_masks"), width)
        kill_rows: List[Dict[int, int]] = []
        cursor = 0
        for count in counts:
            kill_rows.append(
                {
                    sids[position]: masks[position]
                    for position in range(cursor, cursor + count)
                }
            )
            cursor += count
        kwargs["kill_rows"] = kill_rows
    return RoutingArtifact(
        fingerprint=fingerprint,
        nodes=nodes,
        multi=multi,
        scheme=header.get("scheme", ""),
        routing_name=header.get("routing_name", ""),
        backend=header.get("backend", "bitset"),
        density_threshold=int(header.get("density_threshold", 8)),
        next_hop=_bytes_array("i", section("next_hop")),
        route_offsets=_bytes_array("q", section("route_offsets")),
        route_nodes=_bytes_array("i", section("route_nodes")),
        base_rows=_bytes_masks(section("base_rows"), width),
        base_preds=_bytes_masks(section("base_preds"), width),
        **kwargs,
    )

"""Command-line interface: build, verify, inspect and export routings.

The CLI wraps the library's main entry points so that the reproduction can be
driven without writing Python:

* ``python -m repro build --graph cycle:24 --strategy auto --output routing.json``
  builds a routing for a generated graph and optionally saves it;
* ``python -m repro verify --graph cycle:24 --strategy circular``
  builds and then checks the construction's ``(d, f)`` guarantee;
* ``python -m repro stats --graph hypercube:4 --strategy kernel``
  prints the routing-table statistics (lengths, stretch, load);
* ``python -m repro simulate --graph cycle:16 --faults 3,7 --messages 5``
  runs the network simulator over the routing with the given failed nodes;
* ``python -m repro traffic 'circulant:n=24,offsets=1+2/kernel' --workload
  hotspot --capacity 2 --buffer 16 --fail 40:3 --store traffic.jsonl``
  drives a traffic workload (uniform pairs, hotspot, or gossip rounds)
  through the event-driven simulator — per-edge link capacities, bounded
  buffers and a timed fail/repair schedule — and reports throughput, mean
  and p99 latency, drop rate and the deepest link queue; several specs
  compare strategies under the identical load, and ``--store`` persists
  one ``kind="traffic"`` row per spec for ``repro report``;
* ``python -m repro campaign --graph circulant:24,1,2 --sizes 1,2,3 --samples 100``
  runs indexed Monte-Carlo fault campaigns (one per fault-set size) through
  the :class:`~repro.faults.engine.CampaignEngine`, optionally sharded over
  ``--workers`` processes (same seed => same rows for any worker count);
* ``python -m repro campaign --scenario hypercube:d=4/kernel/sizes:1,2,3 --bound 4``
  runs whole scenario suites — ``--scenario`` may repeat, each spec names a
  graph family + strategy + fault model, and ``--bound`` streams pass/fail
  decisions instead of exact diameters;
* ``python -m repro grid "hypercube:d=3..5/kernel/t=1..2/sizes:1-3" \
  --store results.jsonl`` expands a scenario *grid* (``lo..hi`` ranges over
  integer graph parameters and ``t``) into a suite, persists one JSONL
  record per campaign into the result store, and — with ``--resume`` —
  skips every campaign the store already records, so an interrupted sweep
  picks up exactly where it was killed;
* ``python -m repro report results.jsonl`` renders the paper-style scaling
  table (rows = family/size, columns = ``t``, cells = ``mean ± worst``
  surviving diameter or pass rate) from a stored run, as markdown or CSV;
  several stores merge into one table (duplicate keys must agree — a
  fingerprint mismatch is a hard error), and a store holding several
  routing strategies — one grid sweeping ``kernel|circular``, or merged
  single-strategy stores — renders the strategy-comparison layout
  (column groups = strategy × ``t``);
* ``python -m repro salvage results.jsonl`` repairs a store torn by a
  writer killed mid-append: the truncated tail moves into the
  ``.quarantine`` sidecar and the sweep resumes from the last complete row;
* ``python -m repro compile --graph cycle:24 --strategy auto --output r.repart``
  builds a routing and lowers it into a compiled serving artifact (flat
  next-hop tables, versioned on the routing fingerprint);
* ``python -m repro serve --artifact r.repart --port 7411``
  serves a compiled artifact over the JSON-lines protocol (asyncio, live
  ``fail``/``restore`` fault updates); with ``--graph`` the server rebuilds
  the construction and **refuses** an artifact whose compiled fingerprint
  does not match it (``--expect-fingerprint`` checks against an explicit
  value instead);
* ``python -m repro graphs`` / ``python -m repro scenarios``
  list the registered graph families and the scenario/grid grammar
  (``repro scenarios --family hyper`` filters the listing).

Graph specifications come from :mod:`repro.graphs.registry` and accept both
positional and named arguments — ``cycle:24``, ``hypercube:d=4``,
``circulant:16,1,2`` (equivalently ``circulant:n=16,offsets=1+2``),
``gnp:n=40,p=0.08,seed=7``, ``flower:t=2,k=5`` and ``two-trees:t=2``.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis import format_table, render_scaling_report
from repro.core import build_routing, verify_construction
from repro.core.statistics import concentrator_load_share, routing_statistics
from repro.core.builder import available_strategies
from repro.exceptions import ReproError
from repro.faults import CampaignEngine
from repro.faults.simulation import CampaignStatus
from repro.graphs.graph import Graph
from repro.graphs.registry import GRAPH_FAMILIES, parse_graph_spec
from repro.network import (
    DEFAULT_RESOLUTION,
    WORKLOAD_KINDS,
    ChecksumService,
    FaultEvent,
    LinkSpec,
    NetworkSimulator,
    NullService,
    Workload,
    XorEncryptionService,
    run_traffic,
    traffic_manifest,
)
from repro.results import (
    FSYNC_POLICIES,
    ResultStore,
    merge_result_stores,
    result_frame,
)
from repro.runtime import SupervisorPolicy
from repro.scenarios import (
    FAULT_KINDS,
    parse_grid,
    parse_scenario,
    run_scenario_suite,
    suite_manifest,
)
from repro.serialization import construction_to_dict, save_json

__all__ = [
    "GRAPH_FACTORIES",
    "build_parser",
    "main",
    "parse_graph_spec",
]

# ----------------------------------------------------------------------
# Graph specification parsing
# ----------------------------------------------------------------------
# The parsing itself lives in :mod:`repro.graphs.registry` — the single
# registry every layer shares.  ``GRAPH_FACTORIES`` is kept as a
# backwards-compatible view (family name -> argument-token factory) for
# callers that used the CLI's original dict.
GRAPH_FACTORIES: Dict[str, Callable[[List[str]], Graph]] = {
    name: family.build_from_tokens for name, family in GRAPH_FAMILIES.items()
}


def _parse_faults(text: Optional[str], graph: Graph) -> List:
    """Parse a comma-separated fault list, matching integer labels where possible."""
    if not text:
        return []
    faults = []
    labels = {str(node): node for node in graph.nodes()}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if token in labels:
            faults.append(labels[token])
        else:
            raise ValueError(f"node {token!r} is not in the graph")
    return faults


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_graphs(_args: argparse.Namespace) -> int:
    rows = [
        {
            "family": name,
            "example": GRAPH_FAMILIES[name].example(),
            "description": GRAPH_FAMILIES[name].description,
        }
        for name in sorted(GRAPH_FAMILIES)
    ]
    print(format_table(rows, caption="Available graph families (--graph name:args)"))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    family_filter = (getattr(args, "family", None) or "").strip().lower()
    names = sorted(GRAPH_FAMILIES)
    if family_filter:
        names = [name for name in names if family_filter in name]
        if not names:
            raise ValueError(
                f"no graph family matches {family_filter!r}; families: "
                f"{sorted(GRAPH_FAMILIES)}"
            )
    # `names` is sorted and unique (the registry is a dict keyed by name),
    # so the listing is too.
    rows = [
        {
            "family": name,
            "graph spec": GRAPH_FAMILIES[name].example(),
            "scenario example": f"{GRAPH_FAMILIES[name].example()}/auto/sizes:1,2,3",
        }
        for name in names
    ]
    caption = "Scenario specs: <graph>/<strategy>/t=<int>/<fault model>"
    if family_filter:
        caption += f" (families matching {family_filter!r})"
    print(format_table(rows, caption=caption))
    print(
        "\nsegments after the graph spec are optional and order-free:\n"
        f"  strategy     one of {available_strategies()}\n"
        "  t=<int>      fault-parameter override (default: connectivity - 1)\n"
        f"  fault model  one of {list(FAULT_KINDS)}:\n"
        "               sizes:1,2,3 | random:p=0.1 | exhaustive:f=2\n"
        "\ngrid specs (repro grid) add inclusive ranges and strategy sets:\n"
        "  name=lo..hi  sweeps a named integer graph parameter or t=\n"
        "  a|b          sweeps routing strategies (e.g. kernel|circular)\n"
        "  sizes:a-b    expands to the size list a,a+1,...,b\n"
        "  e.g. hypercube:d=3..8/kernel|circular/t=1..3/sizes:1-5\n"
        "\nexamples:\n"
        "  repro campaign --scenario hypercube:d=4/kernel/sizes:1,2,3\n"
        "  repro campaign --scenario circulant:n=60,offsets=1+2/kernel/random:p=0.05 \\\n"
        "                 --scenario flower:t=2,k=9/circular/exhaustive:f=2 \\\n"
        "                 --bound 6 --workers 4 --seed 7\n"
        "  repro grid 'hypercube:d=3..5/kernel/t=1..2/sizes:1-3' \\\n"
        "             --samples 20 --store results.jsonl --resume\n"
        "  repro grid 'hypercube:d=3..5/kernel|circular/t=1..2/sizes:1-3' \\\n"
        "             --store s.jsonl --report -\n"
        "  repro report results.jsonl --format markdown\n"
        "  repro report store_kernel.jsonl store_circular.jsonl\n"
        "\nsame seed => byte-identical rows for any --workers value and any\n"
        "PYTHONHASHSEED (the parent broadcasts its built indexes to the pool\n"
        "and verifies routing fingerprints on every row)."
    )
    return 0


def _build(args: argparse.Namespace):
    graph = parse_graph_spec(args.graph)
    result = build_routing(graph, strategy=args.strategy, t=args.t)
    return graph, result


def _cmd_build(args: argparse.Namespace) -> int:
    _graph, result = _build(args)
    print(result.describe())
    if args.output:
        save_json(construction_to_dict(result), args.output)
        print(f"\nrouting written to {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    _graph, result = _build(args)
    report = verify_construction(result, exhaustive_limit=args.exhaustive_limit)
    print(result.describe())
    print()
    print(report)
    return 0 if report.holds else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    _graph, result = _build(args)
    stats = routing_statistics(result.routing)
    print(result.describe())
    print()
    print(format_table([stats.as_row()], caption="Routing-table statistics"))
    if result.concentrator:
        share = concentrator_load_share(result.routing, result.concentrator)
        print(f"\nconcentrator load share: {share:.0%}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph, result = _build(args)
    faults = _parse_faults(args.faults, graph)
    simulator = NetworkSimulator(graph, result.routing, service=XorEncryptionService())
    simulator.fail_nodes(faults)
    alive = [node for node in graph.nodes() if node not in set(faults)]
    rng = random.Random(args.seed)
    rows = []
    for index in range(args.messages):
        origin, destination = rng.sample(alive, 2)
        receipt = simulator.send(origin, destination, f"message-{index}")
        rows.append(
            {
                "from": str(origin),
                "to": str(destination),
                "delivered": "yes" if receipt.delivered else "NO",
                "route_segments": receipt.routes_used,
                "hops": receipt.hops,
            }
        )
    print(result.describe())
    print()
    print(format_table(rows, caption=f"Simulated deliveries with faults {faults}"))
    print(f"\n{simulator.describe()}")
    return 0 if all(row["delivered"] == "yes" for row in rows) else 1


def _parse_sizes(text: str) -> List[int]:
    sizes = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        value = int(token)
        if value < 0:
            raise ValueError(f"fault-set size must be non-negative, got {value}")
        sizes.append(value)
    if not sizes:
        raise ValueError("no fault-set sizes given (e.g. --sizes 1,2,3)")
    return sizes


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.scenario:
        if args.graph:
            raise ValueError("--scenario and --graph are mutually exclusive")
        # Scenario specs carry their own strategy / t / fault model; refuse
        # the --graph-mode flags instead of silently ignoring them.
        if args.strategy != "auto":
            raise ValueError(
                "--strategy has no effect with --scenario; put the strategy "
                "in the spec, e.g. hypercube:d=4/kernel"
            )
        if args.t is not None:
            raise ValueError(
                "--t has no effect with --scenario; put it in the spec, "
                "e.g. hypercube:d=4/kernel/t=2"
            )
        if args.sizes != "1,2,3":
            raise ValueError(
                "--sizes has no effect with --scenario; put the fault model "
                "in the spec, e.g. hypercube:d=4/sizes:1,2,3"
            )
        return _run_scenario_campaigns(args)
    if not args.graph:
        raise ValueError("one of --graph or --scenario is required")
    graph, result = _build(args)
    sizes = _parse_sizes(args.sizes)
    engine = CampaignEngine(
        graph,
        result.routing,
        workers=args.workers,
        chunk_size=args.chunk_size,
        backend=args.eval_backend,
    )
    campaigns = engine.sweep_fault_sizes(
        sizes,
        samples=args.samples,
        seed=args.seed,
        bound=args.bound,
        greedy=args.greedy,
        candidate_limit=args.candidate_limit,
    )
    print(result.describe())
    print()
    bound_note = f", bound={args.bound:g}" if args.bound is not None else ""
    print(
        format_table(
            [campaign.as_row() for campaign in campaigns],
            caption=(
                f"Fault campaigns ({args.samples} samples/size, "
                f"workers={args.workers}, seed={args.seed}{bound_note})"
            ),
        )
    )
    exit_code = 0
    for campaign in campaigns:
        if args.bound is not None:
            if campaign.first_violation is not None:
                print(
                    f"first violation at |F|={campaign.fault_size}: "
                    f"{campaign.first_violation}"
                )
                exit_code = 1
        elif campaign.worst_fault_set is not None and len(campaign.worst_fault_set):
            print(f"worst at |F|={campaign.fault_size}: {campaign.worst_fault_set}")
    return exit_code


def _run_scenario_campaigns(args: argparse.Namespace) -> int:
    """Run ``repro campaign --scenario ...`` through the suite runner."""
    scenarios = [parse_scenario(spec) for spec in args.scenario]
    rows = run_scenario_suite(
        scenarios,
        samples=args.samples,
        seed=args.seed,
        bound=args.bound,
        workers=args.workers,
        chunk_size=args.chunk_size,
        backend=args.eval_backend,
        greedy=args.greedy,
        candidate_limit=args.candidate_limit,
    )
    bound_note = f", bound={args.bound:g}" if args.bound is not None else ""
    print(
        format_table(
            [row.as_row() for row in rows],
            caption=(
                f"Scenario suite ({len(scenarios)} scenarios, "
                f"{args.samples} samples/campaign, workers={args.workers}, "
                f"seed={args.seed}{bound_note})"
            ),
        )
    )
    if args.bound is not None:
        violated = [row for row in rows if not row.campaign.holds]
        for row in violated:
            print(
                f"bound violated: {row.scenario} at |F|={row.campaign.fault_size} "
                f"({row.campaign.violations} violations)"
            )
        return 1 if violated else 0
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    """Run ``repro grid``: expand grid specs, run the suite, store + report."""
    grids = [parse_grid(spec) for spec in args.spec]
    # Strategy axes sweep constructions across families where not every
    # strategy applies everywhere (e.g. circular on small hypercubes);
    # inapplicable combinations become empty table cells, not errors.
    # Eligibility is per suite *position*, not per scenario string, so a
    # scenario from a single-strategy grid still fails loudly even when a
    # strategy-set grid in the same invocation sweeps the identical
    # scenario — unless --skip-inapplicable opts everything in (the
    # per-strategy halves of a split comparison run).
    scenarios: List = []
    skip_inapplicable: set = set()
    for grid in grids:
        expanded = grid.scenarios()
        if args.skip_inapplicable or len(grid.strategies()) > 1:
            skip_inapplicable.update(
                range(len(scenarios), len(scenarios) + len(expanded))
            )
        scenarios.extend(expanded)
    if not scenarios:
        raise ValueError("the grid expanded to no scenarios")

    run = suite_manifest(
        scenarios,
        args.samples,
        args.seed,
        args.bound,
        args.chunk_size,
        greedy=args.greedy,
        candidate_limit=args.candidate_limit,
    )
    store = None
    if args.store:
        if args.resume:
            store = ResultStore.open(args.store, run, fsync=args.fsync)
        else:
            store = ResultStore.create(args.store, run, fsync=args.fsync)
    elif args.resume:
        raise ValueError("--resume needs --store (the JSONL file to resume)")

    policy = SupervisorPolicy(
        task_timeout=args.task_timeout,
        max_retries=args.retries,
        strict=args.strict,
    )
    skipped: List = []
    try:
        already = len(store) if store is not None else 0
        rows = run_scenario_suite(
            scenarios,
            samples=args.samples,
            seed=args.seed,
            bound=args.bound,
            workers=args.workers,
            chunk_size=args.chunk_size,
            store=store,
            skip_inapplicable=skip_inapplicable,
            skipped=skipped,
            backend=args.eval_backend,
            policy=policy,
            greedy=args.greedy,
            candidate_limit=args.candidate_limit,
        )
    finally:
        if store is not None:
            store.close()

    # With --report - the scaling report owns stdout (pipeable, diffable
    # against goldens, as `repro report --output -`); the human-oriented
    # progress output moves to stderr.
    info = sys.stderr if args.report == "-" else sys.stdout
    for scenario, reason in skipped:
        print(
            f"skipped (strategy not applicable): {scenario.canonical()} — {reason}",
            file=info,
        )
    if skipped:
        print(file=info)

    grid_note = ", ".join(grid.canonical() for grid in grids)
    bound_note = f", bound={args.bound:g}" if args.bound is not None else ""
    resume_note = (
        f", resumed {already} stored rows" if args.resume and already else ""
    )
    print(
        format_table(
            [row.as_row() for row in rows],
            caption=(
                f"Grid sweep [{grid_note}]: {len(scenarios)} scenarios, "
                f"{len(rows)} campaign rows ({args.samples} samples/campaign, "
                f"workers={args.workers}, seed={args.seed}{bound_note}"
                f"{resume_note})"
            ),
        ),
        file=info,
    )
    if args.store:
        print(
            f"\nresult store: {args.store} ({len(rows)} rows recorded)",
            file=info,
        )

    frame = result_frame(row.record() for row in rows)
    report = render_scaling_report(frame, run, fmt=args.format)
    if args.report == "-":
        print(report)
    elif args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"scaling report written to {args.report}")
    else:
        print()
        print(report)

    # Quarantined campaigns (retry budget exhausted under the supervisor)
    # come back as status rows: report them and fail the run, but only
    # after the table and report above — partial sweeps stay inspectable,
    # and the store keeps the failed rows so `repro report` annotates them.
    failed = [row for row in rows if isinstance(row.campaign, CampaignStatus)]
    for row in failed:
        print(
            f"campaign failed (quarantined): {row.scenario} at "
            f"|F|={row.campaign.fault_size} — {row.campaign.reason}",
            file=info,
        )
    exit_code = 1 if failed else 0
    if args.bound is not None:
        violated = [
            row
            for row in rows
            if not isinstance(row.campaign, CampaignStatus)
            and not row.campaign.holds
        ]
        for row in violated:
            print(
                f"bound violated: {row.scenario} at |F|={row.campaign.fault_size} "
                f"({row.campaign.violations} violations)",
                file=info,
            )
        if violated:
            exit_code = 1
    return exit_code


def _cmd_compile(args: argparse.Namespace) -> int:
    """Run ``repro compile``: build a routing and write its serving artifact."""
    from repro.serving import compile_routing_artifact

    graph, result = _build(args)
    artifact = compile_routing_artifact(
        graph,
        result.routing,
        scheme=result.scheme,
        backend=args.eval_backend,
    )
    artifact.save(args.output)
    print(result.describe())
    print()
    print(artifact.describe())
    print(f"artifact written to {args.output}")
    print(f"fingerprint: {artifact.fingerprint}")
    return 0


def _load_serve_artifact(args: argparse.Namespace):
    """Resolve ``repro serve`` inputs into a verified artifact."""
    from repro.serving import compile_routing_artifact, load_artifact

    if args.artifact:
        expected = args.expect_fingerprint
        if args.graph:
            # Rebuild the construction and hold the artifact to its
            # fingerprint: serving a stale artifact for a graph would
            # silently answer for a different routing.
            _graph, result = _build(args)
            expected = result.routing.fingerprint()
        return load_artifact(args.artifact, expect_fingerprint=expected)
    if not args.graph:
        raise ValueError("one of --artifact or --graph is required")
    graph, result = _build(args)
    return compile_routing_artifact(
        graph, result.routing, scheme=result.scheme, backend=args.eval_backend
    )


async def _serve_async(args: argparse.Namespace, artifact) -> int:
    import asyncio

    from repro.serving import RoutingTableServer, ServingClient, ServingEngine

    engine = ServingEngine(
        artifact, backend=args.eval_backend, cursor_lru=args.cursor_lru
    )
    server = RoutingTableServer(engine, host=args.host, port=args.port)
    await server.start()
    host, port = server.address
    print(artifact.describe())
    print(f"serving on {host}:{port} (backend: {engine.index.eval_backend})")
    if args.probe:
        # Self-check mode (CI smoke): one client round trip, then exit.
        client = await ServingClient.connect(host, port)
        async with client:
            assert await client.ping() == "pong"
            info = await client.info()
            diameter = await client.diameter()
        await server.stop()
        print(
            f"probe ok: fingerprint {info['fingerprint'][:12]}…, "
            f"fault-free diameter {diameter:g}"
        )
        return 0
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - interactive shutdown
        pass
    finally:
        await server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run ``repro serve``: expose an artifact over the JSON-lines protocol."""
    import asyncio

    artifact = _load_serve_artifact(args)
    try:
        return asyncio.run(_serve_async(args, artifact))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("\nserver stopped")
        return 0


def _cmd_salvage(args: argparse.Namespace) -> int:
    """Run ``repro salvage``: repair a torn result store in place.

    A writer killed mid-append can leave a truncated final line.  Resuming
    with ``repro grid --resume`` already quarantines it automatically;
    ``repro salvage`` does the same repair explicitly — useful before
    inspecting a store from a crashed machine — and reports what moved
    into the ``<path>.quarantine`` sidecar.
    """
    store, sidecar = ResultStore.salvage(args.path)
    print(f"result store: {args.path} ({len(store)} complete rows)")
    if sidecar is None:
        print("store is clean; nothing quarantined")
    else:
        print(f"torn tail quarantined into {sidecar}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Run ``repro report``: render the scaling table from stored runs.

    Several stores merge into one table — the road to the paper's
    strategy-comparison tables when each strategy (or each machine) swept
    into its own file.  Same key + different fingerprint across stores is a
    hard error: those stores were built against different constructions.
    """
    paths = list(args.stores) + list(args.store or [])
    if not paths:
        raise ValueError(
            "no result store given; pass one or more JSONL paths "
            "(repro report store_a.jsonl store_b.jsonl)"
        )
    if len(paths) == 1:
        store = ResultStore.load(paths[0])
    else:
        store = merge_result_stores(paths)
        groups = store.group_index()
        # Diagnostics go to stderr: stdout may be the report itself
        # (piped CSV/markdown must stay clean).
        print(
            f"merged {len(paths)} stores: {len(store)} rows across "
            f"{len(groups)} (family, n, strategy) groups",
            file=sys.stderr,
        )
    report = render_scaling_report(store.frame, store.run, fmt=args.format)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"scaling report written to {args.output}")
    else:
        print(report)
    return 0


def _parse_fault_schedule(
    fail_specs: Sequence[str], repair_specs: Sequence[str], graph: Graph
) -> List[FaultEvent]:
    """Parse ``--fail``/``--repair TICK:NODE`` flags into a fault schedule.

    The schedule is sorted by tick (fail before repair on ties) so the
    resulting event order — and therefore the run — is independent of the
    order the flags appeared on the command line.
    """
    labels = {str(node): node for node in graph.nodes()}
    events: List[FaultEvent] = []
    for action, specs in (("fail", fail_specs), ("repair", repair_specs)):
        for spec in specs:
            tick_text, sep, node_text = spec.partition(":")
            if not sep:
                raise ValueError(
                    f"fault schedule entries are TICK:NODE (e.g. --{action} 40:3), "
                    f"got {spec!r}"
                )
            tick = int(tick_text)
            node_text = node_text.strip()
            if node_text not in labels:
                raise ValueError(f"node {node_text!r} is not in the graph")
            events.append(FaultEvent(tick, action, labels[node_text]))
    events.sort(key=lambda event: (event.tick, event.action, str(event.node)))
    return events


_TRAFFIC_SERVICES = {
    "null": NullService,
    "xor": XorEncryptionService,
    "checksum": ChecksumService,
}


def _cmd_traffic(args: argparse.Namespace) -> int:
    """Run ``repro traffic``: drive workloads over routings, report + store."""
    from repro.results.records import scenario_family, scenario_strategy
    from repro.scenarios.spec import DEFAULT_FAULT_MODEL

    workload = Workload(
        kind=args.workload,
        messages=args.messages,
        duration=args.duration,
        hotspots=args.hotspots,
        hot_fraction=args.hot_fraction,
        rounds=args.rounds,
        interval=args.interval,
    )
    if args.capacity is None and args.buffer is not None:
        raise ValueError("--buffer needs --capacity (nothing queues on unlimited links)")
    link = None
    if args.capacity is not None or args.link_latency is not None:
        link = LinkSpec(
            latency=args.link_latency, capacity=args.capacity, buffer=args.buffer
        )
    service = _TRAFFIC_SERVICES[args.service]()
    scenarios = [parse_scenario(spec) for spec in args.spec]
    for scenario in scenarios:
        if scenario.faults != DEFAULT_FAULT_MODEL:
            raise ValueError(
                "traffic runs take timed --fail/--repair schedules; drop the "
                f"fault-model segment from {scenario.canonical()!r}"
            )
    raw_schedule = [f"fail@{spec}" for spec in args.fail] + [
        f"repair@{spec}" for spec in args.repair
    ]
    run = traffic_manifest(
        [scenario.canonical() for scenario in scenarios],
        workload,
        args.seed,
        args.hop_latency,
        args.resolution,
        link,
        args.service,
        faults=sorted(raw_schedule),
    )
    store = None
    if args.store:
        store = ResultStore.create(args.store, run, fsync=args.fsync)
    results = []
    try:
        for scenario in scenarios:
            graph, result = scenario.build()
            faults = _parse_fault_schedule(args.fail, args.repair, graph)
            canonical = scenario.canonical()
            outcome = run_traffic(
                graph,
                result.routing,
                workload,
                seed=args.seed,
                service=service,
                hop_latency=args.hop_latency,
                resolution=args.resolution,
                link=link,
                faults=faults,
                scenario=canonical,
                family=scenario_family(canonical),
                strategy=scenario_strategy(canonical),
                scheme=result.scheme,
                t=result.t,
                fingerprint=result.fingerprint(),
            )
            results.append(outcome)
            if store is not None:
                store.append(
                    f"{canonical}#{workload.canonical()}", outcome.record()
                )
    finally:
        if store is not None:
            store.close()

    link_note = link.describe() if link is not None else "null"
    fault_note = f", {len(raw_schedule)} timed faults" if raw_schedule else ""
    print(
        format_table(
            [outcome.as_row() for outcome in results],
            caption=(
                f"Traffic [{workload.canonical()}]: {len(results)} runs "
                f"(link={link_note}, service={args.service}, seed={args.seed}"
                f"{fault_note})"
            ),
        )
    )
    if args.store:
        print(f"\nresult store: {args.store} ({len(results)} rows recorded)")
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant routings for general networks (Peleg & Simons, 1986)",
        epilog=(
            "scenario examples:\n"
            "  repro scenarios --family hyper\n"
            "  repro campaign --scenario hypercube:d=4/kernel/sizes:1,2,3 --seed 7\n"
            "  repro campaign --scenario circulant:n=60,offsets=1+2/kernel/random:p=0.05 \\\n"
            "                 --scenario flower:t=2,k=9/circular/exhaustive:f=2 \\\n"
            "                 --bound 6 --workers 4\n"
            "grid sweeps and stored reports:\n"
            "  repro grid 'hypercube:d=3..5/kernel/t=1..2/sizes:1-3' \\\n"
            "             --samples 20 --store results.jsonl\n"
            "  repro grid 'hypercube:d=3..5/kernel/t=1..2/sizes:1-3' \\\n"
            "             --samples 20 --store results.jsonl --resume\n"
            "  repro report --store results.jsonl --format csv\n"
            "a scenario spec is <graph>/<strategy>/t=<int>/<fault model>; the\n"
            "graph spec is mandatory, the other segments are optional and\n"
            "order-free (see `repro scenarios`).  Grid specs add lo..hi ranges\n"
            "over integer graph parameters and t=, and sizes:a-b shorthand."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser, graph_required: bool = True) -> None:
        sub.add_argument(
            "--graph",
            required=graph_required,
            default=None,
            help="graph spec, e.g. cycle:24, hypercube:d=4 or circulant:n=16,offsets=1+2",
        )
        sub.add_argument(
            "--strategy",
            default="auto",
            choices=available_strategies(),
            help="construction to use (default: auto)",
        )
        sub.add_argument("--t", type=int, default=None, help="fault parameter override")

    sub_build = subparsers.add_parser("build", help="build a routing and print its summary")
    add_common(sub_build)
    sub_build.add_argument("--output", help="write the construction to this JSON file")
    sub_build.set_defaults(handler=_cmd_build)

    sub_verify = subparsers.add_parser("verify", help="build a routing and verify its guarantee")
    add_common(sub_verify)
    sub_verify.add_argument("--exhaustive-limit", type=int, default=20000)
    sub_verify.set_defaults(handler=_cmd_verify)

    sub_stats = subparsers.add_parser("stats", help="print routing-table statistics")
    add_common(sub_stats)
    sub_stats.set_defaults(handler=_cmd_stats)

    sub_simulate = subparsers.add_parser("simulate", help="simulate deliveries under faults")
    add_common(sub_simulate)
    sub_simulate.add_argument("--faults", default="", help="comma-separated failed nodes, e.g. 3,7")
    sub_simulate.add_argument("--messages", type=int, default=5)
    sub_simulate.add_argument("--seed", type=int, default=0)
    sub_simulate.set_defaults(handler=_cmd_simulate)

    sub_traffic = subparsers.add_parser(
        "traffic",
        help="drive traffic workloads over routings (throughput, latency, drops)",
    )
    sub_traffic.add_argument(
        "spec",
        nargs="+",
        help=(
            "scenario spec(s) <graph>/<strategy>[/t=N]; several specs run the "
            "identical workload for side-by-side comparison"
        ),
    )
    sub_traffic.add_argument(
        "--workload",
        default="uniform",
        choices=WORKLOAD_KINDS,
        help="workload generator (default: uniform pairs)",
    )
    sub_traffic.add_argument(
        "--messages", type=int, default=200, help="injections (uniform/hotspot)"
    )
    sub_traffic.add_argument(
        "--duration", type=int, default=100, help="injection window in ticks"
    )
    sub_traffic.add_argument(
        "--hotspots", type=int, default=1, help="hot destination count (hotspot)"
    )
    sub_traffic.add_argument(
        "--hot-fraction",
        type=float,
        default=0.8,
        help="fraction of hotspot traffic aimed at the hot set",
    )
    sub_traffic.add_argument(
        "--rounds", type=int, default=4, help="gossip rounds (every node sends once)"
    )
    sub_traffic.add_argument(
        "--interval", type=int, default=10, help="ticks between gossip rounds"
    )
    sub_traffic.add_argument(
        "--hop-latency", type=float, default=0.1, help="time units per link traversal"
    )
    sub_traffic.add_argument(
        "--resolution",
        type=int,
        default=DEFAULT_RESOLUTION,
        help="engine ticks per time unit",
    )
    sub_traffic.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="link departures per tick (default: unlimited — the null model)",
    )
    sub_traffic.add_argument(
        "--buffer",
        type=int,
        default=None,
        help="bounded link queue; arrivals beyond it are dropped",
    )
    sub_traffic.add_argument(
        "--link-latency",
        type=int,
        default=None,
        help="propagation ticks per hop (default: quantised --hop-latency)",
    )
    sub_traffic.add_argument(
        "--service",
        default="null",
        choices=sorted(_TRAFFIC_SERVICES),
        help="endpoint service applied per route segment",
    )
    sub_traffic.add_argument("--seed", type=int, default=0)
    sub_traffic.add_argument(
        "--fail",
        action="append",
        default=[],
        metavar="TICK:NODE",
        help="fail NODE at TICK (repeatable)",
    )
    sub_traffic.add_argument(
        "--repair",
        action="append",
        default=[],
        metavar="TICK:NODE",
        help="repair NODE at TICK (repeatable)",
    )
    sub_traffic.add_argument(
        "--store", default=None, help="persist one traffic row per spec (JSONL)"
    )
    sub_traffic.add_argument(
        "--fsync",
        choices=FSYNC_POLICIES,
        default=None,
        help="store fsync policy (default: never, or REPRO_STORE_FSYNC)",
    )
    sub_traffic.set_defaults(handler=_cmd_traffic)

    sub_campaign = subparsers.add_parser(
        "campaign",
        help="run indexed fault campaigns (per fault-set size, or whole scenario suites)",
    )
    add_common(sub_campaign, graph_required=False)
    sub_campaign.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="SPEC",
        help=(
            "scenario spec, e.g. hypercube:d=4/kernel/sizes:1,2,3 "
            "(repeatable; mutually exclusive with --graph)"
        ),
    )
    sub_campaign.add_argument(
        "--sizes", default="1,2,3", help="comma-separated fault-set sizes, e.g. 1,2,3"
    )
    sub_campaign.add_argument("--samples", type=int, default=100)
    sub_campaign.add_argument("--seed", type=int, default=0)
    sub_campaign.add_argument(
        "--bound",
        type=float,
        default=None,
        help=(
            "diameter bound: stream bounded pass/fail decisions instead of "
            "exact diameters (exit code 1 on any violation)"
        ),
    )
    sub_campaign.add_argument(
        "--workers", type=int, default=1, help="worker processes for the evaluation"
    )
    sub_campaign.add_argument(
        "--chunk-size", type=int, default=32, help="fault sets per shard"
    )
    sub_campaign.add_argument(
        "--eval-backend",
        choices=["bitset", "numpy", "auto"],
        default=None,
        help=(
            "diameter evaluation backend: 'bitset' (pure Python), 'numpy' "
            "(packed-uint64 batteries; falls back to bitset without numpy) "
            "or 'auto'; default from REPRO_EVAL_BACKEND, values are "
            "identical either way"
        ),
    )
    sub_campaign.add_argument(
        "--greedy",
        action="store_true",
        help=(
            "augment each battery with one adversarially-grown fault set "
            "per size (batched greedy search); the row's worst case then "
            "reflects a sampled and adversarial battery"
        ),
    )
    sub_campaign.add_argument(
        "--candidate-limit",
        type=int,
        default=40,
        metavar="K",
        help=(
            "greedy adversary candidate budget per round (with --greedy; "
            "default: 40)"
        ),
    )
    sub_campaign.set_defaults(handler=_cmd_campaign)

    sub_grid = subparsers.add_parser(
        "grid",
        help="run a scenario-grid sweep (resumable, with stored results)",
        epilog=(
            "examples:\n"
            "  repro grid 'hypercube:d=3..5/kernel/t=1..2/sizes:1-3' --samples 20\n"
            "  repro grid 'hypercube:d=3..5/kernel|circular/t=1..2/sizes:1-3' \\\n"
            "             --store s.jsonl --report -    # strategy comparison\n"
            "  repro grid 'torus:rows=3..5,cols=4/circular' --bound 8 \\\n"
            "             --store results.jsonl --workers 4\n"
            "  repro grid 'hypercube:d=3..5/kernel/t=1..2/sizes:1-3' \\\n"
            "             --store results.jsonl --resume    # skip stored rows\n"
            "a grid spec is a scenario spec plus inclusive integer ranges and\n"
            "strategy sets: name=lo..hi sweeps a named graph parameter or t=,\n"
            "a|b (e.g. kernel|circular) sweeps routing strategies, sizes:a-b\n"
            "expands to the size list a..b.  Strategy-set sweeps skip\n"
            "combinations whose construction does not apply (empty table\n"
            "cells), and the report shows strategy × t column groups with\n"
            "mean ± worst cells.  Every campaign row is appended to --store\n"
            "as soon as it completes, so a killed sweep resumes with\n"
            "--resume without recomputing finished rows."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub_grid.add_argument(
        "spec",
        nargs="+",
        help=(
            "grid spec(s), e.g. hypercube:d=3..5/kernel|circular/t=1..2/"
            "sizes:1-3"
        ),
    )
    sub_grid.add_argument("--samples", type=int, default=50)
    sub_grid.add_argument("--seed", type=int, default=0)
    sub_grid.add_argument(
        "--bound",
        type=float,
        default=None,
        help="diameter bound: stream pass/fail decisions (exit 1 on violation)",
    )
    sub_grid.add_argument(
        "--workers", type=int, default=1, help="worker processes for the evaluation"
    )
    sub_grid.add_argument(
        "--chunk-size", type=int, default=32, help="fault sets per shard"
    )
    sub_grid.add_argument(
        "--eval-backend",
        choices=["bitset", "numpy", "auto"],
        default=None,
        help=(
            "diameter evaluation backend (bitset | numpy | auto); rows are "
            "byte-identical across backends"
        ),
    )
    sub_grid.add_argument(
        "--greedy",
        action="store_true",
        help=(
            "augment every sizes-model campaign with one adversarially-"
            "grown fault set (batched greedy search); recorded in the "
            "store manifest, so greedy and non-greedy stores never mix"
        ),
    )
    sub_grid.add_argument(
        "--candidate-limit",
        type=int,
        default=40,
        metavar="K",
        help=(
            "greedy adversary candidate budget per round (with --greedy; "
            "default: 40)"
        ),
    )
    sub_grid.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="JSONL result store (one record per campaign row + run manifest)",
    )
    sub_grid.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run: skip campaigns already in --store",
    )
    sub_grid.add_argument(
        "--skip-inapplicable",
        action="store_true",
        help=(
            "drop scenarios whose construction does not apply instead of "
            "failing (always on for strategy-set grids; use it on the "
            "single-strategy halves of a split comparison run)"
        ),
    )
    sub_grid.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per shard task; a task over budget is "
            "retried on a rebuilt pool and quarantined once --retries is "
            "exhausted (default: no timeout)"
        ),
    )
    sub_grid.add_argument(
        "--retries",
        type=int,
        default=2,
        help=(
            "retry budget per shard task before its campaign is "
            "quarantined as a failed row (default: 2; retries recompute "
            "byte-identical outcomes)"
        ),
    )
    sub_grid.add_argument(
        "--strict",
        action="store_true",
        help=(
            "fail fast on the first exhausted task instead of quarantining "
            "its campaign as a failed row"
        ),
    )
    sub_grid.add_argument(
        "--fsync",
        choices=FSYNC_POLICIES,
        default=None,
        help=(
            "store durability policy: never (default), close (one fsync "
            "at the end) or always (fsync per appended row); also via "
            "REPRO_STORE_FSYNC"
        ),
    )
    sub_grid.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the scaling report here instead of printing it ('-' for stdout)",
    )
    sub_grid.add_argument(
        "--format",
        choices=("markdown", "csv"),
        default="markdown",
        help="scaling-report format (default: markdown)",
    )
    sub_grid.set_defaults(handler=_cmd_grid)

    sub_report = subparsers.add_parser(
        "report",
        help="render the paper-style scaling table from stored result runs",
        epilog=(
            "examples:\n"
            "  repro report results.jsonl\n"
            "  repro report store_kernel.jsonl store_circular.jsonl\n"
            "  repro report results.jsonl --format csv --output table.csv\n"
            "several stores are merged into one table keyed by the stores'\n"
            "content addresses: slices of one sweep (e.g. one store per\n"
            "strategy) recombine exactly, duplicate keys must agree, and a\n"
            "fingerprint mismatch on a shared key is a hard error (the\n"
            "stores were built against different constructions).  Frames\n"
            "holding several strategies render the strategy-comparison\n"
            "layout (column groups = strategy × t, cells = mean ± worst)."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub_report.add_argument(
        "stores",
        nargs="*",
        metavar="PATH",
        help="JSONL result store(s) to read; several paths are merged",
    )
    sub_report.add_argument(
        "--store",
        action="append",
        default=None,
        metavar="PATH",
        help="additional store path (repeatable; kept for compatibility)",
    )
    sub_report.add_argument(
        "--format",
        choices=("markdown", "csv"),
        default="markdown",
        help="output format (default: markdown)",
    )
    sub_report.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the report to this file ('-' for stdout)",
    )
    sub_report.set_defaults(handler=_cmd_report)

    sub_salvage = subparsers.add_parser(
        "salvage",
        help="repair a torn result store (quarantine the truncated tail)",
        epilog=(
            "examples:\n"
            "  repro salvage results.jsonl\n"
            "moves any truncated final line (a writer killed mid-append)\n"
            "into results.jsonl.quarantine and truncates the store back to\n"
            "its last complete row; `repro grid --resume` then continues\n"
            "the sweep from exactly that row."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub_salvage.add_argument("path", metavar="PATH", help="JSONL result store to repair")
    sub_salvage.set_defaults(handler=_cmd_salvage)

    sub_compile = subparsers.add_parser(
        "compile",
        help="compile a routing into a serving artifact (flat next-hop tables)",
        epilog=(
            "examples:\n"
            "  repro compile --graph hypercube:d=5 --strategy kernel \\\n"
            "                --output hyper5.repart\n"
            "the artifact holds flat next-hop/route tables plus the packed\n"
            "evaluation state, versioned on the routing fingerprint; serve it\n"
            "with `repro serve --artifact hyper5.repart`."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_common(sub_compile)
    sub_compile.add_argument(
        "--output", required=True, metavar="PATH",
        help="write the compiled artifact to this file",
    )
    sub_compile.add_argument(
        "--eval-backend",
        choices=["bitset", "numpy", "auto"],
        default=None,
        help="evaluation backend recorded in the artifact (default: env/auto)",
    )
    sub_compile.set_defaults(handler=_cmd_compile)

    sub_serve = subparsers.add_parser(
        "serve",
        help="serve a compiled routing artifact (asyncio JSON-lines protocol)",
        epilog=(
            "examples:\n"
            "  repro serve --artifact hyper5.repart --port 7411\n"
            "  repro serve --graph cycle:24 --strategy auto    # compile in-process\n"
            "  repro serve --artifact hyper5.repart --graph hypercube:d=5 \\\n"
            "              --strategy kernel    # verify fingerprint, then serve\n"
            "with both --artifact and --graph the construction is rebuilt and\n"
            "the artifact is refused unless its compiled fingerprint matches;\n"
            "--expect-fingerprint checks against an explicit value instead.\n"
            "--probe starts the server, runs one self-query round trip and\n"
            "exits (CI smoke)."
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    add_common(sub_serve, graph_required=False)
    sub_serve.add_argument(
        "--artifact", default=None, metavar="PATH",
        help="compiled artifact to serve (from `repro compile`)",
    )
    sub_serve.add_argument(
        "--expect-fingerprint", default=None, metavar="SHA256",
        help="refuse the artifact unless its compiled fingerprint equals this",
    )
    sub_serve.add_argument("--host", default="127.0.0.1")
    sub_serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: pick a free port and print it)",
    )
    sub_serve.add_argument(
        "--eval-backend",
        choices=["bitset", "numpy", "auto"],
        default=None,
        help="override the artifact's evaluation backend for this server",
    )
    sub_serve.add_argument(
        "--cursor-lru", type=int, default=128, metavar="N",
        help="hot fault-set cursor cache size (default: 128)",
    )
    sub_serve.add_argument(
        "--probe",
        action="store_true",
        help="start, self-query once (ping/info/diameter), then exit",
    )
    sub_serve.set_defaults(handler=_cmd_serve)

    sub_graphs = subparsers.add_parser("graphs", help="list available graph families")
    sub_graphs.set_defaults(handler=_cmd_graphs)

    sub_scenarios = subparsers.add_parser(
        "scenarios", help="explain the scenario/grid grammar and list example specs"
    )
    sub_scenarios.add_argument(
        "--family",
        default=None,
        help="only list graph families whose name contains this substring",
    )
    sub_scenarios.set_defaults(handler=_cmd_scenarios)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())

"""Command-line interface: build, verify, inspect and export routings.

The CLI wraps the library's main entry points so that the reproduction can be
driven without writing Python:

* ``python -m repro build --graph cycle:24 --strategy auto --output routing.json``
  builds a routing for a generated graph and optionally saves it;
* ``python -m repro verify --graph cycle:24 --strategy circular``
  builds and then checks the construction's ``(d, f)`` guarantee;
* ``python -m repro stats --graph hypercube:4 --strategy kernel``
  prints the routing-table statistics (lengths, stretch, load);
* ``python -m repro simulate --graph cycle:16 --faults 3,7 --messages 5``
  runs the network simulator over the routing with the given failed nodes;
* ``python -m repro campaign --graph circulant:24,1,2 --sizes 1,2,3 --samples 100``
  runs indexed Monte-Carlo fault campaigns (one per fault-set size) through
  the :class:`~repro.faults.engine.CampaignEngine`, optionally sharded over
  ``--workers`` processes (same seed => same rows for any worker count);
* ``python -m repro graphs``
  lists the graph specifications the ``--graph`` option accepts.

Graph specifications have the form ``name:arg1,arg2`` — e.g. ``cycle:24``,
``hypercube:4``, ``circulant:16,1,2``, ``gnp:40,0.08,7`` (n, p, seed),
``flower:2,5`` (t, k) and ``two-trees:2`` (t).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis import format_table
from repro.core import build_routing, verify_construction
from repro.core.statistics import concentrator_load_share, routing_statistics
from repro.core.builder import available_strategies
from repro.exceptions import ReproError
from repro.faults import CampaignEngine
from repro.graphs import generators, synthetic
from repro.graphs.graph import Graph
from repro.network import NetworkSimulator, XorEncryptionService
from repro.serialization import construction_to_dict, save_json


# ----------------------------------------------------------------------
# Graph specification parsing
# ----------------------------------------------------------------------
def _spec_int(values: Sequence[str], index: int, default: Optional[int] = None) -> int:
    try:
        return int(values[index])
    except IndexError:
        if default is not None:
            return default
        raise ValueError("missing integer argument") from None


GRAPH_FACTORIES: Dict[str, Callable[[List[str]], Graph]] = {
    "cycle": lambda args: generators.cycle_graph(_spec_int(args, 0, 12)),
    "path": lambda args: generators.path_graph(_spec_int(args, 0, 12)),
    "complete": lambda args: generators.complete_graph(_spec_int(args, 0, 6)),
    "hypercube": lambda args: generators.hypercube_graph(_spec_int(args, 0, 3)),
    "ccc": lambda args: generators.cube_connected_cycles_graph(_spec_int(args, 0, 3)),
    "butterfly": lambda args: generators.butterfly_graph(_spec_int(args, 0, 3)),
    "grid": lambda args: generators.grid_graph(_spec_int(args, 0, 4), _spec_int(args, 1, 4)),
    "torus": lambda args: generators.torus_graph(_spec_int(args, 0, 4), _spec_int(args, 1, 4)),
    "circulant": lambda args: generators.circulant_graph(
        _spec_int(args, 0, 12), [int(value) for value in args[1:]] or [1, 2]
    ),
    "petersen": lambda args: generators.petersen_graph(),
    "gnp": lambda args: generators.gnp_random_graph(
        _spec_int(args, 0, 30), float(args[1]) if len(args) > 1 else 0.1, seed=_spec_int(args, 2, 0)
    ),
    "harary": lambda args: generators.harary_graph(_spec_int(args, 0, 3), _spec_int(args, 1, 10)),
    "flower": lambda args: synthetic.flower_graph(_spec_int(args, 0, 1), _spec_int(args, 1, 5))[0],
    "two-trees": lambda args: synthetic.two_trees_graph(_spec_int(args, 0, 1))[0],
    "kernel-test": lambda args: synthetic.kernel_test_graph(_spec_int(args, 0, 1)),
}


def parse_graph_spec(spec: str) -> Graph:
    """Parse a ``name:arg1,arg2`` graph specification into a graph."""
    name, _, argument_text = spec.partition(":")
    name = name.strip().lower()
    if name not in GRAPH_FACTORIES:
        raise ValueError(
            f"unknown graph family {name!r}; available: {sorted(GRAPH_FACTORIES)}"
        )
    arguments = [item.strip() for item in argument_text.split(",") if item.strip()]
    try:
        return GRAPH_FACTORIES[name](arguments)
    except (ValueError, TypeError) as exc:
        raise ValueError(f"invalid arguments for graph family {name!r}: {exc}") from exc


def _parse_faults(text: Optional[str], graph: Graph) -> List:
    """Parse a comma-separated fault list, matching integer labels where possible."""
    if not text:
        return []
    faults = []
    labels = {str(node): node for node in graph.nodes()}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if token in labels:
            faults.append(labels[token])
        else:
            raise ValueError(f"node {token!r} is not in the graph")
    return faults


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_graphs(_args: argparse.Namespace) -> int:
    rows = [{"family": name, "example": f"{name}:..."} for name in sorted(GRAPH_FACTORIES)]
    print(format_table(rows, caption="Available graph families (--graph name:args)"))
    return 0


def _build(args: argparse.Namespace):
    graph = parse_graph_spec(args.graph)
    result = build_routing(graph, strategy=args.strategy, t=args.t)
    return graph, result


def _cmd_build(args: argparse.Namespace) -> int:
    _graph, result = _build(args)
    print(result.describe())
    if args.output:
        save_json(construction_to_dict(result), args.output)
        print(f"\nrouting written to {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    _graph, result = _build(args)
    report = verify_construction(result, exhaustive_limit=args.exhaustive_limit)
    print(result.describe())
    print()
    print(report)
    return 0 if report.holds else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    _graph, result = _build(args)
    stats = routing_statistics(result.routing)
    print(result.describe())
    print()
    print(format_table([stats.as_row()], caption="Routing-table statistics"))
    if result.concentrator:
        share = concentrator_load_share(result.routing, result.concentrator)
        print(f"\nconcentrator load share: {share:.0%}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    graph, result = _build(args)
    faults = _parse_faults(args.faults, graph)
    simulator = NetworkSimulator(graph, result.routing, service=XorEncryptionService())
    simulator.fail_nodes(faults)
    alive = [node for node in graph.nodes() if node not in set(faults)]
    rng = random.Random(args.seed)
    rows = []
    for index in range(args.messages):
        origin, destination = rng.sample(alive, 2)
        receipt = simulator.send(origin, destination, f"message-{index}")
        rows.append(
            {
                "from": str(origin),
                "to": str(destination),
                "delivered": "yes" if receipt.delivered else "NO",
                "route_segments": receipt.routes_used,
                "hops": receipt.hops,
            }
        )
    print(result.describe())
    print()
    print(format_table(rows, caption=f"Simulated deliveries with faults {faults}"))
    print(f"\n{simulator.describe()}")
    return 0 if all(row["delivered"] == "yes" for row in rows) else 1


def _parse_sizes(text: str) -> List[int]:
    sizes = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        value = int(token)
        if value < 0:
            raise ValueError(f"fault-set size must be non-negative, got {value}")
        sizes.append(value)
    if not sizes:
        raise ValueError("no fault-set sizes given (e.g. --sizes 1,2,3)")
    return sizes


def _cmd_campaign(args: argparse.Namespace) -> int:
    graph, result = _build(args)
    sizes = _parse_sizes(args.sizes)
    engine = CampaignEngine(
        graph, result.routing, workers=args.workers, chunk_size=args.chunk_size
    )
    campaigns = engine.sweep_fault_sizes(sizes, samples=args.samples, seed=args.seed)
    print(result.describe())
    print()
    print(
        format_table(
            [campaign.as_row() for campaign in campaigns],
            caption=(
                f"Fault campaigns ({args.samples} samples/size, "
                f"workers={args.workers}, seed={args.seed})"
            ),
        )
    )
    for campaign in campaigns:
        if campaign.worst_fault_set is not None and len(campaign.worst_fault_set):
            print(f"worst at |F|={campaign.fault_size}: {campaign.worst_fault_set}")
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant routings for general networks (Peleg & Simons, 1986)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--graph", required=True, help="graph spec, e.g. cycle:24 or circulant:16,1,2")
        sub.add_argument(
            "--strategy",
            default="auto",
            choices=available_strategies(),
            help="construction to use (default: auto)",
        )
        sub.add_argument("--t", type=int, default=None, help="fault parameter override")

    sub_build = subparsers.add_parser("build", help="build a routing and print its summary")
    add_common(sub_build)
    sub_build.add_argument("--output", help="write the construction to this JSON file")
    sub_build.set_defaults(handler=_cmd_build)

    sub_verify = subparsers.add_parser("verify", help="build a routing and verify its guarantee")
    add_common(sub_verify)
    sub_verify.add_argument("--exhaustive-limit", type=int, default=20000)
    sub_verify.set_defaults(handler=_cmd_verify)

    sub_stats = subparsers.add_parser("stats", help="print routing-table statistics")
    add_common(sub_stats)
    sub_stats.set_defaults(handler=_cmd_stats)

    sub_simulate = subparsers.add_parser("simulate", help="simulate deliveries under faults")
    add_common(sub_simulate)
    sub_simulate.add_argument("--faults", default="", help="comma-separated failed nodes, e.g. 3,7")
    sub_simulate.add_argument("--messages", type=int, default=5)
    sub_simulate.add_argument("--seed", type=int, default=0)
    sub_simulate.set_defaults(handler=_cmd_simulate)

    sub_campaign = subparsers.add_parser(
        "campaign", help="run indexed Monte-Carlo fault campaigns per fault-set size"
    )
    add_common(sub_campaign)
    sub_campaign.add_argument(
        "--sizes", default="1,2,3", help="comma-separated fault-set sizes, e.g. 1,2,3"
    )
    sub_campaign.add_argument("--samples", type=int, default=100)
    sub_campaign.add_argument("--seed", type=int, default=0)
    sub_campaign.add_argument(
        "--workers", type=int, default=1, help="worker processes for the evaluation"
    )
    sub_campaign.add_argument(
        "--chunk-size", type=int, default=32, help="fault sets per shard"
    )
    sub_campaign.set_defaults(handler=_cmd_campaign)

    sub_graphs = subparsers.add_parser("graphs", help="list available graph families")
    sub_graphs.set_defaults(handler=_cmd_graphs)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())

"""The columnar result store: typed columns, append-only rows, aggregation.

Every experiment in the library — engine campaigns, scenario suites, grid
sweeps, adversarial batteries — used to terminate in its own ad-hoc result
shape.  :class:`ResultFrame` replaces that zoo with one columnar store:

* **typed columns** — a frame is created against a tuple of
  :class:`Column` specs (name + kind); appends validate and coerce every
  value, so a frame can be persisted and reloaded without guessing types;
* **append-only rows** — rows are only ever added, never mutated, which is
  what makes JSONL persistence (:mod:`repro.results.store`) and resumable
  campaigns sound: a stored prefix of a run is always a valid frame;
* **relational helpers** — ``where`` / ``group_by`` / ``aggregate`` /
  ``pivot`` cover the reshaping the reporting layer needs (scaling tables:
  rows = family/size, columns = ``t``) without any external dependency.

Values are stored column-major (one list per column), so column reads and
aggregations touch only the data they need, and a frame's memory footprint
is a flat ``O(rows x columns)`` of scalars — no per-row dict overhead.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: Column kinds understood by the frame.  ``json`` columns hold arbitrary
#: JSON-encodable values (used for encoded fault-set node lists).
COLUMN_KINDS = ("int", "float", "str", "bool", "json")


@dataclasses.dataclass(frozen=True)
class Column:
    """One typed column of a :class:`ResultFrame`.

    Every column is nullable: ``None`` marks "not applicable for this row"
    (e.g. ``bound`` on an exact-diameter row), which is what lets one schema
    cover exact campaigns, bounded decisions and suite metadata at once.
    """

    name: str
    kind: str = "json"

    def __post_init__(self) -> None:
        if self.kind not in COLUMN_KINDS:
            raise ValueError(
                f"column {self.name!r} has unknown kind {self.kind!r}; "
                f"expected one of {COLUMN_KINDS}"
            )

    def coerce(self, value: object) -> object:
        """Validate/coerce one value for this column (``None`` passes through)."""
        if value is None:
            return None
        try:
            if self.kind == "int":
                if isinstance(value, bool) or not isinstance(value, int):
                    raise TypeError
                return value
            if self.kind == "float":
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise TypeError
                return float(value)
            if self.kind == "str":
                if not isinstance(value, str):
                    raise TypeError
                return value
            if self.kind == "bool":
                if not isinstance(value, bool):
                    raise TypeError
                return value
            return value  # "json": anything the persistence layer can encode
        except TypeError:
            raise TypeError(
                f"column {self.name!r} expects {self.kind}, got "
                f"{value!r} ({type(value).__name__})"
            ) from None


def _value_sort_key(value: object) -> Tuple[bool, str, object]:
    """Total order over heterogeneous cell values (``None`` last).

    Python refuses ``int < str``, so a pivoted column holding, say, integer
    ``t`` values alongside strategy names used to crash the sort.  Values
    are ordered by type class first — all numbers share one class so
    ``1 < 2.5 < 3`` keeps numeric order — then by value within the class.
    """
    if value is None:
        return (True, "", 0)
    if isinstance(value, bool):
        return (False, "bool", value)
    if isinstance(value, (int, float)):
        return (False, "number", value)
    if isinstance(value, str):
        return (False, "str", value)
    return (False, type(value).__name__, repr(value))


def _composite_sort_key(value: object) -> Tuple:
    """Sort key for pivot column values (tuples sort element-wise)."""
    if isinstance(value, tuple):
        return tuple(_value_sort_key(item) for item in value)
    return (_value_sort_key(value),)


#: Named aggregation functions accepted by :meth:`ResultFrame.aggregate`.
AGGREGATIONS: Dict[str, Callable[[Sequence], object]] = {
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
    "sum": lambda values: sum(values) if values else None,
    "mean": lambda values: (sum(values) / len(values)) if values else None,
    "count": len,
    "first": lambda values: values[0] if values else None,
    "last": lambda values: values[-1] if values else None,
}


class ResultFrame:
    """An append-only columnar table of experiment results.

    The frame is the single result store every producer emits into (see
    :data:`repro.results.records.RESULT_COLUMNS` for the shared experiment
    schema); the legacy result dataclasses are thin views reconstructed from
    its rows via their ``from_record`` classmethods.
    """

    __slots__ = ("_columns", "_by_name", "_data")

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise ValueError("a ResultFrame needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {names}")
        self._columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, Column] = {c.name: c for c in self._columns}
        self._data: Dict[str, List[object]] = {name: [] for name in names}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self._columns)

    def __len__(self) -> int:
        return len(self._data[self._columns[0].name])

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"<ResultFrame rows={len(self)} columns={len(self._columns)}>"

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: Mapping[str, object]) -> int:
        """Append one row (a mapping of column name to value); return its index.

        Unknown keys are an error (the schema is the contract between
        producers and the persistence/reporting layers); missing columns are
        filled with ``None``.
        """
        unknown = set(record) - set(self._by_name)
        if unknown:
            raise ValueError(
                f"record has columns {sorted(unknown)} not in the frame "
                f"schema {list(self._by_name)}"
            )
        coerced = {
            name: column.coerce(record.get(name))
            for name, column in self._by_name.items()
        }
        for name, value in coerced.items():
            self._data[name].append(value)
        return len(self) - 1

    def extend(self, records: Iterable[Mapping[str, object]]) -> None:
        """Append every record of an iterable."""
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------
    # Row/column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> Tuple[object, ...]:
        """Return one column's values as a tuple."""
        if name not in self._data:
            raise KeyError(f"no column {name!r}; columns: {list(self._data)}")
        return tuple(self._data[name])

    def row(self, index: int) -> Dict[str, object]:
        """Return one row as a dict (column order preserved)."""
        return {name: self._data[name][index] for name in self._data}

    def rows(self) -> List[Dict[str, object]]:
        """Return every row as a dict, in append order."""
        return [self.row(index) for index in range(len(self))]

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.rows())

    # ------------------------------------------------------------------
    # Relational helpers
    # ------------------------------------------------------------------
    def where(
        self,
        predicate: Optional[Callable[[Dict[str, object]], bool]] = None,
        **equals: object,
    ) -> "ResultFrame":
        """Return a new frame keeping rows that match.

        ``equals`` keyword filters require exact column equality;
        ``predicate`` (called with the row dict) covers everything else.
        Both may be combined.
        """
        for key in equals:
            if key not in self._by_name:
                raise KeyError(f"no column {key!r}")
        selected = ResultFrame(self._columns)
        for index in range(len(self)):
            row = self.row(index)
            if any(row[key] != value for key, value in equals.items()):
                continue
            if predicate is not None and not predicate(row):
                continue
            selected.append(row)
        return selected

    def distinct(self, *names: str) -> List[Tuple[object, ...]]:
        """Return the distinct value tuples of the named columns, in first-seen order."""
        seen: Dict[Tuple[object, ...], None] = {}
        for index in range(len(self)):
            key = tuple(self._data[name][index] for name in names)
            seen.setdefault(key, None)
        return list(seen)

    def group_by(self, *names: str) -> List[Tuple[Tuple[object, ...], "ResultFrame"]]:
        """Partition the frame by the named columns (groups in first-seen order)."""
        groups: Dict[Tuple[object, ...], ResultFrame] = {}
        for index in range(len(self)):
            key = tuple(self._data[name][index] for name in names)
            group = groups.get(key)
            if group is None:
                group = groups[key] = ResultFrame(self._columns)
            group.append(self.row(index))
        return list(groups.items())

    def aggregate(
        self,
        by: Sequence[str],
        **outputs: Tuple[str, Union[str, Callable[[Sequence], object]]],
    ) -> List[Dict[str, object]]:
        """Group by ``by`` and fold columns; returns one dict per group.

        Each output is ``name=(column, fn)`` where ``fn`` is a callable over
        the group's non-``None`` values or one of the named aggregations
        (``min`` / ``max`` / ``sum`` / ``mean`` / ``count`` / ``first`` /
        ``last``).

        >>> frame.aggregate(["family", "t"], worst=("max_diam", "max"))
        """
        resolved: Dict[str, Tuple[str, Callable[[Sequence], object]]] = {}
        for name, (column, fn) in outputs.items():
            if column not in self._by_name:
                raise KeyError(f"no column {column!r}")
            resolved[name] = (column, self._resolve_aggregation(fn))
        results: List[Dict[str, object]] = []
        for key, group in self.group_by(*by):
            row: Dict[str, object] = dict(zip(by, key))
            for name, (column, fn) in resolved.items():
                values = [value for value in group.column(column) if value is not None]
                row[name] = fn(values)
            results.append(row)
        return results

    def _resolve_aggregation(
        self, fn: Union[str, Callable[[Sequence], object]]
    ) -> Callable[[Sequence], object]:
        """Resolve an aggregation name (or pass a callable through) —
        shared by :meth:`aggregate` and :meth:`pivot`."""
        if isinstance(fn, str):
            if fn not in AGGREGATIONS:
                raise ValueError(
                    f"unknown aggregation {fn!r}; available: {sorted(AGGREGATIONS)}"
                )
            return AGGREGATIONS[fn]
        return fn

    def pivot(
        self,
        index: Sequence[str],
        column: Union[str, Sequence[str]],
        value: str,
        fn: Union[
            str,
            Callable[[Sequence], object],
            Sequence[Union[str, Callable[[Sequence], object]]],
        ] = "max",
    ) -> Tuple[List[Dict[str, object]], List[object]]:
        """Cross-tabulate: one output row per distinct ``index`` tuple, one
        output column per distinct ``column`` value, cells folded with ``fn``.

        ``column`` may name one column or a sequence of them — a sequence
        produces one output column per distinct value *tuple* (the shape of
        strategy-comparison tables, whose column groups are
        ``(strategy, t)``).  ``fn`` may likewise be one aggregation or a
        sequence; a sequence folds every cell into a tuple with one entry
        per aggregation (e.g. ``("mean", "max")`` for mean-and-worst
        cells).

        Returns ``(rows, column_values)`` where each row dict maps the index
        columns to their values and each column value (scalar or tuple) to
        its aggregated cell (``None`` for empty cells).  Column values are
        emitted in sorted order (``None`` last) under a total order that
        tolerates mixed value types — ints and strategy strings may share a
        pivoted column without crashing the sort.
        """
        multi_fn = isinstance(fn, (list, tuple))
        fns = [self._resolve_aggregation(f) for f in fn] if multi_fn else [
            self._resolve_aggregation(fn)
        ]
        columns = [column] if isinstance(column, str) else list(column)
        if not columns:
            raise ValueError("pivot needs at least one column to spread over")
        for name in columns:
            if name not in self._by_name:
                raise KeyError(f"no column {name!r}")
        composite = not isinstance(column, str)
        column_values = sorted(
            set(self.distinct(*columns))
            if composite
            else {v for v in self.column(column)},
            key=_composite_sort_key,
        )
        rows: List[Dict[str, object]] = []
        for key, group in self.group_by(*index):
            row: Dict[str, object] = dict(zip(index, key))
            for column_value in column_values:
                match = (
                    dict(zip(columns, column_value))
                    if composite
                    else {column: column_value}
                )
                cell = group.where(**match)
                values = [v for v in cell.column(value) if v is not None]
                if not values:
                    row[column_value] = None
                elif multi_fn:
                    row[column_value] = tuple(f(values) for f in fns)
                else:
                    row[column_value] = fns[0](values)
            rows.append(row)
        return rows, column_values

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, columns: Sequence[Column], records: Iterable[Mapping[str, object]]
    ) -> "ResultFrame":
        """Build a frame from an iterable of records."""
        frame = cls(columns)
        frame.extend(records)
        return frame

"""JSONL persistence for result frames: run manifests and resumable stores.

A :class:`ResultStore` is a :class:`~repro.results.frame.ResultFrame` bound
to an append-only JSONL file.  The first line is the **run manifest** — the
parameters that make the run reproducible (scenario/grid canonical strings,
samples, seed, bound, chunk size) plus the column schema — and every later
line is one keyed result record:

.. code-block:: text

    {"kind": "manifest", "format": 1, "run": {...}, "columns": [...]}
    {"kind": "row", "key": "hypercube:d=3/kernel/t=1/sizes:1,2,3#0", "record": {...}}
    {"kind": "row", "key": "hypercube:d=3/kernel/t=1/sizes:1,2,3#1", "record": {...}}

The row ``key`` is a content address (canonical scenario string + campaign
position), so an interrupted run can be **resumed**: reopening the store
with the same run parameters loads every completed row, tolerates a
truncated final line (the telltale of a killed process; a zero-byte file or
a truncated manifest line is simply a fresh store), and lets the runner
skip the campaigns whose keys are already recorded — identical rows, no
recomputation.  Reopening with *different* run parameters is an error:
mixing rows from two different runs in one file would silently corrupt
every table rendered from it.

Because rows are appended in deterministic campaign order, a resumed file
is byte-for-byte identical to the file an uninterrupted run writes.

Writes are **crash-safe**: every line is a single ``os.write`` of one
complete ``bytes`` object to an ``O_APPEND`` descriptor, so a killed writer
can tear at most the final line — never interleave or lose earlier rows —
and an optional fsync policy (``fsync="never"|"close"|"always"``, or the
``REPRO_STORE_FSYNC`` environment variable) trades throughput for
power-failure durability.  When resuming does find a torn tail, the torn
bytes are preserved in a ``<path>.quarantine`` sidecar before the store is
truncated — nothing is silently destroyed — and :meth:`ResultStore.salvage`
performs the same repair explicitly (the ``repro salvage`` command).

Beyond the primary key index every store maintains a **secondary index by
``(family, n, strategy)``** — one comparison-table cell block per group —
and :func:`merge_result_stores` recombines several stores (e.g. the
per-strategy halves of a split comparison sweep) into one read-only store,
refusing key collisions whose records disagree: a fingerprint mismatch
means the stores were built against different constructions.  The merge
streams: each input file is scanned once for keys and byte offsets, and
records are seek-read straight into the merged frame, so transient memory
scales with the number of stores and keys rather than the sum of their
row payloads.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.results.frame import Column, ResultFrame
from repro.results.records import RESULT_COLUMNS, effective_strategy
from repro.runtime.chaos import chaos_point

#: Format identifier embedded in every manifest this module writes.
#: Version history:
#: 1 — PR 4: initial JSONL store (suite battery seeds hashed scenario
#:     *position*; no ``strategy`` column).
#: 2 — PR 5: battery seeds hash scenario *identity* (canonical string +
#:     occurrence + plan) and records carry ``strategy``.  Version-1 stores
#:     hold rows the new seed scheme can never reproduce, so resuming or
#:     merging them must refuse loudly instead of silently mixing schemes.
#: 3 — PR 7: records carry ``disposition``/``reason`` and stores hold
#:     ``kind="status"`` rows for inapplicable and failed campaigns, so a
#:     version-2 store resumed under the new schema would re-drop scenarios
#:     it already recorded and corrupt byte-identity; refuse instead.
#: 4 — PR 8: records carry ``backend``/``candidate_limit`` (the resolved
#:     eval backend and the greedy adversary's candidate budget) and suite
#:     manifests carry the greedy-probe parameters, so every written row's
#:     bytes changed; resuming a version-3 store would break byte-identity
#:     on the very first appended row.
#: 5 — PR 10: records carry the traffic columns (``workload``/``duration``/
#:     ``injected``/``delivered``/``dropped``/``throughput``/
#:     ``mean_latency``/``p99_latency``/``drop_rate``/``max_queue_depth``)
#:     and ``kind="traffic"`` rows persist event-driven workload runs.
#:     Rows are written fully coerced, so the new columns change every
#:     row's bytes; resuming a version-4 store would break byte-identity.
STORE_FORMAT_VERSION = 5

#: Recognised fsync policies: ``never`` (default — the OS decides when
#: bytes hit the platter), ``close`` (one fsync when the store closes),
#: ``always`` (fsync after every appended row).
FSYNC_POLICIES = ("never", "close", "always")
#: Environment variable supplying the default fsync policy.
FSYNC_ENV = "REPRO_STORE_FSYNC"


class ResultStoreError(ReproError):
    """Raised when a result store cannot be created, read or resumed."""


def _dump_line(document: Mapping[str, object]) -> str:
    # ``allow_nan=True`` (the default) writes ``Infinity`` for unbounded
    # diameters; Python's ``json.loads`` reads it back exactly.
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _manifest_document(
    run: Mapping[str, object], columns: Sequence[Column]
) -> Dict[str, object]:
    return {
        "kind": "manifest",
        "format": STORE_FORMAT_VERSION,
        "run": dict(run),
        "columns": [[column.name, column.kind] for column in columns],
    }


class ResultStore:
    """A result frame bound to an append-only JSONL file (see module doc).

    Use the classmethods: :meth:`create` starts a fresh store (refusing to
    clobber an existing file), :meth:`open` resumes an existing store or
    creates a missing one, and :meth:`load` reads a finished store for
    reporting without opening it for writes.
    """

    def __init__(
        self,
        path: str,
        run: Mapping[str, object],
        columns: Sequence[Column] = RESULT_COLUMNS,
        fsync: Optional[str] = None,
    ) -> None:
        self.path = path
        self.run: Dict[str, object] = dict(run)
        self.frame = ResultFrame(columns)
        if fsync is None:
            fsync = os.environ.get(FSYNC_ENV) or "never"
        if fsync not in FSYNC_POLICIES:
            raise ResultStoreError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        self.fsync = fsync
        self._keys: Dict[str, int] = {}
        #: Secondary index: ``(family, n, strategy) -> row keys`` in append
        #: order, so reports and merges can address one comparison cell's
        #: campaigns directly (the strategy is the *effective* one — the
        #: scheme actually built when the scenario asked for ``auto``).
        self._groups: Dict[Tuple[object, object, object], List[str]] = {}
        self._fd: Optional[int] = None

    def _write_line(self, text: str) -> None:
        """Persist one complete line with a single ``os.write``.

        A whole line in one syscall means a crash can only ever tear the
        *final* line of the file (POSIX ``O_APPEND`` writes are atomic with
        respect to the offset), which is exactly the damage
        :meth:`_read_existing` and :meth:`salvage` know how to repair.
        """
        data = (text + "\n").encode("utf-8")
        view = memoryview(data)
        while view:
            written = os.write(self._fd, view)
            view = view[written:]
        if self.fsync == "always":
            os.fsync(self._fd)

    # ------------------------------------------------------------------
    # Opening
    # ------------------------------------------------------------------
    @classmethod
    def _start_fresh(
        cls,
        path: str,
        run: Mapping[str, object],
        columns: Sequence[Column],
        fsync: Optional[str] = None,
    ) -> "ResultStore":
        """Write a new manifest at ``path`` (overwriting whatever is there)."""
        store = cls(path, run, columns, fsync=fsync)
        store._fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC | os.O_APPEND, 0o666
        )
        store._write_line(_dump_line(_manifest_document(run, columns)))
        return store

    @classmethod
    def create(
        cls,
        path: str,
        run: Mapping[str, object],
        columns: Sequence[Column] = RESULT_COLUMNS,
        fsync: Optional[str] = None,
    ) -> "ResultStore":
        """Start a fresh store at ``path`` (error if the file exists)."""
        if os.path.exists(path):
            raise ResultStoreError(
                f"result store {path!r} already exists; resume it or remove it"
            )
        return cls._start_fresh(path, run, columns, fsync=fsync)

    @classmethod
    def open(
        cls,
        path: str,
        run: Mapping[str, object],
        columns: Sequence[Column] = RESULT_COLUMNS,
        fsync: Optional[str] = None,
    ) -> "ResultStore":
        """Resume the store at ``path``, creating it when missing.

        An existing file must carry a manifest whose run parameters equal
        ``run`` — resuming a store written by a different run is refused.
        A truncated final line (killed writer) is quarantined into the
        ``<path>.quarantine`` sidecar; every complete row is loaded and its
        key marked as done.  A zero-byte file — or one holding only a
        prefix of this run's manifest line, the telltale of a writer killed
        before its first flush completed — is a fresh store, not a parse
        error.
        """
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            return cls._start_fresh(path, run, columns, fsync=fsync)
        # A newline-less file that is a strict prefix of this run's manifest
        # line is a write killed before the first flush completed: start
        # fresh.  Reading one character past the manifest length bounds the
        # check — no need to slurp a large store here; anything else
        # (foreign content, a different run's manifest) falls through to
        # the normal resume path and its precise errors.
        manifest_line = _dump_line(_manifest_document(run, columns))
        with open(path, "r", encoding="utf-8") as handle:
            prefix = handle.read(len(manifest_line) + 1)
        if "\n" not in prefix and manifest_line.startswith(prefix):
            return cls._start_fresh(path, run, columns, fsync=fsync)
        store = cls(path, run, columns, fsync=fsync)
        keep_bytes = store._read_existing(expected_run=run)
        # Preserve a truncated trailing line in the quarantine sidecar (a
        # torn tail is evidence of a crash, not garbage) before appending.
        cls._quarantine_tail(path, keep_bytes)
        store._fd = os.open(path, os.O_WRONLY | os.O_APPEND)
        return store

    @classmethod
    def load(
        cls, path: str, columns: Sequence[Column] = RESULT_COLUMNS
    ) -> "ResultStore":
        """Read a store for reporting; the returned store rejects appends."""
        if not os.path.exists(path):
            raise ResultStoreError(f"result store {path!r} does not exist")
        store = cls(path, run={}, columns=columns)
        store._read_existing(expected_run=None)
        return store

    @staticmethod
    def _quarantine_tail(path: str, keep_bytes: int) -> Optional[str]:
        """Move any bytes past ``keep_bytes`` into the quarantine sidecar.

        Returns the sidecar path when torn bytes were preserved, ``None``
        when the file was already clean.  The sidecar is append-only raw
        bytes — repeated crashes accumulate their evidence rather than
        overwriting it.
        """
        size = os.path.getsize(path)
        if size <= keep_bytes:
            return None
        sidecar = path + ".quarantine"
        with open(path, "rb") as handle:
            handle.seek(keep_bytes)
            torn = handle.read()
        with open(sidecar, "ab") as out:
            out.write(torn)
            if not torn.endswith(b"\n"):
                out.write(b"\n")
        with open(path, "r+b") as handle:
            handle.truncate(keep_bytes)
        return sidecar

    @classmethod
    def salvage(
        cls, path: str, columns: Sequence[Column] = RESULT_COLUMNS
    ) -> Tuple["ResultStore", Optional[str]]:
        """Repair a torn store in place and report what was quarantined.

        Loads every complete row (run parameters are taken from the stored
        manifest, not checked), moves any torn tail into the
        ``<path>.quarantine`` sidecar, truncates the store back to its last
        complete line, and returns ``(store, sidecar)`` where ``sidecar``
        is ``None`` when the store was already clean.  The returned store
        is read-only; resume it with :meth:`open` to continue the sweep.
        This is the ``repro salvage`` command.
        """
        if not os.path.exists(path):
            raise ResultStoreError(f"result store {path!r} does not exist")
        store = cls(path, run={}, columns=columns)
        keep_bytes = store._read_existing(expected_run=None)
        sidecar = cls._quarantine_tail(path, keep_bytes)
        return store, sidecar

    def _read_existing(self, expected_run: Optional[Mapping[str, object]]) -> int:
        """Load manifest and rows from disk; return the clean byte length."""
        keep = 0
        with open(self.path, "r", encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.split("\n")
        complete = lines[:-1]  # text after the final "\n" is a partial write
        trailing = lines[-1]
        if not complete:
            raise ResultStoreError(
                f"result store {self.path!r} has no complete manifest line"
            )
        try:
            manifest = json.loads(complete[0])
        except json.JSONDecodeError as exc:
            raise ResultStoreError(
                f"result store {self.path!r} has a corrupt manifest: {exc}"
            ) from None
        if manifest.get("kind") != "manifest":
            raise ResultStoreError(
                f"result store {self.path!r} does not start with a manifest line"
            )
        if manifest.get("format") != STORE_FORMAT_VERSION:
            raise ResultStoreError(
                f"result store {self.path!r} has format "
                f"{manifest.get('format')!r}; this library writes "
                f"{STORE_FORMAT_VERSION}"
            )
        stored_run = manifest.get("run", {})
        if expected_run is not None:
            expected = json.loads(_dump_line(dict(expected_run)))
            if stored_run != expected:
                raise ResultStoreError(
                    f"result store {self.path!r} was written by a different "
                    f"run: stored {stored_run!r}, requested {expected!r}; "
                    "use a fresh store path for new parameters"
                )
        self.run = dict(stored_run)
        keep += len(complete[0]) + 1
        for position, line in enumerate(complete[1:], start=2):
            try:
                document = json.loads(line)
            except json.JSONDecodeError:
                if position == len(complete) and not trailing:
                    # A malformed *final* complete line is still a truncated
                    # write (the newline survived the kill); drop it too.
                    return keep
                raise ResultStoreError(
                    f"result store {self.path!r} line {position} is corrupt"
                ) from None
            if document.get("kind") != "row":
                raise ResultStoreError(
                    f"result store {self.path!r} line {position} is not a row"
                )
            key = document.get("key")
            if not isinstance(key, str):
                raise ResultStoreError(
                    f"result store {self.path!r} line {position} has no key"
                )
            if key in self._keys:
                raise ResultStoreError(
                    f"result store {self.path!r} records key {key!r} twice"
                )
            self._index_row(key, document.get("record", {}))
            keep += len(line) + 1
        return keep

    def _index_row(
        self, key: str, record: Mapping[str, object]
    ) -> Dict[str, object]:
        """Append a record to the frame and both indexes; return the
        coerced row (so writers need not rebuild it)."""
        index = self.frame.append(record)
        self._keys[key] = index
        row = self.frame.row(index)
        group = (row.get("family"), row.get("n"), effective_strategy(row))
        self._groups.setdefault(group, []).append(key)
        return row

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.frame)

    def keys(self) -> Tuple[str, ...]:
        """Return the recorded row keys in append order."""
        ordered = sorted(self._keys.items(), key=lambda item: item[1])
        return tuple(key for key, _ in ordered)

    def __contains__(self, key: str) -> bool:
        return key in self._keys

    def get(self, key: str) -> Dict[str, object]:
        """Return the record stored under ``key``."""
        return self.frame.row(self._keys[key])

    def group_index(self) -> Dict[Tuple[object, object, object], Tuple[str, ...]]:
        """Return the ``(family, n, strategy) -> row keys`` secondary index.

        The strategy component is the *effective* one — the scheme actually
        built when the scenario asked for ``auto``, and the built scheme for
        records from stores predating the ``strategy`` column — so one group
        is one cell block of the strategy-comparison tables.  Groups and
        their keys are in first-seen/append order.
        """
        return {group: tuple(keys) for group, keys in self._groups.items()}

    def keys_for(
        self, family: object, n: object, strategy: object
    ) -> Tuple[str, ...]:
        """Return the row keys recorded under one ``(family, n, strategy)``."""
        return tuple(self._groups.get((family, n, strategy), ()))

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, key: str, record: Mapping[str, object]) -> None:
        """Record one keyed row: append to the frame and persist the line."""
        if self._fd is None:
            raise ResultStoreError(
                f"result store {self.path!r} is read-only (opened with load())"
            )
        if key in self._keys:
            raise ResultStoreError(f"key {key!r} is already recorded")
        row = self._index_row(key, record)
        line = _dump_line({"kind": "row", "key": key, "record": row})
        if chaos_point("append", key) == "torn":
            # Chaos harness: emulate a writer killed mid-``write`` — half a
            # line hits the file and the process dies without cleanup.
            data = line.encode("utf-8")
            os.write(self._fd, data[: max(1, len(data) // 2)])
            os._exit(23)
        self._write_line(line)

    def close(self) -> None:
        """Close the underlying file (reads keep working)."""
        if self._fd is not None:
            if self.fsync in ("close", "always"):
                os.fsync(self._fd)
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _merge_runs(runs: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Fold several run manifests into one reporting manifest.

    ``scenarios`` lists are unioned in first-seen order (each store holds
    one slice of the sweep); every other key is kept only when all stores
    that carry it agree, so a merged report never shows a parameter that
    was not in fact common to the merged runs.
    """
    merged: Dict[str, object] = {}
    scenarios: List[object] = []
    seen_scenarios: Dict[object, None] = {}
    disputed: set = set()
    for run in runs:
        for scenario in run.get("scenarios") or ():
            if scenario not in seen_scenarios:
                seen_scenarios[scenario] = None
                scenarios.append(scenario)
        for key, value in run.items():
            if key == "scenarios" or key in disputed:
                continue
            if key in merged and merged[key] != value:
                del merged[key]
                disputed.add(key)
            elif key not in merged:
                merged[key] = value
    if scenarios:
        merged["scenarios"] = scenarios
    return merged


def _scan_store(path: str) -> Tuple[Dict[str, object], List[Tuple[str, int, int]]]:
    """One sequential pass over a store file without retaining its records.

    Validates the manifest exactly as :meth:`ResultStore._read_existing`
    does (kind, format version, per-store duplicate keys, corrupt middle
    lines; a torn final line is tolerated) but keeps only the run manifest
    and a ``(key, byte_offset, byte_length)`` entry per complete row — the
    record payloads stay on disk until the merge emits or compares them.
    """
    if not os.path.exists(path):
        raise ResultStoreError(f"result store {path!r} does not exist")
    entries: List[Tuple[str, int, int]] = []
    seen: set = set()
    with open(path, "rb") as handle:
        manifest_line = handle.readline()
        if not manifest_line.endswith(b"\n"):
            raise ResultStoreError(
                f"result store {path!r} has no complete manifest line"
            )
        try:
            manifest = json.loads(manifest_line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ResultStoreError(
                f"result store {path!r} has a corrupt manifest: {exc}"
            ) from None
        if manifest.get("kind") != "manifest":
            raise ResultStoreError(
                f"result store {path!r} does not start with a manifest line"
            )
        if manifest.get("format") != STORE_FORMAT_VERSION:
            raise ResultStoreError(
                f"result store {path!r} has format "
                f"{manifest.get('format')!r}; this library writes "
                f"{STORE_FORMAT_VERSION}"
            )
        offset = len(manifest_line)
        position = 1
        while True:
            line = handle.readline()
            if not line:
                break
            position += 1
            if not line.endswith(b"\n"):
                break  # torn tail: a writer killed mid-append
            try:
                document = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                if not handle.readline():
                    break  # malformed *final* line: the newline survived
                raise ResultStoreError(
                    f"result store {path!r} line {position} is corrupt"
                ) from None
            if document.get("kind") != "row":
                raise ResultStoreError(
                    f"result store {path!r} line {position} is not a row"
                )
            key = document.get("key")
            if not isinstance(key, str):
                raise ResultStoreError(
                    f"result store {path!r} line {position} has no key"
                )
            if key in seen:
                raise ResultStoreError(
                    f"result store {path!r} records key {key!r} twice"
                )
            seen.add(key)
            entries.append((key, offset, len(line)))
            offset += len(line)
    return dict(manifest.get("run", {})), entries


def _read_record(handle, offset: int, length: int) -> Dict[str, object]:
    """Seek-read one row line and return its record payload."""
    handle.seek(offset)
    return json.loads(handle.read(length).decode("utf-8")).get("record", {})


def merge_result_stores(
    paths: Sequence[str], columns: Sequence[Column] = RESULT_COLUMNS
) -> ResultStore:
    """Stream several stores' rows into one read-only merged store.

    Rows are keyed by the same content addresses the stores use
    (``scenario#plan``), so slices of one logical sweep — e.g. the
    ``kernel`` and ``circular`` halves of a strategy comparison run into
    separate files — recombine exactly.  A key recorded in more than one
    store must carry the identical record; in particular a **fingerprint
    mismatch means the stores were built against different constructions
    and merging them would silently corrupt every table**, so it is a hard
    error rather than a pick-one merge.  The merged manifest unions the
    scenario lists and keeps only the campaign parameters all stores agree
    on (see :func:`_merge_runs`).

    The merge is **streaming**: instead of materialising every input store
    as its own in-memory frame (the historical implementation peaked at
    roughly twice the total row bytes), :func:`_scan_store` makes one
    sequential pass per file keeping only ``(key, offset, length)``
    entries, and the emission pass seek-reads each record exactly once,
    straight into the merged frame.  Duplicate keys — normally a small
    overlap between slices — are the only records read twice (once to
    emit from their first store, once to compare against each later
    occurrence), so transient memory is one record plus the key index, not
    the sum of the input stores.  Rows keep first-seen order: stores in
    input order, each store's rows in file order.
    """
    if not paths:
        raise ResultStoreError("no result stores to merge")
    scans = [_scan_store(path) for path in paths]
    merged = ResultStore(
        "+".join(paths), _merge_runs([run for run, _ in scans]), columns
    )
    origin: Dict[str, int] = {}  # key -> index of the store that emitted it
    for index, (_, entries) in enumerate(scans):
        for key, _, _ in entries:
            origin.setdefault(key, index)
    for index, (path, (_, entries)) in enumerate(zip(paths, scans)):
        with open(path, "rb") as handle:
            for key, offset, length in entries:
                record = _read_record(handle, offset, length)
                if origin[key] == index:
                    merged._index_row(key, record)
                    continue
                # Coerce the duplicate through a scratch frame so the
                # comparison sees the same typed values the merged frame
                # holds (duplicates are rare: only overlapping slices).
                scratch = ResultFrame(columns)
                candidate = scratch.row(scratch.append(record))
                existing = merged.get(key)
                if existing.get("fingerprint") != candidate.get("fingerprint"):
                    raise ResultStoreError(
                        f"stores {paths[origin[key]]!r} and {path!r} both "
                        f"record key {key!r} but against different routings "
                        f"(fingerprints "
                        f"{str(existing.get('fingerprint'))[:12]}... "
                        f"vs {str(candidate.get('fingerprint'))[:12]}...); "
                        "they belong to different constructions and cannot "
                        "be merged"
                    )
                if existing != candidate:
                    differing = sorted(
                        name
                        for name in set(existing) | set(candidate)
                        if existing.get(name) != candidate.get(name)
                    )
                    raise ResultStoreError(
                        f"stores {paths[origin[key]]!r} and {path!r} both "
                        f"record key {key!r} with the same fingerprint but "
                        f"differing values in {differing}; they were "
                        "produced by different campaign parameters and "
                        "cannot be merged"
                    )
    return merged

"""The shared experiment-record schema every result producer emits.

One row of the unified result store describes one *campaign aggregate*: a
battery of fault sets evaluated against one workload.  The same columns
cover all three historical result shapes —
:class:`~repro.faults.simulation.CampaignResult` (exact diameters),
:class:`~repro.faults.simulation.DecisionCampaignResult` (bounded pass/fail
decisions) and :class:`~repro.scenarios.suite.ScenarioRow` (a campaign plus
its scenario's construction metadata) — which are now thin views over these
records: each exposes ``record()`` / ``from_record()`` and round-trips
losslessly through a :class:`~repro.results.frame.ResultFrame` row and its
JSONL persistence.

Inapplicable columns are ``None`` (e.g. ``bound`` on an exact row, or
``scenario`` on a bare engine campaign); ``kind`` discriminates the view
class a record reconstructs into.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

from repro.results.frame import Column, ResultFrame

#: ``kind`` values a record may carry.  ``status`` rows describe campaigns
#: that produced no aggregate: ``disposition`` says why.  ``traffic`` rows
#: describe one workload run over the event-driven simulator (throughput /
#: latency / drop metrics instead of diameters).
RECORD_KINDS = ("exact", "decision", "status", "traffic")

#: ``disposition`` values a ``status`` record may carry: ``inapplicable``
#: (the scenario cannot be built under these parameters and was dropped
#: under ``--skip-inapplicable``) or ``failed`` (the campaign's task was
#: quarantined after exhausting its retry budget).
STATUS_DISPOSITIONS = ("inapplicable", "failed")

#: The unified experiment-record schema (one row per campaign aggregate).
RESULT_COLUMNS: Tuple[Column, ...] = (
    # Provenance: which layer produced the row.
    Column("source", "str"),      # "campaign" | "suite" | "experiment"
    Column("kind", "str"),        # "exact" | "decision" | "status"
    # Status rows only: why no aggregate exists, and the human-readable
    # reason (a build error or the final task failure).
    Column("disposition", "str"),  # "inapplicable" | "failed"
    Column("reason", "str"),
    # Workload identification (suite/grid rows; None on bare campaigns).
    Column("scenario", "str"),    # canonical scenario string
    Column("family", "str"),      # graph family name (scenario prefix)
    Column("strategy", "str"),    # routing strategy requested ("auto" incl.)
    Column("scheme", "str"),      # construction scheme actually built
    Column("n", "int"),           # nodes
    Column("m", "int"),           # edges
    Column("t", "int"),           # fault parameter of the construction
    Column("fingerprint", "str"),  # full routing fingerprint (64 hex chars)
    # Battery shape.
    Column("faults", "int"),      # nominal fault-set size (0 for random:p)
    Column("samples", "int"),     # fault sets evaluated
    # Realised fault-set sizes (differ from ``faults`` under random:p).
    Column("faults_min", "int"),
    Column("faults_mean", "float"),
    Column("faults_max", "int"),
    # Exact-campaign statistics.
    Column("mean_diam", "float"),
    Column("min_diam", "float"),
    Column("max_diam", "float"),
    Column("disconnected", "float"),
    # Bounded-decision statistics.
    Column("bound", "float"),
    Column("violations", "int"),
    Column("pass_rate", "float"),
    # Battery-wide worst outcome, comparable across kinds: the worst
    # surviving diameter observed, ``inf`` when any fault set disconnected
    # the surviving graph (exact) or violated the bound (decision).
    Column("worst_diam", "float"),
    # Evaluation metadata.
    Column("bfs", "str"),         # BFS strategy of the evaluating index
    # Adversary/evaluation tunables: the resolved eval backend ("bitset" /
    # "numpy") the campaign ran on, and the greedy adversary's candidate
    # budget when an adversarial probe was part of the battery.
    Column("backend", "str"),
    Column("candidate_limit", "int"),
    # Witness fault set (worst set / first violation), encoded with
    # :func:`repro.serialization.encode_node` per node.
    Column("worst_faults", "json"),
    # Traffic rows (kind="traffic"): one workload run over the event-driven
    # simulator.  ``workload`` is the canonical workload string;
    # ``duration`` the observed makespan in engine ticks; latencies are in
    # simulated time units and ``throughput`` delivered messages per unit.
    Column("workload", "str"),
    Column("duration", "int"),
    Column("injected", "int"),
    Column("delivered", "int"),
    Column("dropped", "int"),
    Column("throughput", "float"),
    Column("mean_latency", "float"),
    Column("p99_latency", "float"),
    Column("drop_rate", "float"),
    Column("max_queue_depth", "int"),
)


def result_frame(records: Iterable[Mapping[str, object]] = ()) -> ResultFrame:
    """Return a new :class:`ResultFrame` over the unified schema."""
    return ResultFrame.from_records(RESULT_COLUMNS, records)


def scenario_family(scenario: str) -> Optional[str]:
    """Extract the graph family name from a canonical scenario string."""
    if not scenario:
        return None
    graph_spec = scenario.split("/", 1)[0]
    return graph_spec.partition(":")[0] or None


def scenario_strategy(scenario: str) -> Optional[str]:
    """Extract the strategy segment from a canonical scenario string.

    Canonical strings always carry the strategy as their second segment
    (``family:args/strategy/...``); returns ``None`` for non-scenario
    strings that lack one.
    """
    if not scenario:
        return None
    segments = scenario.split("/")
    if len(segments) < 2:
        return None
    strategy = segments[1]
    if not strategy or "=" in strategy or ":" in strategy:
        return None
    return strategy


def effective_strategy(record: Mapping[str, object]) -> Optional[str]:
    """Return the strategy a record's row should be *compared* under.

    The ``strategy`` column keeps the requested segment (``auto``
    included) for provenance; comparison tables and the store's
    ``(family, n, strategy)`` index want the construction that actually
    ran, so ``auto`` — and records from stores predating the column —
    fall back to the built ``scheme``.
    """
    strategy = record.get("strategy")
    if strategy is None or strategy == "auto":
        scheme = record.get("scheme")
        return scheme if scheme is not None else strategy
    return strategy


def encode_fault_set(fault_set) -> Optional[list]:
    """Encode a fault set's nodes as a sorted JSON-compatible list."""
    if fault_set is None:
        return None
    from repro.serialization import encode_node

    return [encode_node(node) for node in sorted(fault_set, key=repr)]


def decode_fault_set(encoded, description: str = "restored from store"):
    """Rebuild a :class:`~repro.faults.models.FaultSet` from encoded nodes."""
    if encoded is None:
        return None
    from repro.faults.models import FaultSet
    from repro.serialization import decode_node

    return FaultSet((decode_node(item) for item in encoded), description=description)


def view_from_record(record: Mapping[str, object]):
    """Reconstruct the typed campaign view a record was emitted from.

    ``kind`` selects between :class:`~repro.faults.simulation.CampaignResult`
    (``"exact"``), :class:`~repro.faults.simulation.DecisionCampaignResult`
    (``"decision"``), :class:`~repro.faults.simulation.CampaignStatus`
    (``"status"`` — a campaign with no aggregate; see ``disposition``) and
    :class:`~repro.network.traffic.TrafficResult` (``"traffic"``).
    """
    from repro.faults.simulation import (
        CampaignResult,
        CampaignStatus,
        DecisionCampaignResult,
    )

    kind = record.get("kind")
    if kind == "traffic":
        from repro.network.traffic import TrafficResult

        return TrafficResult.from_record(record)
    if kind == "exact":
        return CampaignResult.from_record(record)
    if kind == "decision":
        return DecisionCampaignResult.from_record(record)
    if kind == "status":
        return CampaignStatus.from_record(record)
    raise ValueError(f"record kind {kind!r} is not one of {RECORD_KINDS}")

"""Unified columnar result store for every experiment layer.

* :class:`~repro.results.frame.ResultFrame` — typed columns, append-only
  rows, group-by / aggregate / pivot helpers;
* :data:`~repro.results.records.RESULT_COLUMNS` — the shared experiment
  record schema that engine campaigns, scenario suites and experiment
  runners all emit into (the legacy result dataclasses are thin views
  reconstructed from these records);
* :class:`~repro.results.store.ResultStore` — JSONL persistence with a run
  manifest and truncated-write tolerance, the substrate of resumable grid
  campaigns (``repro grid --resume``) and stored reporting
  (``repro report``).
"""

from repro.results.frame import AGGREGATIONS, COLUMN_KINDS, Column, ResultFrame
from repro.results.records import (
    RECORD_KINDS,
    RESULT_COLUMNS,
    STATUS_DISPOSITIONS,
    decode_fault_set,
    effective_strategy,
    encode_fault_set,
    result_frame,
    scenario_family,
    scenario_strategy,
    view_from_record,
)
from repro.results.store import (
    FSYNC_ENV,
    FSYNC_POLICIES,
    STORE_FORMAT_VERSION,
    ResultStore,
    ResultStoreError,
    merge_result_stores,
)

__all__ = [
    "AGGREGATIONS",
    "COLUMN_KINDS",
    "Column",
    "FSYNC_ENV",
    "FSYNC_POLICIES",
    "RECORD_KINDS",
    "RESULT_COLUMNS",
    "STATUS_DISPOSITIONS",
    "ResultFrame",
    "ResultStore",
    "ResultStoreError",
    "STORE_FORMAT_VERSION",
    "decode_fault_set",
    "effective_strategy",
    "encode_fault_set",
    "merge_result_stores",
    "result_frame",
    "scenario_family",
    "scenario_strategy",
    "view_from_record",
]

"""Supervised task dispatch over :mod:`multiprocessing` pools.

The campaign engine and the scenario-suite runner both reduce to the same
shape: a deterministic list of pure tasks drained through a process pool,
results folded in task order.  Before this module a single worker segfault,
OOM-kill or wedged scenario aborted (or hung) the entire sweep.
:class:`Supervisor` wraps the dispatch with the crash/recovery discipline
the distributed-systems literature catalogues for crash-stop executions —
timeouts as failure detectors, bounded idempotent retry, quarantine for
poisoned work:

* **per-task wall-clock timeouts** — a task that exceeds
  :attr:`SupervisorPolicy.task_timeout` is declared lost, the pool (whose
  worker is wedged on it) is rebuilt, and the task is retried;
* **bounded retry with exponential backoff** — a task that raises is
  retried up to :attr:`SupervisorPolicy.max_retries` times.  Tasks are pure
  functions of their descriptors (seeds travel *inside* the task), so a
  retry recomputes byte-identical results — recovery never changes rows;
* **dead-worker detection** — the supervisor snapshots the pool's worker
  pids and, while waiting, notices vanished workers (``SIGKILL``, OOM,
  segfault).  :class:`multiprocessing.pool.Pool` respawns the process but
  silently loses whatever it was executing, so every non-finished in-flight
  task is re-dispatched (duplicated execution is harmless: tasks are pure
  and results are read from the newest submission only);
* **poisoned-task quarantine** — a task that fails ``max_retries + 1``
  times is yielded as a :class:`FailedTask` instead of killing the sweep;
  with :attr:`SupervisorPolicy.strict` the original fail-fast behaviour is
  restored (:class:`TaskFailedError`);
* **graceful degradation** — when the pool breaks and cannot be rebuilt
  (:attr:`SupervisorPolicy.max_pool_rebuilds` exceeded, or rebuilding
  itself fails), the remaining tasks run sequentially in-process.

Results are yielded strictly in task-submission order through a sliding
window of ``workers * window_per_worker`` in-flight tasks — exactly the
order ``pool.imap`` would produce — so supervised and unsupervised runs are
byte-identical on the clean path.

The supervisor does **not** own pool construction: callers hand it
``ensure_pool`` / ``rebuild_pool`` callbacks so engines keep their existing
pool lifecycle (broadcast initializers, slim-index payloads, finalizers).

:func:`shutdown_pool` is the shared hardened teardown: ``terminate()``,
then ``join()`` every worker with a deadline, escalating to ``kill()`` for
processes that ignore ``SIGTERM`` — interrupted runs never leave zombie
workers behind.
"""

from __future__ import annotations

import collections
import dataclasses
import time
from typing import Callable, Deque, Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.exceptions import ReproError

__all__ = [
    "FailedTask",
    "Supervisor",
    "SupervisorPolicy",
    "TaskFailedError",
    "shutdown_pool",
]


class TaskFailedError(ReproError):
    """A supervised task exhausted its retry budget under ``strict``."""


#: Exceptions that indicate the *pool machinery* (queues, result handler)
#: broke, as opposed to the task itself raising.
_POOL_ERRORS = (OSError, EOFError, BrokenPipeError)

_SENTINEL = object()


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """Tunables of one supervised run (immutable, safe to share).

    ``task_timeout`` is a wall-clock failure detector: ``None`` disables it
    (the historical behaviour — a wedged worker hangs the sweep).  A timed
    out or crashed task costs one attempt; after ``max_retries + 1``
    attempts it is quarantined (``strict=False``) or raised
    (``strict=True``).  ``max_pool_rebuilds`` bounds how often a broken
    pool is rebuilt before degrading to in-process execution
    (``fallback_inprocess``); with the fallback disabled an unrebuildable
    pool raises instead.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    strict: bool = False
    max_pool_rebuilds: int = 3
    fallback_inprocess: bool = True
    poll_interval: float = 0.05
    window_per_worker: int = 4
    shutdown_grace: float = 5.0

    def backoff(self, attempts: int) -> float:
        """Return the sleep before retry number ``attempts`` (bounded)."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempts - 1),
        )


@dataclasses.dataclass
class FailedTask:
    """A quarantined task: it failed every attempt and was given up on.

    Yielded in the task's submission-order slot so consumers can record a
    structured ``failed`` row (the suite's disposition machinery) instead
    of aborting the sweep.
    """

    task: object
    attempts: int
    reason: str


class _Entry:
    """One in-flight task: descriptor, newest submission, failure state."""

    __slots__ = ("task", "result", "attempts", "deadline", "failed")

    def __init__(self, task: object) -> None:
        self.task = task
        self.result = None
        self.attempts = 0
        self.deadline: Optional[float] = None
        self.failed: Optional[FailedTask] = None


def shutdown_pool(pool, grace: float = 5.0) -> None:
    """Terminate ``pool`` and guarantee its workers are gone.

    ``Pool.terminate()`` sends ``SIGTERM`` and then **joins every worker
    without a timeout** — a worker stuck in uninterruptible I/O or ignoring
    the signal wedges ``terminate()`` itself forever (and the CLI leaks
    zombie workers on Ctrl-C).  The call therefore runs on a watchdog
    thread: workers still alive after ``grace`` seconds are escalated to
    ``kill()`` (``SIGKILL``), which unblocks the join inside
    ``terminate()``.  Safe on ``None`` and on already-closed pools.
    """
    if pool is None:
        return
    import threading

    workers = list(getattr(pool, "_pool", None) or ())
    done = threading.Event()

    def _terminate() -> None:
        try:
            pool.terminate()
        except Exception:
            pass
        finally:
            done.set()

    thread = threading.Thread(
        target=_terminate, name="repro-pool-terminate", daemon=True
    )
    thread.start()
    done.wait(grace)
    if not done.is_set() or any(process.is_alive() for process in workers):
        for process in workers:
            try:
                if process.is_alive():
                    process.kill()
            except Exception:
                pass
        done.wait(grace)
    deadline = time.monotonic() + grace
    for process in workers:
        try:
            process.join(max(0.0, deadline - time.monotonic()))
        except Exception:
            pass
    if done.is_set():
        # Only join the pool's bookkeeping threads once terminate() has
        # returned — joining a pool wedged mid-terminate would hang.
        try:
            pool.join()
        except Exception:
            pass


class Supervisor:
    """Drain pure tasks through a pool with timeouts, retries and rebuilds.

    Parameters
    ----------
    worker_fn:
        Module-level function executed in the workers (must be picklable).
    ensure_pool:
        Callback returning the (lazily created) pool.  ``None`` — or
        ``workers <= 1`` — selects the in-process path, which still applies
        retry and quarantine (but no timeouts: a synchronous call cannot be
        abandoned).
    rebuild_pool:
        Callback tearing the current pool down and returning a fresh one;
        used after timeouts and pool-machinery failures.
    local_fn:
        In-process equivalent of ``worker_fn`` for sequential execution and
        degraded mode (defaults to ``worker_fn`` itself).
    policy:
        The :class:`SupervisorPolicy`; defaults to quarantine semantics.
    workers:
        Worker count of the pool (sizes the sliding window).

    :meth:`run` yields ``(task, result)`` pairs in task order, where
    ``result`` is the worker's return value or a :class:`FailedTask`.
    ``stats`` counts retries, timeouts, worker deaths, rebuilds,
    quarantines and degradation for callers that surface them.
    """

    def __init__(
        self,
        worker_fn: Callable,
        ensure_pool: Optional[Callable[[], object]] = None,
        rebuild_pool: Optional[Callable[[], object]] = None,
        local_fn: Optional[Callable] = None,
        policy: Optional[SupervisorPolicy] = None,
        workers: int = 1,
    ) -> None:
        self.worker_fn = worker_fn
        self.ensure_pool = ensure_pool
        self.rebuild_pool = rebuild_pool
        self.local_fn = local_fn if local_fn is not None else worker_fn
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.workers = workers
        self.stats: Dict[str, int] = {
            "tasks": 0,
            "retries": 0,
            "timeouts": 0,
            "worker_deaths": 0,
            "rebuilds": 0,
            "quarantined": 0,
            "degraded": 0,
        }

    # ------------------------------------------------------------------
    # Shared failure plumbing
    # ------------------------------------------------------------------
    def _quarantine(
        self,
        task: object,
        attempts: int,
        reason: str,
        cause: Optional[BaseException] = None,
    ) -> FailedTask:
        self.stats["quarantined"] += 1
        if self.policy.strict:
            raise TaskFailedError(
                f"task {task!r} failed {attempts} attempt(s): {reason}"
            ) from cause
        return FailedTask(task=task, attempts=attempts, reason=reason)

    def _run_local(self, task: object, attempts: int = 0):
        """Run one task in-process with the retry/quarantine discipline."""
        while True:
            try:
                return self.local_fn(task)
            except Exception as exc:  # noqa: BLE001 - retry boundary
                attempts += 1
                if attempts > self.policy.max_retries:
                    return self._quarantine(
                        task, attempts, f"{type(exc).__name__}: {exc}", exc
                    )
                self.stats["retries"] += 1
                time.sleep(self.policy.backoff(attempts))

    def _drain_local(self, iterator: Iterator, pending: Iterable[_Entry]):
        """Degraded mode: finish every remaining task in-process."""
        if not self.policy.fallback_inprocess:
            raise TaskFailedError(
                "worker pool could not be rebuilt and in-process fallback "
                "is disabled"
            )
        self.stats["degraded"] = 1
        for entry in pending:
            if entry.failed is not None:
                yield entry.task, entry.failed
            else:
                yield entry.task, self._run_local(entry.task, entry.attempts)
        for task in iterator:
            self.stats["tasks"] += 1
            yield task, self._run_local(task)

    # ------------------------------------------------------------------
    # The supervised run
    # ------------------------------------------------------------------
    @staticmethod
    def _worker_pids(pool) -> Set[int]:
        return {
            process.pid for process in getattr(pool, "_pool", None) or ()
        }

    def run(self, tasks: Iterable) -> Iterator[Tuple[object, object]]:
        """Yield ``(task, result_or_FailedTask)`` in task-submission order."""
        if self.workers <= 1 or self.ensure_pool is None:
            for task in tasks:
                self.stats["tasks"] += 1
                yield task, self._run_local(task)
            return
        yield from self._run_pooled(iter(tasks))

    def _run_pooled(self, iterator: Iterator) -> Iterator[Tuple[object, object]]:
        import multiprocessing

        policy = self.policy
        try:
            pool = self.ensure_pool()
        except Exception:
            pool = None
        if pool is None:
            yield from self._drain_local(iterator, ())
            return

        window = max(1, self.workers * policy.window_per_worker)
        pending: Deque[_Entry] = collections.deque()
        pids = self._worker_pids(pool)

        def submit(entry: _Entry) -> None:
            entry.result = pool.apply_async(self.worker_fn, (entry.task,))
            entry.deadline = (
                None
                if policy.task_timeout is None
                else time.monotonic() + policy.task_timeout
            )

        def refill() -> None:
            # The entry joins ``pending`` *before* its first submission so a
            # submit-time pool failure can never lose a task already taken
            # from the iterator — rebuild/degrade will re-dispatch it.
            while len(pending) < window:
                task = next(iterator, _SENTINEL)
                if task is _SENTINEL:
                    return
                self.stats["tasks"] += 1
                entry = _Entry(task)
                pending.append(entry)
                submit(entry)

        def resubmit_in_flight() -> None:
            """Re-dispatch every pending task without a finished result."""
            for entry in pending:
                if entry.failed is None and (
                    entry.result is None or not entry.result.ready()
                ):
                    submit(entry)

        def rebuild() -> bool:
            """Tear down and rebuild the pool; False means degrade."""
            nonlocal pool, pids
            self.stats["rebuilds"] += 1
            if (
                self.rebuild_pool is None
                or self.stats["rebuilds"] > policy.max_pool_rebuilds
            ):
                pool = None
                return False
            try:
                pool = self.rebuild_pool()
                pids = self._worker_pids(pool)
                # The old pool lost both its executing tasks and the queued
                # backlog: everything unfinished goes back out.
                resubmit_in_flight()
            except Exception:
                pool = None
                return False
            return True

        try:
            refill()
        except (ValueError,) + _POOL_ERRORS:
            if not rebuild():
                yield from self._drain_local(iterator, pending)
                return
        while pending:
            head = pending[0]
            if head.failed is not None:
                pending.popleft()
                yield head.task, head.failed
                try:
                    refill()
                except (ValueError,) + _POOL_ERRORS:
                    if not rebuild():
                        yield from self._drain_local(iterator, pending)
                        return
                continue
            try:
                value = head.result.get(policy.poll_interval)
            except multiprocessing.TimeoutError:
                if (
                    head.deadline is not None
                    and time.monotonic() > head.deadline
                ):
                    # Failure detector fired: the worker holding this task
                    # is considered wedged.  The pool is rebuilt (the only
                    # way to reclaim the worker) and the task re-tried.
                    self.stats["timeouts"] += 1
                    head.attempts += 1
                    if head.attempts > policy.max_retries:
                        head.failed = self._quarantine(
                            head.task,
                            head.attempts,
                            f"timed out after {policy.task_timeout:g}s "
                            f"per attempt",
                        )
                    else:
                        self.stats["retries"] += 1
                    if not rebuild():
                        yield from self._drain_local(iterator, pending)
                        return
                    continue
                current = self._worker_pids(pool)
                dead = pids - current
                if dead:
                    # A worker vanished (SIGKILL / OOM / segfault).  The
                    # pool respawns the process but its in-flight task is
                    # silently lost.  We cannot know *which* pending task
                    # died with it, so the oldest unfinished entries — the
                    # ones most likely executing — are charged an attempt,
                    # and every unfinished task is re-dispatched.
                    self.stats["worker_deaths"] += len(dead)
                    pids = current
                    charged = 0
                    for entry in pending:
                        if charged >= len(dead):
                            break
                        if entry.failed is None and not entry.result.ready():
                            entry.attempts += 1
                            if entry.attempts > policy.max_retries:
                                entry.failed = self._quarantine(
                                    entry.task,
                                    entry.attempts,
                                    "worker process died while executing "
                                    "this task",
                                )
                            charged += 1
                    try:
                        resubmit_in_flight()
                    except (ValueError,) + _POOL_ERRORS:
                        if not rebuild():
                            yield from self._drain_local(iterator, pending)
                            return
                continue
            except _POOL_ERRORS:
                # The pool machinery itself broke (result handler died,
                # queue torn): rebuild or degrade.
                if not rebuild():
                    yield from self._drain_local(iterator, pending)
                    return
                continue
            except Exception as exc:  # noqa: BLE001 - the task raised
                head.attempts += 1
                if head.attempts > policy.max_retries:
                    head.failed = self._quarantine(
                        head.task,
                        head.attempts,
                        f"{type(exc).__name__}: {exc}",
                        exc,
                    )
                    continue
                self.stats["retries"] += 1
                time.sleep(policy.backoff(head.attempts))
                try:
                    submit(head)
                except (ValueError,) + _POOL_ERRORS:
                    if not rebuild():
                        yield from self._drain_local(iterator, pending)
                        return
                continue
            else:
                pending.popleft()
                yield head.task, value
                try:
                    refill()
                except (ValueError,) + _POOL_ERRORS:
                    if not rebuild():
                        yield from self._drain_local(iterator, pending)
                        return

"""Runtime substrate: supervised pool execution and chaos injection.

``repro.runtime`` is the layer *underneath* the experiment pipeline — it
knows nothing about graphs, routings or result schemas.  It provides the
crash/recovery discipline both sweep drivers share:

* :class:`Supervisor` / :class:`SupervisorPolicy` — task timeouts, bounded
  retry with backoff, dead-worker detection with pool rebuild, poisoned
  task quarantine, and in-process degradation;
* :func:`shutdown_pool` — hardened pool teardown (terminate, join with a
  deadline, escalate to kill) shared by the engine and the suite runner;
* :func:`chaos_point` — environment-triggered fault injection used by the
  chaos test-suite and CI to prove the recovery paths work.
"""

from repro.runtime.chaos import (
    CHAOS_ACTIONS,
    CHAOS_ENV,
    CHAOS_SITES,
    ChaosError,
    LEDGER_ENV,
    chaos_point,
)
from repro.runtime.supervisor import (
    FailedTask,
    Supervisor,
    SupervisorPolicy,
    TaskFailedError,
    shutdown_pool,
)

__all__ = [
    "CHAOS_ACTIONS",
    "CHAOS_ENV",
    "CHAOS_SITES",
    "ChaosError",
    "FailedTask",
    "LEDGER_ENV",
    "Supervisor",
    "SupervisorPolicy",
    "TaskFailedError",
    "chaos_point",
    "shutdown_pool",
]

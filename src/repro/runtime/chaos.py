"""Environment-triggered fault injection: the chaos harness's trigger points.

The supervision layer (:mod:`repro.runtime.supervisor`) claims to survive
worker crashes, hangs, poisoned tasks and torn store writes.  This module is
how the test suite and CI *prove* it: hot paths call :func:`chaos_point` at
well-known sites, and the environment decides whether anything happens
there.  With ``REPRO_CHAOS`` unset the call is a dictionary lookup and a
return — no measurable cost on the clean path.

``REPRO_CHAOS`` holds one or more comma-separated injection specs::

    REPRO_CHAOS="<site>:<action>[:<match>]"

* ``site`` — where to fire.  ``task`` fires inside worker task evaluation
  (engine shards and suite tasks); ``append`` fires inside
  :meth:`repro.results.store.ResultStore.append`.
* ``action`` — what to do:

  - ``fail``  raise :class:`ChaosError` (a poisoned task);
  - ``kill``  ``SIGKILL`` the current process (a crashed worker);
  - ``exit``  ``os._exit(17)`` (a process that dies without cleanup);
  - ``hang``  sleep for an hour (a wedged worker, caught by task timeouts);
  - ``torn``  returned to the *caller* to implement — the store writes half
    a line and exits, simulating a writer killed mid-``write``.

* ``match`` — optional substring filter on the site label (a scenario spec,
  shard tag or store key), so one task of a sweep can be poisoned while the
  rest run clean.

**Once-only firing.**  Pointing ``REPRO_CHAOS_LEDGER`` at a directory makes
every spec fire at most once *across all processes*: before acting, the
process claims the spec by creating a ledger file with
``O_CREAT | O_EXCL`` (atomic on every platform we run on), and an already
claimed spec is skipped.  This is what makes "kill one worker, then let the
retry succeed" expressible — without a ledger the respawned worker would be
killed again forever.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from typing import Optional

from repro.exceptions import ReproError

#: Environment variable holding the comma-separated injection specs.
CHAOS_ENV = "REPRO_CHAOS"
#: Environment variable naming the once-only claim directory.
LEDGER_ENV = "REPRO_CHAOS_LEDGER"

CHAOS_SITES = ("task", "append")
CHAOS_ACTIONS = ("fail", "kill", "exit", "hang", "torn")


class ChaosError(ReproError):
    """Raised by a ``fail`` injection: a deterministic, poisoned task."""


def _claim(spec: str) -> bool:
    """Atomically claim ``spec`` in the ledger; True when this call may fire.

    With no ledger configured every matching call fires.  The claim is
    written *before* the action runs, so ``kill``/``exit`` injections are
    recorded even though the process never returns.
    """
    ledger = os.environ.get(LEDGER_ENV)
    if not ledger:
        return True
    name = hashlib.sha256(spec.encode("utf-8")).hexdigest()[:32]
    try:
        fd = os.open(
            os.path.join(ledger, name), os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return False
    os.close(fd)
    return True


def chaos_point(site: str, label: str = "") -> Optional[str]:
    """Fire any configured injection for ``site``; no-op when none matches.

    Self-contained actions (``fail`` / ``kill`` / ``exit`` / ``hang``) are
    performed here.  Actions the caller must cooperate with (``torn``) are
    returned as a string; every other path returns ``None``.
    """
    configured = os.environ.get(CHAOS_ENV)
    if not configured:
        return None
    for spec in configured.split(","):
        spec = spec.strip()
        if not spec:
            continue
        parts = spec.split(":", 2)
        if len(parts) < 2:
            raise ChaosError(
                f"malformed {CHAOS_ENV} entry {spec!r}; expected "
                "site:action[:match]"
            )
        target, action = parts[0], parts[1]
        match = parts[2] if len(parts) > 2 else ""
        if target not in CHAOS_SITES:
            raise ChaosError(
                f"unknown chaos site {target!r}; sites: {CHAOS_SITES}"
            )
        if action not in CHAOS_ACTIONS:
            raise ChaosError(
                f"unknown chaos action {action!r}; actions: {CHAOS_ACTIONS}"
            )
        if target != site or (match and match not in label):
            continue
        if not _claim(spec):
            continue
        if action == "fail":
            raise ChaosError(f"injected failure at {site}:{label}")
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if action == "exit":
            os._exit(17)
        if action == "hang":
            time.sleep(3600.0)
            continue
        return action  # "torn": implemented by the calling site
    return None

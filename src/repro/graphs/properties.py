"""Structural graph properties used by the routing constructions.

The circular and tri-circular constructions need *neighbourhood sets*
(independent nodes with pairwise disjoint neighbourhoods); the bipolar
construction needs the *two-trees property* (two roots far apart and locally
tree-like).  The predicates in this module express those requirements, plus
girth / short-cycle detection and simple degree statistics used by the
degree-threshold experiments (Lemma 15, Theorem 16, Corollary 17).
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Node = Hashable


# ----------------------------------------------------------------------
# Independence and neighbourhood disjointness
# ----------------------------------------------------------------------
def is_independent_set(graph: Graph, nodes: Iterable[Node]) -> bool:
    """Return ``True`` if no two nodes of ``nodes`` are adjacent."""
    node_list = list(nodes)
    for node in node_list:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
    node_set = set(node_list)
    return all(not (graph.neighbors(node) & node_set) for node in node_set)


def have_disjoint_neighborhoods(graph: Graph, nodes: Iterable[Node]) -> bool:
    """Return ``True`` if the neighbour sets of ``nodes`` are pairwise disjoint."""
    seen: Set[Node] = set()
    for node in nodes:
        neighborhood = graph.neighbors(node)
        if neighborhood & seen:
            return False
        seen |= neighborhood
    return True


def is_neighborhood_set(graph: Graph, nodes: Iterable[Node]) -> bool:
    """Return ``True`` if ``nodes`` is a *neighbourhood set* in the paper's sense.

    A neighbourhood set is a set of independent nodes whose neighbour sets are
    pairwise disjoint.  Equivalently, all selected nodes are at pairwise
    distance at least 3.
    """
    node_list = list(nodes)
    return is_independent_set(graph, node_list) and have_disjoint_neighborhoods(
        graph, node_list
    )


def pairwise_distance_at_least(graph: Graph, nodes: Sequence[Node], minimum: int) -> bool:
    """Return ``True`` if every pair of ``nodes`` is at distance >= ``minimum``."""
    node_list = list(nodes)
    node_set = set(node_list)
    for node in node_list:
        distances = bfs_distances(graph, node)
        for other in node_set:
            if other == node:
                continue
            if distances.get(other, float("inf")) < minimum:
                return False
    return True


# ----------------------------------------------------------------------
# Short cycles and girth
# ----------------------------------------------------------------------
def lies_on_short_cycle(graph: Graph, node: Node, max_length: int = 4) -> bool:
    """Return ``True`` if ``node`` lies on a cycle of length <= ``max_length``.

    Only lengths 3 and 4 are relevant to the two-trees property (the paper's
    "bad" events are a root lying on a cycle of length < 5), so the check is
    specialised and exact for ``max_length`` in {3, 4}; larger values fall
    back to a local BFS argument.
    """
    if not graph.has_node(node):
        raise NodeNotFoundError(node)
    if max_length < 3:
        return False
    neighbors = sorted(graph.neighbors(node), key=repr)
    # Triangle: two neighbours adjacent to each other.
    for u, v in itertools.combinations(neighbors, 2):
        if graph.has_edge(u, v):
            return True
    if max_length == 3:
        return False
    # 4-cycle through `node`: two neighbours with a common neighbour != node.
    for u, v in itertools.combinations(neighbors, 2):
        common = (graph.neighbors(u) & graph.neighbors(v)) - {node}
        if common:
            return True
    if max_length == 4:
        return False
    # Generic (rarely used): look for any cycle through `node` of bounded
    # length by doing BFS from each neighbour in the graph without `node`.
    reduced = graph.without_nodes([node])
    for u, v in itertools.combinations(neighbors, 2):
        distances = bfs_distances(reduced, u)
        if distances.get(v, float("inf")) + 2 <= max_length:
            return True
    return False


def girth(graph: Graph) -> float:
    """Return the length of a shortest cycle; ``inf`` for forests.

    Uses BFS from every node; when a visited node is re-encountered the cycle
    length through the BFS tree gives an upper bound which is tight when
    minimised over all roots.
    """
    best = float("inf")
    for root in graph.nodes():
        distances: Dict[Node, int] = {root: 0}
        parents: Dict[Node, Optional[Node]] = {root: None}
        queue: List[Node] = [root]
        head = 0
        while head < len(queue):
            current = queue[head]
            head += 1
            for neighbor in graph.neighbors(current):
                if neighbor not in distances:
                    distances[neighbor] = distances[current] + 1
                    parents[neighbor] = current
                    queue.append(neighbor)
                elif parents[current] != neighbor:
                    cycle_length = distances[current] + distances[neighbor] + 1
                    best = min(best, cycle_length)
        if best == 3:
            return 3
    return best


# ----------------------------------------------------------------------
# Two-trees property (Section 5)
# ----------------------------------------------------------------------
def satisfies_two_trees_property(graph: Graph, root1: Node, root2: Node) -> bool:
    """Check whether ``root1`` and ``root2`` witness the two-trees property.

    Following the paper (Section 5), the two roots must be such that the sets

    * ``M1 = Gamma(root1)``, ``M2 = Gamma(root2)``,
    * ``Gamma(x) - {root1}`` for every ``x`` in ``M1``, and
    * ``Gamma(x) - {root2}`` for every ``x`` in ``M2``

    are **all pairwise disjoint** (and disjoint from ``{root1, root2}``), i.e.
    the depth-2 neighbourhoods of the two roots form two disjoint trees.  An
    equivalent characterisation used in Lemma 24 is: neither root lies on a
    cycle of length 3 or 4, and the two roots are at distance at least 4 (the
    paper requires distance greater than 4 in the random-graph argument; the
    structural sets above are the authoritative definition and the one we
    implement).
    """
    if root1 == root2:
        return False
    if not graph.has_node(root1):
        raise NodeNotFoundError(root1)
    if not graph.has_node(root2):
        raise NodeNotFoundError(root2)

    m1 = graph.neighbors(root1)
    m2 = graph.neighbors(root2)
    groups: List[Set[Node]] = [m1, m2]
    for x in sorted(m1, key=repr):
        groups.append(graph.neighbors(x) - {root1})
    for x in sorted(m2, key=repr):
        groups.append(graph.neighbors(x) - {root2})

    roots = {root1, root2}
    seen: Set[Node] = set()
    for group in groups:
        if group & roots:
            return False
        if group & seen:
            return False
        seen |= group
    return True


def find_two_trees_roots(graph: Graph) -> Optional[Tuple[Node, Node]]:
    """Search for a pair of roots witnessing the two-trees property.

    The search first filters out nodes lying on a 3- or 4-cycle (they can
    never be roots because their depth-2 neighbourhood is not a tree), then
    tests candidate pairs at distance >= 4 ordered by increasing degree, so
    that sparse regions of the graph are explored first.

    Returns ``None`` when no pair exists.
    """
    candidates = [
        node for node in graph.nodes() if not lies_on_short_cycle(graph, node, 4)
    ]
    candidates.sort(key=lambda node: (graph.degree(node), repr(node)))
    for index, root1 in enumerate(candidates):
        distances = bfs_distances(graph, root1)
        for root2 in candidates[index + 1 :]:
            if distances.get(root2, float("inf")) < 4:
                continue
            if satisfies_two_trees_property(graph, root1, root2):
                return root1, root2
    return None


def has_two_trees_property(graph: Graph) -> bool:
    """Return ``True`` if some pair of nodes witnesses the two-trees property."""
    return find_two_trees_roots(graph) is not None


# ----------------------------------------------------------------------
# Degree statistics
# ----------------------------------------------------------------------
def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Return a mapping ``degree -> number of nodes with that degree``."""
    histogram: Dict[int, int] = {}
    for degree in graph.degrees().values():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def is_regular(graph: Graph) -> bool:
    """Return ``True`` if every node has the same degree (vacuously for empty)."""
    degrees = set(graph.degrees().values())
    return len(degrees) <= 1


def max_degree_threshold(n: int, constant: float) -> float:
    """Return the paper's degree threshold ``constant * n**(1/3)``.

    Corollary 17 uses ``constant = 0.79`` for the circular routing and
    ``constant = 0.46`` for the tri-circular routing.
    """
    if n < 0:
        raise ValueError("graph size must be non-negative")
    return constant * (n ** (1.0 / 3.0))


def satisfies_circular_degree_bound(graph: Graph, constant: float = 0.79) -> bool:
    """Return ``True`` if ``max degree < constant * n**(1/3)`` (Corollary 17)."""
    return graph.max_degree() < max_degree_threshold(graph.number_of_nodes(), constant)

"""Graph family generators.

The paper motivates its constructions on the interconnection networks used in
distributed systems: the hypercube, its bounded-degree realisations (the
cube-connected cycles and the butterfly / d-way shuffle), planar networks, and
sparse random graphs ``G(n, p)``.  This module generates all of those families
plus a collection of standard graphs used in tests (cycles, grids, tori,
circulants, complete and complete-bipartite graphs, the Petersen graph,
random regular graphs, wheels, barbells).

Every generator returns a :class:`repro.graphs.graph.Graph` and sets a
descriptive ``name`` so experiment reports stay readable.

Randomised generators accept either a seed or a ``random.Random`` instance so
experiments are reproducible.
"""

from __future__ import annotations

import itertools
import random as _random
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected

Node = Hashable
RandomLike = Union[int, _random.Random, None]


def _rng(seed: RandomLike) -> _random.Random:
    """Normalise a seed / Random instance / None into a ``random.Random``."""
    if isinstance(seed, _random.Random):
        return seed
    return _random.Random(seed)


# ----------------------------------------------------------------------
# Deterministic families
# ----------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """Return the path ``P_n`` on nodes ``0 .. n-1``."""
    if n < 1:
        raise ValueError("path graph needs at least one node")
    graph = Graph(nodes=range(n), name=f"path-{n}")
    graph.add_edges_from((i, i + 1) for i in range(n - 1))
    return graph


def cycle_graph(n: int) -> Graph:
    """Return the cycle ``C_n`` on nodes ``0 .. n-1`` (connectivity 2)."""
    if n < 3:
        raise ValueError("cycle graph needs at least three nodes")
    graph = Graph(nodes=range(n), name=f"cycle-{n}")
    graph.add_edges_from((i, (i + 1) % n) for i in range(n))
    return graph


def complete_graph(n: int) -> Graph:
    """Return the complete graph ``K_n`` (connectivity ``n - 1``)."""
    if n < 1:
        raise ValueError("complete graph needs at least one node")
    graph = Graph(nodes=range(n), name=f"complete-{n}")
    graph.add_edges_from(itertools.combinations(range(n), 2))
    return graph


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """Return ``K_{a,b}`` with parts ``('a', i)`` and ``('b', j)``."""
    if a < 1 or b < 1:
        raise ValueError("both parts must be non-empty")
    graph = Graph(name=f"complete-bipartite-{a}-{b}")
    left = [("a", i) for i in range(a)]
    right = [("b", j) for j in range(b)]
    graph.add_nodes_from(left)
    graph.add_nodes_from(right)
    graph.add_edges_from((u, v) for u in left for v in right)
    return graph


def star_graph(n: int) -> Graph:
    """Return the star with centre 0 and ``n`` leaves ``1 .. n``."""
    if n < 1:
        raise ValueError("star graph needs at least one leaf")
    graph = Graph(nodes=range(n + 1), name=f"star-{n}")
    graph.add_edges_from((0, i) for i in range(1, n + 1))
    return graph


def wheel_graph(n: int) -> Graph:
    """Return the wheel: a cycle on ``1 .. n`` plus a hub 0 joined to all."""
    if n < 3:
        raise ValueError("wheel graph needs a rim of at least three nodes")
    graph = cycle_graph(n)
    relabeled = Graph(name=f"wheel-{n}")
    for u, v in graph.edges():
        relabeled.add_edge(u + 1, v + 1)
    for i in range(1, n + 1):
        relabeled.add_edge(0, i)
    return relabeled


def grid_graph(rows: int, cols: int) -> Graph:
    """Return the ``rows x cols`` grid with nodes ``(r, c)`` (planar)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    graph = Graph(name=f"grid-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            graph.add_node((r, c))
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    return graph


def torus_graph(rows: int, cols: int) -> Graph:
    """Return the ``rows x cols`` torus (grid with wraparound, 4-regular)."""
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be at least 3 to stay simple")
    graph = Graph(name=f"torus-{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            graph.add_edge((r, c), ((r + 1) % rows, c))
            graph.add_edge((r, c), (r, (c + 1) % cols))
    return graph


def hypercube_graph(dimension: int) -> Graph:
    """Return the ``dimension``-dimensional hypercube ``Q_d``.

    Nodes are integers ``0 .. 2**d - 1``; two nodes are adjacent when their
    binary labels differ in exactly one bit.  ``Q_d`` is ``d``-regular and
    ``d``-connected — the family for which Dolev et al. obtained bound 3 / 2
    routings and which motivates the paper's general constructions.
    """
    if dimension < 1:
        raise ValueError("hypercube dimension must be positive")
    size = 1 << dimension
    graph = Graph(nodes=range(size), name=f"hypercube-{dimension}")
    for node in range(size):
        for bit in range(dimension):
            neighbor = node ^ (1 << bit)
            if neighbor > node:
                graph.add_edge(node, neighbor)
    return graph


def cube_connected_cycles_graph(dimension: int) -> Graph:
    """Return the cube-connected cycles network ``CCC_d``.

    Each hypercube node ``w`` is replaced by a cycle of ``d`` nodes
    ``(w, 0) .. (w, d-1)``; node ``(w, i)`` is joined to its cycle neighbours
    and across the cube dimension ``i`` to ``(w ^ 2**i, i)``.  ``CCC_d`` is
    3-regular (for ``d >= 3``) and 3-connected — one of the bounded-degree
    hypercube realisations the paper cites.
    """
    if dimension < 3:
        raise ValueError("cube-connected cycles need dimension at least 3")
    graph = Graph(name=f"ccc-{dimension}")
    size = 1 << dimension
    for w in range(size):
        for i in range(dimension):
            graph.add_edge((w, i), (w, (i + 1) % dimension))
            neighbor = w ^ (1 << i)
            if neighbor > w:
                graph.add_edge((w, i), (neighbor, i))
    return graph


def butterfly_graph(dimension: int, wrapped: bool = True) -> Graph:
    """Return the (wrapped) butterfly network of the given ``dimension``.

    Nodes are pairs ``(level, w)`` with ``level`` in ``0 .. d-1`` (wrapped) or
    ``0 .. d`` (unwrapped) and ``w`` an integer in ``0 .. 2**d - 1``.  Node
    ``(level, w)`` connects to ``(level+1, w)`` and ``(level+1, w ^ 2**level)``.
    The wrapped butterfly identifies level ``d`` with level 0 and is the
    paper's "d-way shuffle (or, extended butterfly)" bounded-degree network.
    """
    if dimension < 2:
        raise ValueError("butterfly dimension must be at least 2")
    size = 1 << dimension
    graph = Graph(name=f"butterfly-{dimension}{'-wrapped' if wrapped else ''}")
    levels = dimension if wrapped else dimension + 1
    for level in range(dimension if wrapped else dimension):
        next_level = (level + 1) % levels if wrapped else level + 1
        for w in range(size):
            graph.add_edge((level, w), (next_level, w))
            graph.add_edge((level, w), (next_level, w ^ (1 << level)))
    return graph


def de_bruijn_graph(base: int, dimension: int) -> Graph:
    """Return the undirected de Bruijn graph ``B(base, dimension)``.

    Nodes are the ``base**dimension`` strings of length ``dimension`` over a
    ``base``-letter alphabet (encoded as integers); node ``w`` is adjacent to
    every node obtained by shifting in one symbol on either side.  Self-loops
    and parallel edges of the directed de Bruijn graph are dropped, giving a
    simple graph of maximum degree ``2 * base`` — one of the classical
    bounded-degree interconnection networks alongside the CCC and butterfly.
    """
    if base < 2 or dimension < 1:
        raise ValueError("de Bruijn graphs need base >= 2 and dimension >= 1")
    size = base ** dimension
    graph = Graph(nodes=range(size), name=f"debruijn-{base}-{dimension}")
    for node in range(size):
        for symbol in range(base):
            successor = (node * base + symbol) % size
            if successor != node:
                graph.add_edge(node, successor)
    return graph


def shuffle_exchange_graph(dimension: int) -> Graph:
    """Return the shuffle-exchange network on ``2**dimension`` nodes.

    Node ``w`` is adjacent to ``w`` with its last bit flipped (exchange edge)
    and to the cyclic left/right shifts of its bit string (shuffle edges).
    Together with the CCC and the butterfly this is one of the bounded-degree
    "shuffle-like" realisations of the hypercube the paper alludes to.
    """
    if dimension < 2:
        raise ValueError("shuffle-exchange graphs need dimension >= 2")
    size = 1 << dimension
    mask = size - 1
    graph = Graph(nodes=range(size), name=f"shuffle-exchange-{dimension}")
    for node in range(size):
        exchange = node ^ 1
        if exchange != node:
            graph.add_edge(node, exchange)
        shuffle = ((node << 1) | (node >> (dimension - 1))) & mask
        if shuffle != node:
            graph.add_edge(node, shuffle)
    return graph


def circulant_graph(n: int, offsets: Sequence[int]) -> Graph:
    """Return the circulant graph ``C_n(offsets)``.

    Node ``i`` is adjacent to ``i +- o (mod n)`` for every offset ``o``.
    Circulants give an easy dial for connectivity: ``C_n(1..k)`` is
    ``2k``-connected (for ``n > 2k``), which is how the benchmarks sweep ``t``.
    """
    if n < 3:
        raise ValueError("circulant graphs need at least three nodes")
    cleaned = sorted({abs(int(o)) % n for o in offsets} - {0})
    if not cleaned:
        raise ValueError("at least one non-zero offset is required")
    graph = Graph(nodes=range(n), name=f"circulant-{n}-{cleaned}")
    for i in range(n):
        for offset in cleaned:
            graph.add_edge(i, (i + offset) % n)
    return graph


def harary_graph(k: int, n: int) -> Graph:
    """Return the Harary graph ``H_{k,n}``: a k-connected graph with few edges.

    For even ``k`` this is the circulant ``C_n(1..k/2)``.  For odd ``k`` the
    circulant ``C_n(1..(k-1)/2)`` is augmented with "diameter" edges joining
    ``i`` to ``i + n/2``; ``n`` must then be even.
    """
    if k < 2:
        raise ValueError("Harary graphs are defined for k >= 2")
    if n <= k:
        raise ValueError("Harary graphs require n > k")
    if k % 2 == 0:
        graph = circulant_graph(n, range(1, k // 2 + 1))
    else:
        if n % 2 != 0:
            raise ValueError("odd k requires even n for the Harary construction")
        graph = circulant_graph(n, range(1, (k - 1) // 2 + 1))
        for i in range(n // 2):
            graph.add_edge(i, i + n // 2)
    graph.name = f"harary-{k}-{n}"
    return graph


def petersen_graph() -> Graph:
    """Return the Petersen graph (3-regular, 3-connected, girth 5)."""
    graph = Graph(name="petersen")
    for i in range(5):
        graph.add_edge(("outer", i), ("outer", (i + 1) % 5))
        graph.add_edge(("inner", i), ("inner", (i + 2) % 5))
        graph.add_edge(("outer", i), ("inner", i))
    return graph


def barbell_graph(clique_size: int, path_length: int) -> Graph:
    """Return two ``K_{clique_size}`` cliques joined by a path of ``path_length`` nodes."""
    if clique_size < 3:
        raise ValueError("barbell cliques need at least three nodes")
    if path_length < 0:
        raise ValueError("path length must be non-negative")
    graph = Graph(name=f"barbell-{clique_size}-{path_length}")
    left = [("left", i) for i in range(clique_size)]
    right = [("right", i) for i in range(clique_size)]
    graph.add_edges_from(itertools.combinations(left, 2))
    graph.add_edges_from(itertools.combinations(right, 2))
    bridge = [("bridge", i) for i in range(path_length)]
    chain = [left[0]] + bridge + [right[0]]
    graph.add_edges_from(zip(chain, chain[1:]))
    return graph


def tree_graph(branching: int, depth: int) -> Graph:
    """Return the complete ``branching``-ary tree of the given ``depth``."""
    if branching < 1 or depth < 0:
        raise ValueError("branching must be >= 1 and depth >= 0")
    graph = Graph(name=f"tree-{branching}-{depth}")
    graph.add_node(0)
    frontier = [0]
    next_label = 1
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                graph.add_edge(parent, next_label)
                new_frontier.append(next_label)
                next_label += 1
        frontier = new_frontier
    return graph


# ----------------------------------------------------------------------
# Random families
# ----------------------------------------------------------------------
def gnp_random_graph(n: int, p: float, seed: RandomLike = None) -> Graph:
    """Return an Erdos-Renyi ``G(n, p)`` sample.

    Lemma 24 / Theorem 25 study ``G(n, p)`` with ``p < c * n**eps / n`` for
    ``eps < 1/4``; :mod:`repro.analysis.random_graphs` sweeps this generator.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = _rng(seed)
    graph = Graph(nodes=range(n), name=f"gnp-{n}-{p:g}")
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                graph.add_edge(u, v)
    return graph


def random_regular_graph(degree: int, n: int, seed: RandomLike = None, max_tries: int = 200) -> Graph:
    """Return a random ``degree``-regular simple graph on ``n`` nodes.

    Uses the configuration model with rejection of self-loops and multi-edges,
    retrying up to ``max_tries`` times.  ``degree * n`` must be even.
    """
    if degree < 0 or n < 0:
        raise ValueError("degree and n must be non-negative")
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    if (degree * n) % 2 != 0:
        raise ValueError("degree * n must be even")
    rng = _rng(seed)
    for _ in range(max_tries):
        stubs = [node for node in range(n) for _ in range(degree)]
        rng.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = stubs[i], stubs[i + 1]
            if u == v or (u, v) in edges or (v, u) in edges:
                ok = False
                break
            edges.add((u, v))
        if ok:
            graph = Graph(nodes=range(n), name=f"random-regular-{degree}-{n}")
            graph.add_edges_from(edges)
            return graph
    raise RuntimeError(
        f"failed to sample a simple {degree}-regular graph on {n} nodes "
        f"after {max_tries} attempts"
    )


def random_connected_graph(n: int, extra_edge_probability: float = 0.1, seed: RandomLike = None) -> Graph:
    """Return a connected random graph: a random spanning tree plus extra edges.

    Useful for tests that need arbitrary connected inputs without worrying
    about the connectivity of a raw ``G(n, p)`` sample.
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = _rng(seed)
    graph = Graph(nodes=range(n), name=f"random-connected-{n}")
    order = list(range(n))
    rng.shuffle(order)
    for index in range(1, n):
        parent = order[rng.randrange(index)]
        graph.add_edge(order[index], parent)
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.random() < extra_edge_probability:
                graph.add_edge(u, v)
    return graph


def random_k_connected_graph(
    n: int, k: int, extra_edge_probability: float = 0.05, seed: RandomLike = None, max_tries: int = 50
) -> Graph:
    """Return a random graph that is (verified) at least ``k``-connected.

    The sample starts from the Harary graph ``H_{k,n}`` (minimally
    ``k``-connected) with randomly relabelled nodes and adds random extra
    edges; the result is always at least ``k``-connected because adding edges
    never decreases connectivity.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if k % 2 == 1 and n % 2 == 1:
        n += 1  # Harary construction for odd k needs even n.
    rng = _rng(seed)
    base = harary_graph(k, n)
    labels = list(range(n))
    rng.shuffle(labels)
    mapping = dict(zip(range(n), labels))
    graph = Graph(nodes=range(n), name=f"random-{k}connected-{n}")
    for u, v in base.edges():
        graph.add_edge(mapping[u], mapping[v])
    for u in range(n):
        for v in range(u + 1, n):
            if not graph.has_edge(u, v) and rng.random() < extra_edge_probability:
                graph.add_edge(u, v)
    return graph


#: Registry of parameterless "named" small graphs used in tests and examples.
NAMED_SMALL_GRAPHS = {
    "petersen": petersen_graph,
    "q3": lambda: hypercube_graph(3),
    "q4": lambda: hypercube_graph(4),
    "ccc3": lambda: cube_connected_cycles_graph(3),
    "torus-4x4": lambda: torus_graph(4, 4),
    "grid-4x4": lambda: grid_graph(4, 4),
    "k5": lambda: complete_graph(5),
    "cycle-8": lambda: cycle_graph(8),
}


def by_name(name: str) -> Graph:
    """Return one of the :data:`NAMED_SMALL_GRAPHS` by name."""
    try:
        factory = NAMED_SMALL_GRAPHS[name]
    except KeyError:
        raise KeyError(
            f"unknown graph name {name!r}; available: {sorted(NAMED_SMALL_GRAPHS)}"
        ) from None
    return factory()

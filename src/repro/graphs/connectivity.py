"""Vertex and edge connectivity via Menger's theorem and max-flow.

The constructions in the paper are parameterised by the node-connectivity
``t + 1`` of the underlying graph, so an exact connectivity computation is a
prerequisite for everything else.  We use the classical reduction:

* **local vertex connectivity** ``kappa(u, v)`` for non-adjacent ``u, v`` is
  the max flow from ``u`` to ``v`` in the *node-split* digraph, where every
  node ``x`` becomes ``x_in -> x_out`` with capacity 1 and every undirected
  edge ``{x, y}`` becomes the two arcs ``x_out -> y_in`` and ``y_out -> x_in``
  with capacity 1 (capacity infinity works equally; 1 suffices because the
  flow is bounded by the node capacities);
* **global vertex connectivity** is the minimum of ``kappa(v, w)`` over a
  dominating choice of pairs (a fixed node against all non-neighbours, plus
  all pairs of its neighbours' non-adjacent pairs) — we use the simpler exact
  variant of Even's algorithm: minimise over one fixed node paired with every
  non-neighbour, and over all non-adjacent pairs among that node's neighbours.

Edge connectivity uses the same machinery without node splitting.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.flow import FlowNetwork
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_connected

Node = Hashable

#: Node-split suffixes.  Tuples are used so that arbitrary hashable node
#: labels never collide with split labels.
_IN = "in"
_OUT = "out"


def _split_network(graph: Graph, source: Node, target: Node) -> FlowNetwork:
    """Build the node-split unit-capacity flow network for ``kappa(source, target)``.

    Internal nodes have capacity 1 (their in->out arc); the source and target
    are given effectively infinite internal capacity so they never act as the
    cut.
    """
    network = FlowNetwork()
    large = graph.number_of_nodes() + 1
    for node in graph.nodes():
        capacity = large if node in (source, target) else 1
        network.add_arc((node, _IN), (node, _OUT), capacity)
    for u, v in graph.edges():
        network.add_arc((u, _OUT), (v, _IN), large)
        network.add_arc((v, _OUT), (u, _IN), large)
    return network


def local_node_connectivity(
    graph: Graph, source: Node, target: Node, cutoff: Optional[int] = None
) -> int:
    """Return ``kappa(source, target)``: max number of internally disjoint paths.

    For adjacent nodes the direct edge counts as one path; the remaining paths
    are computed on the graph with that edge removed, matching the standard
    definition (``kappa(u, v)`` is infinite only in complete graphs, which we
    avoid by returning ``n - 1`` as the natural ceiling).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        raise ValueError("local connectivity is undefined for identical endpoints")
    if graph.has_edge(source, target):
        reduced = graph.copy()
        reduced.remove_edge(source, target)
        inner_cutoff = None if cutoff is None else max(cutoff - 1, 0)
        return 1 + local_node_connectivity(reduced, source, target, cutoff=inner_cutoff)
    network = _split_network(graph, source, target)
    return network.max_flow((source, _OUT), (target, _IN), cutoff=cutoff)


def node_connectivity(graph: Graph, cutoff: Optional[int] = None) -> int:
    """Return the global vertex connectivity ``kappa(G)``.

    Conventions: the empty and single-node graphs have connectivity 0; a
    disconnected graph has connectivity 0; the complete graph ``K_n`` has
    connectivity ``n - 1``.

    Parameters
    ----------
    cutoff:
        Optional early-exit: if every examined pair has local connectivity at
        least ``cutoff``, the returned value may be capped at ``cutoff``.  Use
        this when only ``kappa(G) >= k`` matters.
    """
    n = graph.number_of_nodes()
    if n <= 1:
        return 0
    if not is_connected(graph):
        return 0
    if all(graph.degree(node) == n - 1 for node in graph.nodes()):
        return n - 1

    # Even's scheme: pick a minimum-degree node v; kappa(G) is the minimum of
    # kappa(v, w) over non-neighbours w of v and kappa(x, y) over non-adjacent
    # pairs x, y of neighbours of v.  We additionally never exceed min degree.
    best = graph.min_degree()
    if cutoff is not None:
        best = min(best, max(cutoff, 0) if cutoff > 0 else best)
    pivot = min(graph.nodes(), key=graph.degree)
    non_neighbors = [
        node
        for node in graph.nodes()
        if node != pivot and not graph.has_edge(pivot, node)
    ]
    for other in non_neighbors:
        best = min(best, local_node_connectivity(graph, pivot, other, cutoff=best))
        if best == 0:
            return 0
    neighbors = sorted(
        graph.neighbors(pivot), key=lambda node: (graph.degree(node), repr(node))
    )
    for x, y in itertools.combinations(neighbors, 2):
        if not graph.has_edge(x, y):
            best = min(best, local_node_connectivity(graph, x, y, cutoff=best))
            if best == 0:
                return 0
    return best


def is_k_connected(graph: Graph, k: int) -> bool:
    """Return ``True`` if ``kappa(G) >= k``.

    Slightly cheaper than computing the exact connectivity because local
    computations stop as soon as ``k`` disjoint paths are found.
    """
    if k <= 0:
        return True
    n = graph.number_of_nodes()
    if n <= k:
        # kappa(G) <= n - 1 always.
        return n >= 2 and node_connectivity(graph) >= k
    return node_connectivity(graph, cutoff=k) >= k


def local_edge_connectivity(
    graph: Graph, source: Node, target: Node, cutoff: Optional[int] = None
) -> int:
    """Return ``lambda(source, target)``: max number of edge-disjoint paths."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        raise ValueError("local edge connectivity is undefined for identical endpoints")
    network = FlowNetwork()
    for u, v in graph.edges():
        network.add_arc(u, v, 1)
        network.add_arc(v, u, 1)
    network.add_node(source)
    network.add_node(target)
    return network.max_flow(source, target, cutoff=cutoff)


def edge_connectivity(graph: Graph) -> int:
    """Return the global edge connectivity ``lambda(G)``.

    Uses the standard "fixed node against every other node" reduction, which is
    exact for edge connectivity.
    """
    n = graph.number_of_nodes()
    if n <= 1:
        return 0
    if not is_connected(graph):
        return 0
    nodes = graph.nodes()
    pivot = nodes[0]
    best = graph.min_degree()
    for other in nodes[1:]:
        best = min(best, local_edge_connectivity(graph, pivot, other, cutoff=best))
        if best == 0:
            return 0
    return best


def connectivity_parameter(graph: Graph) -> int:
    """Return the paper's fault-tolerance parameter ``t`` where ``kappa(G) = t + 1``.

    Raises
    ------
    ValueError
        If the graph is disconnected (connectivity 0), for which no fault
        tolerance guarantee is possible.
    """
    kappa = node_connectivity(graph)
    if kappa == 0:
        raise ValueError("graph is disconnected; the model requires connectivity >= 1")
    return kappa - 1

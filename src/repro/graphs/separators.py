"""Vertex separators (separating sets).

The kernel construction of Dolev et al. — the starting point of the paper —
routes every node to a minimal *separating set* ``M``: a set of ``t + 1`` or
more nodes whose removal disconnects the graph.  This module finds minimum
separators (globally and between specific pairs) and verifies candidate
separating sets.

Minimum separators come out of the same node-split max-flow computation used
for connectivity: after a max-flow run between a non-adjacent pair, the arcs
crossing the minimum cut that are node arcs (``x_in -> x_out``) identify the
separator nodes.
"""

from __future__ import annotations

import itertools
from typing import Hashable, List, Optional, Set

from repro.exceptions import NodeNotFoundError
from repro.graphs.flow import FlowNetwork
from repro.graphs.graph import Graph
from repro.graphs.traversal import connected_components, is_connected

Node = Hashable

_IN = "in"
_OUT = "out"


def is_separating_set(graph: Graph, candidate: Set[Node]) -> bool:
    """Return ``True`` if removing ``candidate`` disconnects ``graph``.

    Matching the paper's definition, the removal must leave **at least two
    non-empty** connected components; removing everything (or leaving a single
    component, possibly empty) does not count.
    """
    for node in candidate:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
    remaining = graph.without_nodes(candidate)
    if remaining.number_of_nodes() == 0:
        return False
    return len(connected_components(remaining)) >= 2


def separates(graph: Graph, candidate: Set[Node], x: Node, y: Node) -> bool:
    """Return ``True`` if ``candidate`` separates ``x`` from ``y``.

    ``x`` and ``y`` must not belong to the candidate set themselves.
    """
    if x in candidate or y in candidate:
        raise ValueError("endpoints may not belong to the separating set")
    remaining = graph.without_nodes(candidate)
    if not remaining.has_node(x) or not remaining.has_node(y):
        raise NodeNotFoundError(x if not remaining.has_node(x) else y)
    from repro.graphs.traversal import bfs_distances

    return y not in bfs_distances(remaining, x)


def minimum_pair_separator(graph: Graph, source: Node, target: Node) -> Set[Node]:
    """Return a minimum vertex set separating non-adjacent ``source`` and ``target``.

    Raises
    ------
    ValueError
        If the two nodes are adjacent (no vertex set can separate them).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        raise ValueError("source and target must be distinct")
    if graph.has_edge(source, target):
        raise ValueError("adjacent nodes cannot be separated by removing vertices")

    network = FlowNetwork()
    big = graph.number_of_nodes() + 1
    for node in graph.nodes():
        capacity = big if node in (source, target) else 1
        network.add_arc((node, _IN), (node, _OUT), capacity)
    for u, v in graph.edges():
        network.add_arc((u, _OUT), (v, _IN), big)
        network.add_arc((v, _OUT), (u, _IN), big)
    network.max_flow((source, _OUT), (target, _IN))
    reachable = network.min_cut_reachable((source, _OUT))
    separator = {
        node
        for node in graph.nodes()
        if (node, _IN) in reachable and (node, _OUT) not in reachable
    }
    return separator


def minimum_separator(graph: Graph) -> Set[Node]:
    """Return a minimum separating set of a connected, non-complete graph.

    The returned set has exactly ``kappa(G)`` nodes.  For the paper's model a
    graph of connectivity ``t + 1`` therefore yields a minimal separating set
    ``M`` of size ``t + 1``, as required by the kernel construction.

    Raises
    ------
    ValueError
        If the graph is complete (no separating set exists), disconnected or
        has fewer than three nodes.
    """
    n = graph.number_of_nodes()
    if n < 3:
        raise ValueError("graphs with fewer than 3 nodes have no separating set")
    if not is_connected(graph):
        raise ValueError("graph is disconnected; separating sets are not meaningful")
    if all(graph.degree(node) == n - 1 for node in graph.nodes()):
        raise ValueError("complete graphs have no separating set")

    best: Optional[Set[Node]] = None
    pivot = min(graph.nodes(), key=graph.degree)
    candidates_pairs = []
    for other in graph.nodes():
        if other != pivot and not graph.has_edge(pivot, other):
            candidates_pairs.append((pivot, other))
    neighbor_order = sorted(
        graph.neighbors(pivot), key=lambda node: (graph.degree(node), repr(node))
    )
    for x, y in itertools.combinations(neighbor_order, 2):
        if not graph.has_edge(x, y):
            candidates_pairs.append((x, y))

    for x, y in candidates_pairs:
        separator = minimum_pair_separator(graph, x, y)
        if best is None or len(separator) < len(best):
            best = separator
            if len(best) == 1:
                break
    if best is None:
        # Every non-adjacent pair search failed, which for a non-complete
        # connected graph cannot happen; guard for safety.
        raise ValueError("failed to locate a separating set")
    return best


def minimal_separating_set(graph: Graph, size: Optional[int] = None) -> Set[Node]:
    """Return a separating set of exactly ``size`` nodes (default ``kappa(G)``).

    The kernel construction asks for a *minimal* separating set of size
    ``t + 1``; if a larger ``size`` is requested the minimum separator is
    padded with additional nodes chosen so that the set still separates the
    graph (nodes outside the two components being merged cannot "unseparate"
    it, so any extra non-component-spanning nodes work — we simply add nodes
    not in the separator, preferring high-degree ones, and re-verify).
    """
    base = minimum_separator(graph)
    if size is None or size == len(base):
        return base
    if size < len(base):
        raise ValueError(
            f"no separating set of size {size} exists: minimum separator has "
            f"{len(base)} nodes"
        )
    remaining_components = connected_components(graph.without_nodes(base))
    # Keep at least one node out of two distinct components so the enlarged
    # set still separates the graph (repr-minimal choice for determinism).
    protected = {min(component, key=repr) for component in remaining_components[:2]}
    extras = [
        node
        for node in sorted(
            graph.nodes(), key=lambda node: (-graph.degree(node), repr(node))
        )
        if node not in base and node not in protected
    ]
    enlarged = set(base)
    for node in extras:
        if len(enlarged) >= size:
            break
        enlarged.add(node)
    if len(enlarged) < size or not is_separating_set(graph, enlarged):
        raise ValueError(f"could not build a separating set of size {size}")
    return enlarged

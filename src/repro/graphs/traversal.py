"""Graph traversal primitives: BFS/DFS, shortest paths, distances, diameter.

These routines work on both :class:`repro.graphs.graph.Graph` (undirected) and
:class:`repro.graphs.digraph.DiGraph` (directed) instances.  Directionality is
abstracted through a single ``_out_neighbors`` helper: for undirected graphs it
returns the neighbour set, for directed graphs the successor set.

The paper's central quantity is the *diameter* of the surviving route graph,
so :func:`diameter` and :func:`eccentricity` are the workhorses of the whole
reproduction; they are plain BFS from every node, which is exact and fast
enough for the graph sizes involved (hundreds to a few thousands of nodes).
"""

from __future__ import annotations

import collections
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Union

from repro.exceptions import NodeNotFoundError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph

Node = Hashable
AnyGraph = Union[Graph, DiGraph]

#: Conventional value returned for unreachable distances / infinite diameters.
INFINITY = float("inf")


def _out_neighbors(graph: AnyGraph, node: Node) -> Iterable[Node]:
    """Iterate the nodes reachable from ``node`` in one hop.

    Iteration follows the graph's insertion order (``iter_successors`` /
    ``iter_neighbors``), so every traversal below — and with it BFS trees,
    shortest-path choices and component orders — is deterministic across
    interpreter runs.
    """
    if isinstance(graph, DiGraph):
        return graph.iter_successors(node)
    return graph.iter_neighbors(node)


def bfs_distances(graph: AnyGraph, source: Node) -> Dict[Node, int]:
    """Return hop distances from ``source`` to every reachable node.

    Unreachable nodes are absent from the returned mapping.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    distances: Dict[Node, int] = {source: 0}
    queue = collections.deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in _out_neighbors(graph, current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def bfs_tree(graph: AnyGraph, source: Node) -> Dict[Node, Optional[Node]]:
    """Return a BFS predecessor map rooted at ``source``.

    The source maps to ``None``; every other reachable node maps to its parent
    on some shortest path from the source.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    parents: Dict[Node, Optional[Node]] = {source: None}
    queue = collections.deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in _out_neighbors(graph, current):
            if neighbor not in parents:
                parents[neighbor] = current
                queue.append(neighbor)
    return parents


def shortest_path(graph: AnyGraph, source: Node, target: Node) -> Optional[List[Node]]:
    """Return one shortest path from ``source`` to ``target``, or ``None``.

    The path is returned as a list of nodes including both endpoints.  When
    ``source == target`` the single-node path ``[source]`` is returned.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parents = bfs_tree(graph, source)
    if target not in parents:
        return None
    path = [target]
    while path[-1] != source:
        parent = parents[path[-1]]
        assert parent is not None  # source is the only node with parent None
        path.append(parent)
    path.reverse()
    return path


def distance(graph: AnyGraph, source: Node, target: Node) -> float:
    """Return ``dist(source, target, graph)``; ``inf`` when unreachable.

    This is the paper's ``dist(x, y, G)``.
    """
    distances = bfs_distances(graph, source)
    return distances.get(target, INFINITY)


def dfs_preorder(graph: AnyGraph, source: Node) -> List[Node]:
    """Return nodes reachable from ``source`` in depth-first preorder."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    visited: Set[Node] = set()
    order: List[Node] = []
    stack = [source]
    while stack:
        current = stack.pop()
        if current in visited:
            continue
        visited.add(current)
        order.append(current)
        # Reversed for a deterministic left-to-right exploration of sorted
        # neighbour lists when nodes are comparable; falls back gracefully.
        neighbors = [n for n in _out_neighbors(graph, current) if n not in visited]
        try:
            neighbors.sort(reverse=True)
        except TypeError:
            pass
        stack.extend(neighbors)
    return order


def connected_components(graph: Graph) -> List[Set[Node]]:
    """Return the connected components of an undirected graph.

    Components are discovered by scanning ``graph.nodes()`` in order, so the
    component list (and the implicit choice of each component's BFS root) is
    deterministic.
    """
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for root in graph.nodes():
        if root in seen:
            continue
        component = set(bfs_distances(graph, root))
        components.append(component)
        seen |= component
    return components


def is_connected(graph: Graph) -> bool:
    """Return ``True`` if the undirected graph is connected and non-empty."""
    nodes = graph.nodes()
    if not nodes:
        return False
    reachable = bfs_distances(graph, nodes[0])
    return len(reachable) == len(nodes)


def is_strongly_connected(graph: DiGraph) -> bool:
    """Return ``True`` if the directed graph is strongly connected and non-empty."""
    nodes = graph.nodes()
    if not nodes:
        return False
    root = nodes[0]
    if len(bfs_distances(graph, root)) != len(nodes):
        return False
    return len(bfs_distances(graph.reverse(), root)) == len(nodes)


def eccentricity(graph: AnyGraph, node: Node) -> float:
    """Return the eccentricity of ``node``: max distance to any other node.

    Returns ``inf`` if some node is unreachable from ``node``.
    """
    distances = bfs_distances(graph, node)
    if len(distances) != graph.number_of_nodes():
        return INFINITY
    if len(distances) == 1:
        return 0
    return max(distances.values())


def diameter(graph: AnyGraph) -> float:
    """Return the diameter: the maximum distance over all ordered node pairs.

    Returns ``inf`` for disconnected (or not strongly connected) graphs, and
    ``0`` for graphs with a single node.  The empty graph has diameter ``inf``
    by convention (there is no finite bound on communication).
    """
    nodes = graph.nodes()
    if not nodes:
        return INFINITY
    worst = 0.0
    for node in nodes:
        ecc = eccentricity(graph, node)
        if ecc == INFINITY:
            return INFINITY
        worst = max(worst, ecc)
    return worst


def radius(graph: AnyGraph) -> float:
    """Return the radius: the minimum eccentricity over all nodes."""
    nodes = graph.nodes()
    if not nodes:
        return INFINITY
    return min(eccentricity(graph, node) for node in nodes)


def all_pairs_distances(graph: AnyGraph) -> Dict[Node, Dict[Node, int]]:
    """Return BFS distances from every node (``source -> target -> hops``)."""
    return {node: bfs_distances(graph, node) for node in graph.nodes()}


def path_length(path: Sequence[Node]) -> int:
    """Return the number of edges of a node-sequence path."""
    if not path:
        raise ValueError("empty path has no length")
    return len(path) - 1


def is_simple_path(graph: AnyGraph, path: Sequence[Node]) -> bool:
    """Return ``True`` if ``path`` is a simple path existing in ``graph``.

    A simple path visits each node at most once and every consecutive pair of
    nodes must be joined by an edge (arc, for directed graphs).  A single-node
    path is simple provided the node exists.
    """
    if not path:
        return False
    if len(set(path)) != len(path):
        return False
    if not all(graph.has_node(node) for node in path):
        return False
    if isinstance(graph, DiGraph):
        return all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))
    return all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))


def induced_path_exists(graph: AnyGraph, path: Sequence[Node], forbidden: Iterable[Node]) -> bool:
    """Return ``True`` if ``path`` avoids every node in ``forbidden``.

    This is the "route is unaffected by the faults" predicate: the paper says a
    route is *affected* by a fault if the fault is contained in it.
    """
    forbidden_set = set(forbidden)
    return not any(node in forbidden_set for node in path)

"""Maximum flow on unit-capacity networks (Dinic's algorithm).

Vertex connectivity and internally vertex-disjoint paths — the two graph
quantities on which every construction in the paper rests (the connectivity
``t + 1`` of the underlying graph, and the ``t + 1`` disjoint paths of
Lemma 2) — reduce to maximum flow on a *node-split* directed network with unit
capacities.  This module implements that reduction's engine: a small,
self-contained Dinic's algorithm.

The implementation keeps an explicit residual-capacity dictionary rather than
an edge-struct array because the networks involved are small (a few thousand
arcs) and clarity wins over micro-optimisation.
"""

from __future__ import annotations

import collections
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

Node = Hashable
Arc = Tuple[Node, Node]


class FlowNetwork:
    """A directed network with integer arc capacities for max-flow computation.

    Arcs are added with :meth:`add_arc`; adding an arc also creates the reverse
    residual arc with capacity 0 (unless the reverse arc was added explicitly,
    in which case capacities accumulate correctly).
    """

    def __init__(self) -> None:
        self._capacity: Dict[Arc, int] = {}
        # node -> {neighbor: None}: insertion-ordered so BFS level graphs and
        # DFS augmenting-path choices are reproducible across interpreter
        # runs — the min cut (and with it separator / disjoint-path choices
        # downstream) must not depend on PYTHONHASHSEED.
        self._adjacency: Dict[Node, Dict[Node, None]] = {}

    def add_node(self, node: Node) -> None:
        """Ensure ``node`` exists in the network."""
        if node not in self._adjacency:
            self._adjacency[node] = {}

    def add_arc(self, u: Node, v: Node, capacity: int = 1) -> None:
        """Add capacity ``capacity`` on the arc ``u -> v``.

        Repeated calls accumulate capacity.  The reverse residual arc is
        created implicitly with capacity 0.
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u][v] = None
        self._adjacency[v][u] = None  # residual direction
        self._capacity[(u, v)] = self._capacity.get((u, v), 0) + capacity
        self._capacity.setdefault((v, u), 0)

    def capacity(self, u: Node, v: Node) -> int:
        """Return the remaining capacity of the arc ``u -> v`` (0 if absent)."""
        return self._capacity.get((u, v), 0)

    def nodes(self) -> List[Node]:
        """Return the nodes of the network."""
        return list(self._adjacency)

    # ------------------------------------------------------------------
    # Dinic's algorithm
    # ------------------------------------------------------------------
    def _bfs_levels(self, source: Node, sink: Node) -> Optional[Dict[Node, int]]:
        """Build the BFS level graph; return ``None`` if the sink is unreachable."""
        levels: Dict[Node, int] = {source: 0}
        queue = collections.deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in levels and self._capacity.get((current, neighbor), 0) > 0:
                    levels[neighbor] = levels[current] + 1
                    queue.append(neighbor)
        return levels if sink in levels else None

    def _dfs_augment(
        self,
        source: Node,
        sink: Node,
        limit: int,
        levels: Dict[Node, int],
        iterators: Dict[Node, "_ReusableIterator"],
    ) -> int:
        """Push up to ``limit`` units of flow along one level-graph path.

        The search is iterative (explicit stack) so that augmenting paths of
        arbitrary length — node-splitting doubles path lengths — cannot hit
        Python's recursion limit.
        """
        path: List[Node] = [source]
        while path:
            current = path[-1]
            if current == sink:
                bottleneck = limit
                for u, v in zip(path, path[1:]):
                    bottleneck = min(bottleneck, self._capacity.get((u, v), 0))
                for u, v in zip(path, path[1:]):
                    self._capacity[(u, v)] -= bottleneck
                    self._capacity[(v, u)] = self._capacity.get((v, u), 0) + bottleneck
                return bottleneck
            advanced = False
            for neighbor in iterators[current]:
                residual = self._capacity.get((current, neighbor), 0)
                if residual > 0 and levels.get(neighbor, -1) == levels[current] + 1:
                    path.append(neighbor)
                    advanced = True
                    break
            if not advanced:
                # Dead end: this node cannot reach the sink in the level graph
                # any more during this phase.
                levels[current] = -1
                path.pop()
        return 0

    def max_flow(self, source: Node, sink: Node, cutoff: Optional[int] = None) -> int:
        """Compute the maximum flow from ``source`` to ``sink``.

        Parameters
        ----------
        source, sink:
            Distinct nodes of the network.
        cutoff:
            Optional early-exit bound: computation stops as soon as the flow
            value reaches ``cutoff``.  Useful when the caller only needs to
            know whether the connectivity is at least some threshold.

        Notes
        -----
        The network is mutated (capacities become residual capacities), so a
        :class:`FlowNetwork` instance supports a single max-flow computation.
        Callers that need repeated computations build a fresh network each
        time; see :func:`unit_max_flow`.
        """
        if source == sink:
            raise ValueError("source and sink must be distinct")
        if source not in self._adjacency or sink not in self._adjacency:
            return 0
        flow_value = 0
        infinity = sum(c for c in self._capacity.values() if c > 0) + 1
        while True:
            levels = self._bfs_levels(source, sink)
            if levels is None:
                break
            iterators = {node: _ReusableIterator(self._adjacency[node]) for node in self._adjacency}
            while True:
                pushed = self._dfs_augment(source, sink, infinity, levels, iterators)
                if pushed == 0:
                    break
                flow_value += pushed
                if cutoff is not None and flow_value >= cutoff:
                    return flow_value
        return flow_value

    def min_cut_reachable(self, source: Node) -> Set[Node]:
        """Return the source side of a minimum cut *after* a max-flow run.

        Only meaningful once :meth:`max_flow` has been called: the residual
        capacities then describe the residual network, and the nodes reachable
        from the source in it form the source side of a minimum cut.
        """
        reachable: Set[Node] = {source}
        queue = collections.deque([source])
        while queue:
            current = queue.popleft()
            for neighbor in self._adjacency[current]:
                if neighbor not in reachable and self._capacity.get((current, neighbor), 0) > 0:
                    reachable.add(neighbor)
                    queue.append(neighbor)
        return reachable


class _ReusableIterator:
    """An iterator over a node's adjacency that remembers its position.

    Dinic's algorithm requires the per-node arc iterator to persist across DFS
    calls within one phase ("current arc" optimisation), otherwise the
    algorithm degrades to Ford-Fulkerson behaviour on adversarial inputs.
    """

    def __init__(self, items: Iterable[Node]) -> None:
        self._items = list(items)
        self._index = 0

    def __iter__(self) -> "_ReusableIterator":
        return self

    def __next__(self) -> Node:
        if self._index >= len(self._items):
            raise StopIteration
        item = self._items[self._index]
        self._index += 1
        return item


def unit_max_flow(
    arcs: Iterable[Arc], source: Node, sink: Node, cutoff: Optional[int] = None
) -> int:
    """Convenience wrapper: max flow of a fresh unit-capacity network.

    ``arcs`` is an iterable of directed ``(u, v)`` pairs each given capacity 1.
    """
    network = FlowNetwork()
    for u, v in arcs:
        network.add_arc(u, v, 1)
    network.add_node(source)
    network.add_node(sink)
    return network.max_flow(source, sink, cutoff=cutoff)

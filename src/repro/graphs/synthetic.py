"""Synthetic benchmark graphs tailored to the paper's structural requirements.

The constructions are parameterised by structural properties — "has a
neighbourhood set of ``K`` independent, neighbourhood-disjoint nodes", "has
two roots with the two-trees property" — and the natural graph families only
exhibit them at particular sizes.  To benchmark each construction at a chosen
fault parameter ``t`` without blowing up the graph size, this module builds
minimal synthetic graphs that provably satisfy the requirements:

* :func:`flower_graph` — a ``(t+1)``-connected graph containing a designated
  neighbourhood set of exactly ``K`` nodes (used for the circular and
  tri-circular benches);
* :func:`two_trees_graph` — a ``(t+1)``-connected graph with two designated
  roots witnessing the two-trees property (used for the bipolar benches).

Both return the graph together with the designated structure so benchmarks
can pass it straight to the constructions (skipping the search) and tests can
verify the search finds an equally good structure on its own.
"""

from __future__ import annotations

import itertools
from typing import Hashable, List, Tuple

from repro.graphs.generators import circulant_graph
from repro.graphs.graph import Graph

Node = Hashable


def flower_graph(t: int, k: int, petal_slack: int = 1) -> Tuple[Graph, List[Node]]:
    """Build a ``(t+1)``-connected graph with a designated neighbourhood set of size ``k``.

    Construction: a "stem" ring of ``k * (t + 1 + petal_slack)`` nodes wired
    as the circulant ``C_n(1, ..., ceil((t+1)/2))`` (which is at least
    ``(t+1)``-connected), plus ``k`` "flower" nodes; flower ``i`` is joined to
    ``t + 1`` consecutive ring nodes starting at position
    ``i * (t + 1 + petal_slack)``.  Because consecutive groups are separated
    by ``petal_slack >= 1`` unused ring nodes, the flowers are independent and
    their neighbour sets are pairwise disjoint — a neighbourhood set of
    exactly ``k`` nodes.  Every flower has degree ``t + 1``, so the overall
    connectivity is exactly ``t + 1``.

    Returns
    -------
    (graph, flowers):
        The graph and the list of flower nodes (labelled ``("flower", i)``)
        in circular order, ready to be used as the concentrator.
    """
    if t < 1:
        raise ValueError("flower graphs require t >= 1")
    if k < 2:
        raise ValueError("at least two flowers are required")
    if petal_slack < 1:
        raise ValueError("petal_slack must be at least 1 to keep neighbourhoods disjoint")

    group = t + 1 + petal_slack
    ring_size = k * group
    offsets = range(1, (t + 1 + 1) // 2 + 1)  # ceil((t+1)/2)
    ring = circulant_graph(ring_size, offsets)

    graph = Graph(name=f"flower-t{t}-k{k}")
    for u, v in ring.edges():
        graph.add_edge(("ring", u), ("ring", v))
    flowers: List[Node] = []
    for i in range(k):
        flower = ("flower", i)
        flowers.append(flower)
        start = i * group
        for j in range(t + 1):
            graph.add_edge(flower, ("ring", start + j))
    return graph, flowers


def two_trees_graph(t: int, core_slack: int = 2) -> Tuple[Graph, Node, Node]:
    """Build a ``(t+1)``-connected graph with two designated two-trees roots.

    Construction: two roots ``r1`` and ``r2``; root ``rX`` has ``t + 1``
    private "branch" nodes; every branch node additionally connects to ``t``
    private "core" nodes (so branch degree is ``t + 1``).  All core nodes,
    plus ``core_slack * (t + 1)`` filler nodes, are wired into a circulant
    ring of connectivity at least ``t + 1``.  The depth-2 neighbourhoods of
    the two roots are disjoint by construction (each branch node and each core
    node is private to one root), so ``(r1, r2)`` witness the two-trees
    property, and every node has degree at least ``t + 1``.

    Returns
    -------
    (graph, r1, r2)
    """
    if t < 1:
        raise ValueError("two-trees graphs require t >= 1")
    if core_slack < 0:
        raise ValueError("core_slack must be non-negative")

    branches_per_root = t + 1
    cores_per_branch = t
    core_count = 2 * branches_per_root * cores_per_branch + core_slack * (t + 1)
    # The circulant ring needs enough nodes to realise the required offsets.
    min_ring = 2 * ((t + 2) // 2) + 3
    core_count = max(core_count, min_ring)

    offsets = range(1, (t + 1 + 1) // 2 + 1)  # ceil((t+1)/2) => ring >= (t+1)-connected
    ring = circulant_graph(core_count, offsets)
    graph = Graph(name=f"two-trees-t{t}")
    for u, v in ring.edges():
        graph.add_edge(("core", u), ("core", v))

    r1: Node = ("root", 1)
    r2: Node = ("root", 2)
    core_cursor = 0
    for root_index, root in ((1, r1), (2, r2)):
        for b in range(branches_per_root):
            branch = ("branch", root_index, b)
            graph.add_edge(root, branch)
            for _ in range(cores_per_branch):
                graph.add_edge(branch, ("core", core_cursor))
                core_cursor += 1
    return graph, r1, r2


def kernel_test_graph(t: int, side: int = 0) -> Graph:
    """Build a ``(t+1)``-connected graph with an obvious small separating set.

    Two circulant "islands" of ``(t + 1) * (3 + side)`` nodes each are joined
    through a shared cut of ``t + 1`` bridge nodes: every bridge node connects
    to ``t + 1`` consecutive nodes of each island.  The bridge is a minimal
    separating set, making this the natural stress graph for the kernel
    construction (Theorems 3 and 4).
    """
    if t < 1:
        raise ValueError("kernel test graphs require t >= 1")
    island_size = (t + 1) * (3 + max(side, 0))
    offsets = range(1, (t + 1 + 1) // 2 + 1)
    island = circulant_graph(island_size, offsets)

    graph = Graph(name=f"kernel-test-t{t}")
    for label in ("left", "right"):
        for u, v in island.edges():
            graph.add_edge((label, u), (label, v))
    for b in range(t + 1):
        bridge = ("bridge", b)
        for j in range(t + 1):
            graph.add_edge(bridge, ("left", (b * (t + 1) + j) % island_size))
            graph.add_edge(bridge, ("right", (b * (t + 1) + j) % island_size))
    return graph

"""Construction of internally vertex-disjoint paths.

Lemma 2 of the paper builds a *tree routing* from a node ``x`` to a separating
set ``M`` by taking ``t + 1`` node-disjoint paths from ``x`` to some node
``y`` separated from ``x`` by ``M`` and truncating each at its first
``M``-node.  This module supplies the underlying primitive: a maximum set of
internally vertex-disjoint ``x``–``y`` paths, extracted from a max-flow on the
node-split network.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.flow import FlowNetwork
from repro.graphs.graph import Graph

Node = Hashable

_IN = "in"
_OUT = "out"


def _build_split_network(graph: Graph, source: Node, target: Node) -> FlowNetwork:
    """Node-split unit network used for disjoint-path extraction.

    Unlike the connectivity variant, *every* arc has capacity exactly 1 so the
    resulting integral flow decomposes directly into internally disjoint
    paths (edge arcs can carry at most one unit anyway because their head's
    node arc has capacity 1; using capacity 1 everywhere merely simplifies the
    decomposition).
    """
    network = FlowNetwork()
    big = graph.number_of_nodes() + 1
    for node in graph.nodes():
        capacity = big if node in (source, target) else 1
        network.add_arc((node, _IN), (node, _OUT), capacity)
    for u, v in graph.edges():
        network.add_arc((u, _OUT), (v, _IN), 1)
        network.add_arc((v, _OUT), (u, _IN), 1)
    return network


def _extract_flow_paths(
    network: FlowNetwork,
    graph: Graph,
    source: Node,
    target: Node,
) -> List[List[Node]]:
    """Decompose the (already computed) unit flow into source-target paths."""
    # Flow on arc (a, b) equals the residual capacity of the reverse arc when
    # the original arc had capacity 1; for the big-capacity arcs the flow is
    # original minus residual.  We reconstruct "used" arcs of the split graph.
    # Arc lists (not sets): the walk below consumes arcs with ``pop()``, and
    # list order follows the deterministic node/edge iteration, so the same
    # flow always decomposes into the same paths.
    used: Dict[Tuple[Node, str], List[Tuple[Node, str]]] = {}
    big = graph.number_of_nodes() + 1

    def flow_on(a: Tuple[Node, str], b: Tuple[Node, str], original: int) -> int:
        return original - network.capacity(a, b)

    for node in graph.nodes():
        original = big if node in (source, target) else 1
        if flow_on((node, _IN), (node, _OUT), original) > 0:
            used.setdefault((node, _IN), []).append((node, _OUT))
    for u, v in graph.edges():
        if flow_on((u, _OUT), (v, _IN), 1) > 0:
            used.setdefault((u, _OUT), []).append((v, _IN))
        if flow_on((v, _OUT), (u, _IN), 1) > 0:
            used.setdefault((v, _OUT), []).append((u, _IN))

    paths: List[List[Node]] = []
    while used.get((source, _OUT)):
        # Walk one unit of flow from the source to the target, consuming arcs.
        split_path: List[Tuple[Node, str]] = [(source, _OUT)]
        while split_path[-1] != (target, _IN):
            current = split_path[-1]
            candidates = used.get(current)
            if not candidates:
                # Should not happen with a valid integral flow; guard anyway.
                break
            nxt = candidates.pop()
            split_path.append(nxt)
        else:
            nodes_on_path: List[Node] = [source]
            for split_node, tag in split_path[1:]:
                if tag == _IN and split_node != nodes_on_path[-1]:
                    nodes_on_path.append(split_node)
            paths.append(nodes_on_path)
            continue
        break
    return paths


def vertex_disjoint_paths(
    graph: Graph,
    source: Node,
    target: Node,
    k: Optional[int] = None,
) -> List[List[Node]]:
    """Return a maximum set of internally vertex-disjoint ``source``–``target`` paths.

    Parameters
    ----------
    graph:
        The underlying undirected graph.
    source, target:
        Distinct nodes of ``graph``.
    k:
        Optional cap on the number of paths returned (and on the amount of
        flow computed).  When ``k`` is ``None`` the full maximum is returned.

    Returns
    -------
    list of paths
        Each path is a node list from ``source`` to ``target``.  If the two
        nodes are adjacent, one of the returned paths is the direct edge.
        Paths share no node other than the two endpoints.

    Notes
    -----
    By Menger's theorem the number of returned paths equals the local vertex
    connectivity ``kappa(source, target)`` (or ``k`` when capped).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        raise ValueError("source and target must be distinct")

    paths: List[List[Node]] = []
    working = graph
    if graph.has_edge(source, target):
        paths.append([source, target])
        working = graph.copy()
        working.remove_edge(source, target)
        if k is not None and k <= 1:
            return paths[:k]

    remaining = None if k is None else k - len(paths)
    network = _build_split_network(working, source, target)
    network.max_flow((source, _OUT), (target, _IN), cutoff=remaining)
    flow_paths = _extract_flow_paths(network, working, source, target)
    if remaining is not None:
        flow_paths = flow_paths[:remaining]
    paths.extend(flow_paths)
    return paths


def are_internally_disjoint(paths: Sequence[Sequence[Node]]) -> bool:
    """Return ``True`` if the given paths share no internal node.

    Endpoints (the first and last node of each path) are allowed to coincide;
    every other node must appear in at most one path.
    """
    seen: Set[Node] = set()
    for path in paths:
        for node in path[1:-1]:
            if node in seen:
                return False
            seen.add(node)
    return True


def truncate_paths_at_set(
    paths: Sequence[Sequence[Node]], targets: Set[Node]
) -> List[List[Node]]:
    """Truncate each path at its first node belonging to ``targets``.

    This is the path surgery of Lemma 2: given node-disjoint paths from ``x``
    towards some node beyond the separating set ``M``, keep only the prefix up
    to (and including) the first ``M``-node encountered.  Paths that never
    meet ``targets`` are dropped.
    """
    truncated: List[List[Node]] = []
    for path in paths:
        for index, node in enumerate(path):
            if index > 0 and node in targets:
                truncated.append(list(path[: index + 1]))
                break
    return truncated

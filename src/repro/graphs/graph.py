"""Undirected simple graph implementation.

The paper models communication networks as undirected graphs ``G = (V, E)`` of
node-connectivity ``t + 1``.  This module provides the :class:`Graph` class
used throughout the library.  It is a deliberately small, dependency-free
adjacency-set implementation: nodes are arbitrary hashable objects, edges are
unordered pairs of distinct nodes, and neither self-loops nor parallel edges
are representable.

The class intentionally mirrors a small subset of the ``networkx.Graph`` API
(``add_node``, ``add_edge``, ``neighbors``, ``degree`` ...) so that the test
suite can cross-validate behaviour against networkx, but the implementation is
completely independent.

Determinism
-----------
Adjacency is stored in **insertion-ordered** dictionaries (not hash-ordered
sets), so every structural iteration — ``nodes()``, ``edges()``,
``iter_neighbors()``, subgraphs — depends only on the order in which the
graph was built, never on ``PYTHONHASHSEED``.  Every construction downstream
(max-flow, disjoint paths, routings) inherits bit-for-bit reproducibility
from this property.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError

Node = Hashable
Edge = Tuple[Node, Node]


class Graph:
    """An undirected simple graph backed by adjacency sets.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` pairs used to populate the graph.
        Nodes appearing in the edge list are added implicitly.
    nodes:
        Optional iterable of nodes to add (useful for isolated nodes).
    name:
        Optional human-readable name, carried through copies and reported by
        ``repr`` — handy when sweeping graph families in experiments.

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2)], name="path-3")
    >>> sorted(g.nodes())
    [0, 1, 2]
    >>> g.has_edge(2, 1)
    True
    >>> g.degree(1)
    2
    """

    def __init__(
        self,
        edges: Optional[Iterable[Edge]] = None,
        nodes: Optional[Iterable[Node]] = None,
        name: str = "",
    ) -> None:
        # node -> {neighbor: None}; inner dicts act as insertion-ordered sets
        # so iteration order never depends on PYTHONHASHSEED.
        self._adj: Dict[Node, Dict[Node, None]] = {}
        self.name = name
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph.  Adding an existing node is a no-op."""
        if node not in self._adj:
            self._adj[node] = {}

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        for neighbor in self._adj[node]:
            self._adj[neighbor].pop(node, None)
        del self._adj[node]

    def remove_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Remove every node in ``nodes`` (each must be present)."""
        for node in list(nodes):
            self.remove_node(node)

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._adj

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def nodes(self) -> List[Node]:
        """Return a list of all nodes (insertion order)."""
        return list(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def number_of_nodes(self) -> int:
        """Return the number of nodes, ``|V|``."""
        return len(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``.

        Endpoints are added to the graph if missing.  Self-loops are rejected
        because the model only considers simple graphs.
        """
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = None
        self._adj[v][u] = None

    def add_edges_from(self, edges: Iterable[Edge]) -> None:
        """Add every edge in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        EdgeNotFoundError
            If the edge is not present.
        """
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._adj[u].pop(v, None)
        self._adj[v].pop(u, None)

    def remove_edges_from(self, edges: Iterable[Edge]) -> None:
        """Remove every edge in ``edges`` (each must be present)."""
        for u, v in list(edges):
            self.remove_edge(u, v)

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` if the edge ``{u, v}`` is in the graph."""
        return u in self._adj and v in self._adj[u]

    def edges(self) -> List[Edge]:
        """Return each undirected edge exactly once as an ``(u, v)`` tuple."""
        seen: Set[frozenset] = set()
        result: List[Edge] = []
        for u in self._adj:
            for v in self._adj[u]:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def number_of_edges(self) -> int:
        """Return the number of edges, ``|E|``."""
        return sum(len(neighbors) for neighbors in self._adj.values()) // 2

    # ------------------------------------------------------------------
    # Neighbourhood / degree queries
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> Set[Node]:
        """Return the neighbour set ``Gamma(node)`` as a fresh :class:`set`.

        This is the paper's ``Γ(u, G)``.

        Raises
        ------
        NodeNotFoundError
            If ``node`` is not in the graph.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return set(self._adj[node])

    def iter_neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over ``Gamma(node)`` in insertion order (deterministic).

        Unlike :meth:`neighbors` this does not copy into a hash-ordered set;
        traversals that must be reproducible across interpreter runs (BFS
        trees, shortest paths, flow networks) iterate through here.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return iter(self._adj[node])

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return len(self._adj[node])

    def degrees(self) -> Dict[Node, int]:
        """Return a mapping from every node to its degree."""
        return {node: len(neighbors) for node, neighbors in self._adj.items()}

    def max_degree(self) -> int:
        """Return the maximum degree; 0 for the empty graph."""
        if not self._adj:
            return 0
        return max(len(neighbors) for neighbors in self._adj.values())

    def min_degree(self) -> int:
        """Return the minimum degree; 0 for the empty graph."""
        if not self._adj:
            return 0
        return min(len(neighbors) for neighbors in self._adj.values())

    def average_degree(self) -> float:
        """Return the average degree ``2|E| / |V|``; 0.0 for the empty graph."""
        if not self._adj:
            return 0.0
        return 2.0 * self.number_of_edges() / self.number_of_nodes()

    def closed_neighborhood(self, node: Node) -> Set[Node]:
        """Return ``{node} | Gamma(node)``."""
        return {node} | self.neighbors(node)

    def neighborhood_at_distance(self, node: Node, radius: int) -> Set[Node]:
        """Return all nodes within ``radius`` hops of ``node`` (excluding it).

        A ``radius`` of 1 gives the ordinary neighbour set; a ``radius`` of 2
        additionally includes neighbours of neighbours, and so on.  Used by
        the greedy neighbourhood-set construction of Lemma 15.
        """
        if node not in self._adj:
            raise NodeNotFoundError(node)
        if radius < 0:
            raise ValueError("radius must be non-negative")
        visited: Set[Node] = {node}
        frontier: Set[Node] = {node}
        for _ in range(radius):
            next_frontier: Set[Node] = set()
            for u in frontier:
                next_frontier.update(self._adj[u].keys() - visited)
            visited.update(next_frontier)
            frontier = next_frontier
            if not frontier:
                break
        visited.discard(node)
        return visited

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep structural copy of the graph."""
        clone = Graph(name=self.name)
        for node in self._adj:
            clone.add_node(node)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the subgraph induced by ``nodes``.

        Nodes not present in the graph are ignored, matching the common
        "restrict to the surviving nodes" usage.
        """
        keep = {node for node in nodes if node in self._adj}
        sub = Graph(name=self.name)
        # Iterate the parent's insertion order (not the ``keep`` set) so the
        # subgraph's node/edge order is independent of PYTHONHASHSEED.
        for node in self._adj:
            if node in keep:
                sub.add_node(node)
        for node in self._adj:
            if node not in keep:
                continue
            for neighbor in self._adj[node]:
                if neighbor in keep:
                    sub.add_edge(node, neighbor)
        return sub

    def without_nodes(self, nodes: Iterable[Node]) -> "Graph":
        """Return a copy of the graph with ``nodes`` (and incident edges) removed.

        This is the "remove the faulty nodes" operation used when building the
        surviving route graph and when checking separating sets.
        """
        removed = set(nodes)
        return self.subgraph(node for node in self._adj if node not in removed)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return all(self._adj[node] == other._adj[node] for node in self._adj)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Graph{label} |V|={self.number_of_nodes()} "
            f"|E|={self.number_of_edges()}>"
        )

    def adjacency(self) -> Dict[Node, Set[Node]]:
        """Return a copy of the adjacency structure (node -> neighbour set)."""
        return {node: set(neighbors) for node, neighbors in self._adj.items()}

"""Graph operations: union, product, complement, relabelling, augmentation.

These are small building blocks used by the generators (cartesian products
give tori and hypercubes), by the Section 6 "changing the network" experiment
(adding a clique on the concentrator), and by tests.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Hashable, Iterable, List, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graphs.graph import Graph

Node = Hashable


def relabel(graph: Graph, mapping: Dict[Node, Node]) -> Graph:
    """Return a copy of ``graph`` with nodes renamed through ``mapping``.

    Nodes missing from ``mapping`` keep their labels.  The mapping must be
    injective on the node set, otherwise distinct nodes would merge.
    """
    targets = [mapping.get(node, node) for node in graph.nodes()]
    if len(set(targets)) != len(targets):
        raise ValueError("relabelling mapping is not injective on the node set")
    renamed = Graph(name=graph.name)
    for node in graph.nodes():
        renamed.add_node(mapping.get(node, node))
    for u, v in graph.edges():
        renamed.add_edge(mapping.get(u, u), mapping.get(v, v))
    return renamed


def convert_node_labels_to_integers(graph: Graph) -> Tuple[Graph, Dict[Node, int]]:
    """Relabel nodes to ``0 .. n-1`` and return the new graph plus the mapping."""
    mapping = {node: index for index, node in enumerate(graph.nodes())}
    return relabel(graph, mapping), mapping


def disjoint_union(first: Graph, second: Graph) -> Graph:
    """Return the disjoint union; nodes are tagged ``(0, node)`` / ``(1, node)``."""
    union = Graph(name=f"union({first.name},{second.name})")
    for node in first.nodes():
        union.add_node((0, node))
    for node in second.nodes():
        union.add_node((1, node))
    for u, v in first.edges():
        union.add_edge((0, u), (0, v))
    for u, v in second.edges():
        union.add_edge((1, u), (1, v))
    return union


def graph_union(first: Graph, second: Graph) -> Graph:
    """Return the union of two graphs sharing a label space (nodes merge)."""
    union = Graph(name=f"merge({first.name},{second.name})")
    for node in first.nodes():
        union.add_node(node)
    for node in second.nodes():
        union.add_node(node)
    for u, v in first.edges():
        union.add_edge(u, v)
    for u, v in second.edges():
        union.add_edge(u, v)
    return union


def cartesian_product(first: Graph, second: Graph) -> Graph:
    """Return the cartesian product ``first x second``.

    Nodes are pairs ``(a, b)``; ``(a, b)`` is adjacent to ``(a', b')`` when
    either ``a = a'`` and ``b ~ b'`` or ``b = b'`` and ``a ~ a'``.  The
    hypercube ``Q_d`` is the ``d``-fold product of ``K_2``, a fact used as a
    generator cross-check in the tests.
    """
    product = Graph(name=f"product({first.name},{second.name})")
    for a in first.nodes():
        for b in second.nodes():
            product.add_node((a, b))
    for a in first.nodes():
        for u, v in second.edges():
            product.add_edge((a, u), (a, v))
    for b in second.nodes():
        for u, v in first.edges():
            product.add_edge((u, b), (v, b))
    return product


def complement(graph: Graph) -> Graph:
    """Return the complement graph on the same node set."""
    nodes = graph.nodes()
    comp = Graph(nodes=nodes, name=f"complement({graph.name})")
    for u, v in itertools.combinations(nodes, 2):
        if not graph.has_edge(u, v):
            comp.add_edge(u, v)
    return comp


def add_clique(graph: Graph, nodes: Iterable[Node]) -> Tuple[Graph, List[Tuple[Node, Node]]]:
    """Return a copy of ``graph`` with all edges among ``nodes`` added.

    Returns the augmented graph and the list of newly added edges.  This is
    the Section 6 "changing the network" operation: making the concentrator a
    clique at the cost of at most ``t(t+1)/2`` new links.
    """
    node_list = list(nodes)
    for node in node_list:
        if not graph.has_node(node):
            raise NodeNotFoundError(node)
    augmented = graph.copy()
    added: List[Tuple[Node, Node]] = []
    for u, v in itertools.combinations(node_list, 2):
        if not augmented.has_edge(u, v):
            augmented.add_edge(u, v)
            added.append((u, v))
    return augmented, added


def edge_subdivision(graph: Graph, u: Node, v: Node, new_node: Node) -> Graph:
    """Return a copy with the edge ``{u, v}`` subdivided through ``new_node``."""
    if not graph.has_edge(u, v):
        raise NodeNotFoundError((u, v))
    if graph.has_node(new_node):
        raise ValueError(f"node {new_node!r} already exists")
    divided = graph.copy()
    divided.remove_edge(u, v)
    divided.add_edge(u, new_node)
    divided.add_edge(new_node, v)
    return divided


def map_nodes(graph: Graph, function: Callable[[Node], Node]) -> Graph:
    """Relabel every node through ``function`` (must stay injective)."""
    return relabel(graph, {node: function(node) for node in graph.nodes()})

"""Directed simple graph implementation.

Directed graphs appear in two places in the reproduction:

* the *surviving route graph* ``R(G, rho)/F`` of a unidirectional routing is a
  directed graph (an edge ``x -> y`` exists when the route from ``x`` to ``y``
  survives the faults);
* the flow networks used to compute vertex connectivity and vertex-disjoint
  paths (node-splitting transformation) are directed.

Like :class:`repro.graphs.graph.Graph` this is a dependency-free adjacency-set
implementation with a networkx-like surface for easy cross-validation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError

Node = Hashable
Arc = Tuple[Node, Node]


class DiGraph:
    """A directed simple graph backed by successor / predecessor sets.

    Parameters
    ----------
    edges:
        Optional iterable of ``(u, v)`` arcs used to populate the graph.
    nodes:
        Optional iterable of nodes to add up front.
    name:
        Optional human-readable name.
    """

    def __init__(
        self,
        edges: Optional[Iterable[Arc]] = None,
        nodes: Optional[Iterable[Node]] = None,
        name: str = "",
    ) -> None:
        # node -> {successor/predecessor: None}; insertion-ordered dicts so
        # iteration never depends on PYTHONHASHSEED (see graph.Graph).
        self._succ: Dict[Node, Dict[Node, None]] = {}
        self._pred: Dict[Node, Dict[Node, None]] = {}
        self.name = name
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (no-op if already present)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_nodes_from(self, nodes: Iterable[Node]) -> None:
        """Add every node in ``nodes``."""
        for node in nodes:
            self.add_node(node)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident arcs."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for succ in self._succ[node]:
            self._pred[succ].pop(node, None)
        for pred in self._pred[node]:
            self._succ[pred].pop(node, None)
        del self._succ[node]
        del self._pred[node]

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._succ

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def nodes(self) -> List[Node]:
        """Return a list of all nodes (insertion order)."""
        return list(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def number_of_nodes(self) -> int:
        """Return the number of nodes."""
        return len(self._succ)

    def __len__(self) -> int:
        return len(self._succ)

    # ------------------------------------------------------------------
    # Arc operations
    # ------------------------------------------------------------------
    def add_edge(self, u: Node, v: Node) -> None:
        """Add the arc ``u -> v`` (endpoints added if missing)."""
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        self._succ[u][v] = None
        self._pred[v][u] = None

    def add_edges_from(self, edges: Iterable[Arc]) -> None:
        """Add every arc in ``edges``."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the arc ``u -> v``."""
        if not self.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        self._succ[u].pop(v, None)
        self._pred[v].pop(u, None)

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` if the arc ``u -> v`` is present."""
        return u in self._succ and v in self._succ[u]

    def edges(self) -> List[Arc]:
        """Return all arcs as ``(u, v)`` tuples."""
        return [(u, v) for u in self._succ for v in self._succ[u]]

    def number_of_edges(self) -> int:
        """Return the number of arcs."""
        return sum(len(succ) for succ in self._succ.values())

    # ------------------------------------------------------------------
    # Neighbourhood queries
    # ------------------------------------------------------------------
    def successors(self, node: Node) -> Set[Node]:
        """Return the out-neighbour set of ``node``."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return set(self._succ[node])

    def predecessors(self, node: Node) -> Set[Node]:
        """Return the in-neighbour set of ``node``."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return set(self._pred[node])

    def iter_successors(self, node: Node) -> Iterator[Node]:
        """Iterate over out-neighbours in insertion order (deterministic)."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return iter(self._succ[node])

    def iter_predecessors(self, node: Node) -> Iterator[Node]:
        """Iterate over in-neighbours in insertion order (deterministic)."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return iter(self._pred[node])

    def out_degree(self, node: Node) -> int:
        """Return the out-degree of ``node``."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        """Return the in-degree of ``node``."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return len(self._pred[node])

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        """Return a deep structural copy."""
        clone = DiGraph(name=self.name)
        for node in self._succ:
            clone.add_node(node)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def reverse(self) -> "DiGraph":
        """Return a copy with every arc reversed."""
        rev = DiGraph(name=self.name)
        for node in self._succ:
            rev.add_node(node)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def to_undirected(self) -> "object":
        """Return the underlying undirected :class:`~repro.graphs.graph.Graph`.

        Each arc becomes an undirected edge (arc direction is forgotten).
        """
        from repro.graphs.graph import Graph

        undirected = Graph(name=self.name)
        for node in self._succ:
            undirected.add_node(node)
        for u, v in self.edges():
            undirected.add_edge(u, v)
        return undirected

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the subgraph induced by ``nodes`` (missing nodes ignored)."""
        keep = {node for node in nodes if node in self._succ}
        sub = DiGraph(name=self.name)
        for node in self._succ:
            if node in keep:
                sub.add_node(node)
        for node in self._succ:
            if node not in keep:
                continue
            for succ in self._succ[node]:
                if succ in keep:
                    sub.add_edge(node, succ)
        return sub

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        if set(self._succ) != set(other._succ):
            return False
        return all(self._succ[node] == other._succ[node] for node in self._succ)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<DiGraph{label} |V|={self.number_of_nodes()} "
            f"|A|={self.number_of_edges()}>"
        )

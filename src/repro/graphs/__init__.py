"""Graph substrate for the fault-tolerant routing library.

Everything in this subpackage is self-contained (no third-party dependencies):
an undirected :class:`Graph`, a directed :class:`DiGraph`, traversal and
shortest-path routines, max-flow based connectivity / disjoint-path / separator
computations, structural property predicates (neighbourhood sets, two-trees
property), and generators for the graph families discussed in the paper.
"""

from repro.graphs.graph import Graph
from repro.graphs.digraph import DiGraph
from repro.graphs.traversal import (
    INFINITY,
    all_pairs_distances,
    bfs_distances,
    bfs_tree,
    connected_components,
    diameter,
    distance,
    eccentricity,
    is_connected,
    is_simple_path,
    is_strongly_connected,
    path_length,
    radius,
    shortest_path,
)
from repro.graphs.connectivity import (
    connectivity_parameter,
    edge_connectivity,
    is_k_connected,
    local_edge_connectivity,
    local_node_connectivity,
    node_connectivity,
)
from repro.graphs.disjoint_paths import (
    are_internally_disjoint,
    truncate_paths_at_set,
    vertex_disjoint_paths,
)
from repro.graphs.separators import (
    is_separating_set,
    minimal_separating_set,
    minimum_pair_separator,
    minimum_separator,
    separates,
)
from repro.graphs.properties import (
    degree_histogram,
    find_two_trees_roots,
    girth,
    has_two_trees_property,
    have_disjoint_neighborhoods,
    is_independent_set,
    is_neighborhood_set,
    is_regular,
    lies_on_short_cycle,
    max_degree_threshold,
    pairwise_distance_at_least,
    satisfies_circular_degree_bound,
    satisfies_two_trees_property,
)
from repro.graphs import generators, operations, synthetic
from repro.graphs.registry import (
    GRAPH_FAMILIES,
    GraphFamily,
    Param,
    canonical_graph_spec,
    family_by_name,
    parse_graph_spec,
    register_family,
    split_graph_spec,
)

__all__ = [
    "Graph",
    "DiGraph",
    "INFINITY",
    "all_pairs_distances",
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "diameter",
    "distance",
    "eccentricity",
    "is_connected",
    "is_simple_path",
    "is_strongly_connected",
    "path_length",
    "radius",
    "shortest_path",
    "connectivity_parameter",
    "edge_connectivity",
    "is_k_connected",
    "local_edge_connectivity",
    "local_node_connectivity",
    "node_connectivity",
    "are_internally_disjoint",
    "truncate_paths_at_set",
    "vertex_disjoint_paths",
    "is_separating_set",
    "minimal_separating_set",
    "minimum_pair_separator",
    "minimum_separator",
    "separates",
    "degree_histogram",
    "find_two_trees_roots",
    "girth",
    "has_two_trees_property",
    "have_disjoint_neighborhoods",
    "is_independent_set",
    "is_neighborhood_set",
    "is_regular",
    "lies_on_short_cycle",
    "max_degree_threshold",
    "pairwise_distance_at_least",
    "satisfies_circular_degree_bound",
    "satisfies_two_trees_property",
    "generators",
    "operations",
    "synthetic",
    "GRAPH_FAMILIES",
    "GraphFamily",
    "Param",
    "canonical_graph_spec",
    "family_by_name",
    "parse_graph_spec",
    "register_family",
    "split_graph_spec",
]

"""Registry of named, parameterised graph families.

Before this module existed, every layer that needed to go from a *name* to a
*graph* re-improvised the mapping: the CLI kept its own ``GRAPH_FACTORIES``
dict of positional-argument lambdas, :data:`repro.graphs.generators
.NAMED_SMALL_GRAPHS` kept a second registry of parameterless factories, and
benchmarks hand-rolled a third.  The scenario subsystem needs one canonical
answer, so this module provides it:

* :class:`GraphFamily` — a named family with typed, defaulted parameters and
  a deterministic builder;
* :data:`GRAPH_FAMILIES` — the registry covering every generator in
  :mod:`repro.graphs.generators` and :mod:`repro.graphs.synthetic`;
* :func:`parse_graph_spec` / :func:`canonical_graph_spec` — the single
  parser/formatter for ``family:arg,...`` specifications.

Specification grammar
---------------------
A graph spec is ``name`` or ``name:arg1,arg2,...``.  Arguments may be given
positionally (``hypercube:4``, in declared parameter order) or by name
(``hypercube:d=4``); integer-list parameters use ``+`` between elements in
named form (``circulant:n=24,offsets=1+2``) or consume the remaining
positional arguments (``circulant:24,1,2``).  The canonical form — what
:func:`canonical_graph_spec` emits and scenario strings embed — is fully
named with every parameter present: ``hypercube:d=4``,
``circulant:n=24,offsets=1+2``.  Parsing is strict (unknown families,
unknown or repeated parameters and malformed values raise ``ValueError``)
and building is deterministic: the same canonical spec always produces the
same graph, bit for bit, on any interpreter run.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.graphs import generators, synthetic
from repro.graphs.graph import Graph

#: Parameter kinds understood by the parser.
_KINDS = ("int", "float", "ints")


@dataclasses.dataclass(frozen=True)
class Param:
    """One typed, defaulted parameter of a graph family."""

    name: str
    kind: str  # "int" | "float" | "ints"
    default: object

    def parse(self, text: str) -> object:
        """Parse one token (named form) into this parameter's value."""
        try:
            if self.kind == "int":
                return int(text)
            if self.kind == "float":
                return float(text)
            if self.kind == "ints":
                items = [int(item) for item in text.split("+") if item != ""]
                if not items:
                    raise ValueError("empty integer list")
                return tuple(items)
        except ValueError:
            raise ValueError(
                f"parameter {self.name!r} expects {self.kind}, got {text!r}"
            ) from None
        raise ValueError(f"unknown parameter kind {self.kind!r}")

    def format(self, value: object) -> str:
        """Render a value in the canonical (named) form."""
        if self.kind == "ints":
            return "+".join(str(int(item)) for item in value)  # type: ignore[arg-type]
        if self.kind == "float":
            return format(float(value), "g")  # type: ignore[arg-type]
        return str(int(value))  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class GraphFamily:
    """A named graph family: builder + typed parameters + documentation.

    ``builder`` is called with the parameter values positionally, in declared
    order; ``unwrap`` post-processes builders that return more than the graph
    (e.g. :func:`repro.graphs.synthetic.flower_graph` returns ``(graph,
    flowers)``).
    """

    name: str
    builder: Callable[..., object]
    params: Tuple[Param, ...] = ()
    description: str = ""
    unwrap: Optional[Callable[[object], Graph]] = None

    def defaults(self) -> Dict[str, object]:
        """Return the parameter defaults as a fresh dict."""
        return {param.name: param.default for param in self.params}

    def parse_arguments(self, tokens: Sequence[str]) -> Dict[str, object]:
        """Parse spec argument tokens (positional and/or named) into values.

        Positional tokens bind to parameters in declared order; a trailing
        ``ints`` parameter consumes every remaining positional token.  Named
        tokens (``key=value``) may follow positionals but not precede them.
        """
        values = self.defaults()
        by_name = {param.name: param for param in self.params}
        positional_index = 0
        seen_named = False
        assigned = set()
        for token in tokens:
            token = token.strip()
            if not token:
                continue
            if "=" in token:
                seen_named = True
                key, _, raw = token.partition("=")
                key = key.strip()
                param = by_name.get(key)
                if param is None:
                    raise ValueError(
                        f"family {self.name!r} has no parameter {key!r}; "
                        f"parameters: {[p.name for p in self.params]}"
                    )
                if param.name in assigned:
                    raise ValueError(
                        f"parameter {key!r} given more than once for {self.name!r}"
                    )
                values[param.name] = param.parse(raw.strip())
                assigned.add(param.name)
                continue
            if seen_named:
                raise ValueError(
                    f"positional argument {token!r} after named arguments "
                    f"in spec for {self.name!r}"
                )
            if positional_index >= len(self.params):
                raise ValueError(
                    f"too many arguments for family {self.name!r} "
                    f"(takes {len(self.params)})"
                )
            param = self.params[positional_index]
            if param.kind == "ints":
                # A trailing integer-list parameter absorbs the rest.
                items = values.setdefault(f"__absorb_{param.name}", [])  # type: ignore[arg-type]
                items.append(int(token))  # type: ignore[union-attr]
                assigned.add(param.name)
            else:
                values[param.name] = param.parse(token)
                assigned.add(param.name)
                positional_index += 1
        for param in self.params:
            absorbed = values.pop(f"__absorb_{param.name}", None)
            if absorbed:
                values[param.name] = tuple(absorbed)
        return values

    def build(self, **overrides: object) -> Graph:
        """Build the family's graph with defaults overridden by ``overrides``."""
        values = self.defaults()
        for key, value in overrides.items():
            if key not in values:
                raise ValueError(
                    f"family {self.name!r} has no parameter {key!r}"
                )
            values[key] = value
        result = self.builder(*[values[param.name] for param in self.params])
        if self.unwrap is not None:
            result = self.unwrap(result)
        if not isinstance(result, Graph):
            raise TypeError(
                f"builder for family {self.name!r} did not produce a Graph"
            )
        return result

    def build_from_tokens(self, tokens: Sequence[str]) -> Graph:
        """Parse argument tokens and build the graph."""
        return self.build(**self.parse_arguments(tokens))

    def canonical(self, values: Optional[Dict[str, object]] = None) -> str:
        """Return the canonical spec string for the given parameter values."""
        merged = self.defaults()
        if values:
            merged.update(values)
        if not self.params:
            return self.name
        rendered = ",".join(
            f"{param.name}={param.format(merged[param.name])}"
            for param in self.params
        )
        return f"{self.name}:{rendered}"

    def example(self) -> str:
        """Return the canonical spec at the family defaults (for help text)."""
        return self.canonical()


#: The registry: family name -> :class:`GraphFamily`.
GRAPH_FAMILIES: Dict[str, GraphFamily] = {}


def register_family(family: GraphFamily) -> GraphFamily:
    """Register ``family`` (rejecting duplicate names) and return it."""
    if family.name in GRAPH_FAMILIES:
        raise ValueError(f"graph family {family.name!r} is already registered")
    for param in family.params:
        if param.kind not in _KINDS:
            raise ValueError(
                f"family {family.name!r} parameter {param.name!r} has "
                f"unknown kind {param.kind!r}"
            )
    GRAPH_FAMILIES[family.name] = family
    return family


def family_by_name(name: str) -> GraphFamily:
    """Look up a family, raising a helpful ``ValueError`` when unknown."""
    family = GRAPH_FAMILIES.get(name)
    if family is None:
        raise ValueError(
            f"unknown graph family {name!r}; available: {sorted(GRAPH_FAMILIES)}"
        )
    return family


def split_graph_spec(spec: str) -> Tuple[GraphFamily, Dict[str, object]]:
    """Parse ``name:args`` into ``(family, parameter values)``."""
    name, _, argument_text = spec.partition(":")
    family = family_by_name(name.strip().lower())
    tokens = [item for item in argument_text.split(",")]
    try:
        values = family.parse_arguments(tokens)
    except (ValueError, TypeError) as exc:
        raise ValueError(
            f"invalid arguments for graph family {family.name!r}: {exc}"
        ) from exc
    return family, values


def parse_graph_spec(spec: str) -> Graph:
    """Parse a ``name:arg1,arg2`` graph specification and build the graph."""
    family, values = split_graph_spec(spec)
    try:
        return family.build(**values)
    except (ValueError, TypeError) as exc:
        raise ValueError(
            f"invalid arguments for graph family {family.name!r}: {exc}"
        ) from exc


def canonical_graph_spec(spec: str) -> str:
    """Normalise any accepted spec into its canonical fully-named form."""
    family, values = split_graph_spec(spec)
    return family.canonical(values)


def _first(result: object) -> Graph:
    """Unwrap builders that return ``(graph, structure)`` tuples."""
    return result[0]  # type: ignore[index]


def _register_all() -> None:
    families = [
        GraphFamily(
            "cycle", generators.cycle_graph, (Param("n", "int", 12),
            ), "cycle C_n (connectivity 2)"),
        GraphFamily(
            "path", generators.path_graph, (Param("n", "int", 12),
            ), "path P_n"),
        GraphFamily(
            "complete", generators.complete_graph, (Param("n", "int", 6),
            ), "complete graph K_n"),
        GraphFamily(
            "complete-bipartite", generators.complete_bipartite_graph,
            (Param("a", "int", 3), Param("b", "int", 3)),
            "complete bipartite K_{a,b}"),
        GraphFamily(
            "star", generators.star_graph, (Param("n", "int", 5),
            ), "star with n leaves"),
        GraphFamily(
            "wheel", generators.wheel_graph, (Param("n", "int", 6),
            ), "wheel: rim of n nodes plus a hub"),
        GraphFamily(
            "grid", generators.grid_graph,
            (Param("rows", "int", 4), Param("cols", "int", 4)),
            "rows x cols planar grid"),
        GraphFamily(
            "torus", generators.torus_graph,
            (Param("rows", "int", 4), Param("cols", "int", 4)),
            "rows x cols torus (4-regular)"),
        GraphFamily(
            "hypercube", generators.hypercube_graph, (Param("d", "int", 3),
            ), "d-dimensional hypercube Q_d (d-connected)"),
        GraphFamily(
            "ccc", generators.cube_connected_cycles_graph, (Param("d", "int", 3),
            ), "cube-connected cycles CCC_d (3-regular)"),
        GraphFamily(
            "butterfly", generators.butterfly_graph, (Param("d", "int", 3),
            ), "wrapped butterfly of dimension d"),
        GraphFamily(
            "debruijn", generators.de_bruijn_graph,
            (Param("base", "int", 2), Param("d", "int", 3)),
            "undirected de Bruijn graph B(base, d)"),
        GraphFamily(
            "shuffle-exchange", generators.shuffle_exchange_graph,
            (Param("d", "int", 3),),
            "shuffle-exchange network on 2^d nodes"),
        GraphFamily(
            "circulant", generators.circulant_graph,
            (Param("n", "int", 12), Param("offsets", "ints", (1, 2))),
            "circulant C_n(offsets); C_n(1..k) is 2k-connected"),
        GraphFamily(
            "harary", generators.harary_graph,
            (Param("k", "int", 3), Param("n", "int", 10)),
            "Harary graph H_{k,n} (k-connected, minimal edges)"),
        GraphFamily(
            "petersen", generators.petersen_graph, (),
            "the Petersen graph (3-regular, 3-connected)"),
        GraphFamily(
            "barbell", generators.barbell_graph,
            (Param("clique", "int", 4), Param("path", "int", 2)),
            "two cliques joined by a path"),
        GraphFamily(
            "tree", generators.tree_graph,
            (Param("branching", "int", 2), Param("depth", "int", 3)),
            "complete branching-ary tree"),
        GraphFamily(
            "gnp", generators.gnp_random_graph,
            (Param("n", "int", 30), Param("p", "float", 0.1),
             Param("seed", "int", 0)),
            "Erdos-Renyi G(n, p) sample (seeded)"),
        GraphFamily(
            "random-regular", generators.random_regular_graph,
            (Param("degree", "int", 3), Param("n", "int", 12),
             Param("seed", "int", 0)),
            "random degree-regular simple graph (seeded)"),
        GraphFamily(
            "random-connected", generators.random_connected_graph,
            (Param("n", "int", 12), Param("p", "float", 0.1),
             Param("seed", "int", 0)),
            "random spanning tree plus extra edges (seeded)"),
        GraphFamily(
            "random-k-connected", generators.random_k_connected_graph,
            (Param("n", "int", 12), Param("k", "int", 3),
             Param("p", "float", 0.05), Param("seed", "int", 0)),
            "randomised Harary base, verified >= k-connected (seeded)"),
        GraphFamily(
            "flower", synthetic.flower_graph,
            (Param("t", "int", 1), Param("k", "int", 5)),
            "(t+1)-connected gadget with a designated k-flower "
            "neighbourhood set", unwrap=_first),
        GraphFamily(
            "two-trees", synthetic.two_trees_graph, (Param("t", "int", 1),),
            "(t+1)-connected gadget with designated two-trees roots",
            unwrap=_first),
        GraphFamily(
            "kernel-test", synthetic.kernel_test_graph, (Param("t", "int", 1),),
            "two circulant islands joined by a (t+1)-node bridge separator"),
    ]
    for family in families:
        register_family(family)


_register_all()

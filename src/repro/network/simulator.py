"""The fixed-route network simulator (event-driven).

:class:`NetworkSimulator` runs a constructed routing the way the paper's
motivating systems would:

* every message carries its precomputed source route; intermediate nodes
  forward blindly along it (one link traversal per hop, each costing
  ``hop_latency``);
* endpoint services (encryption, checksums) run at the endpoints of every
  route segment and dominate the cost (``service.cost`` per endpoint);
* when nodes have failed, a single route may no longer reach the
  destination; the simulator then delivers the message across a *sequence*
  of surviving routes, exactly the re-routing behaviour whose length the
  surviving route graph's diameter bounds.

The route-sequence planner uses BFS over the surviving route graph — the
"ideal" plan whose length is ``dist(x, y, R(G, rho)/F)``; the broadcast
module implements the paper's decentralised route-counter protocol that
needs no such global knowledge.

Unlike the original per-hop loop (which drove one message at a time by
scheduling placeholder events and draining the queue after every hop), the
simulator is now fully **event-driven** over the slotted integer-tick
engine of :mod:`repro.network.events`:

* time is quantised at ``resolution`` ticks per latency unit, so hop and
  service delays are exact integers and latency statistics are exact;
* :meth:`inject` starts a delivery at any future tick without blocking —
  many messages progress concurrently, queueing at the per-edge
  :class:`~repro.network.links.Link` transmission queues (capacity,
  bounded buffers, drops) instead of passing through placeholder lambdas;
* :meth:`send` remains the one-shot synchronous API: inject, run the
  engine until this delivery's receipt materialises, return it;
* route plans are BFS parent maps cached per origin and invalidated when
  the fault set changes, so steady-state traffic pays O(plan length) per
  message, not O(graph) — the main reason the engine beats the legacy
  loop by the benchmark's gated factor;
* failure receipts report the ticks elapsed for *that message* (the legacy
  loop read the global clock while scheduled-but-unrun endpoint events
  were still pending, under-/over-counting failure latency).

With the default null link model (infinite capacity, zero queueing) the
engine reproduces the legacy simulator's receipts exactly — delivered
flag, routes used, hop counts, failure reasons, and the serial latency
``hops * hop_latency + 2 * segments * service.cost``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple, Union

from repro.core.routing import MultiRouting, Routing
from repro.core.surviving import surviving_route_graph
from repro.exceptions import DeliveryError, SimulationError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_tree
from repro.network.events import EventQueue
from repro.network.links import Link, LinkSpec
from repro.network.messages import DeliveryReceipt, Message
from repro.network.node import NetworkNode
from repro.network.services import EndpointService, NullService

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]

#: Default ticks per latency unit: quantises ``hop_latency=0.1`` to 10
#: ticks and the stock service costs (0.0 / 1.0 / 1.5 / 2.0) exactly.
DEFAULT_RESOLUTION = 100


@dataclasses.dataclass
class SimulatorStats:
    """Aggregate counters for a simulation run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_failed: int = 0
    total_hops: int = 0
    total_routes_used: int = 0
    total_latency_ticks: int = 0

    def delivery_ratio(self) -> float:
        """Return the fraction of sent messages that were delivered."""
        if self.messages_sent == 0:
            return 1.0
        return self.messages_delivered / self.messages_sent


class _Delivery:
    """Per-message progress of one end-to-end delivery (engine-internal)."""

    __slots__ = (
        "message",
        "on_complete",
        "plan",
        "index",
        "hops",
        "start_tick",
        "payload",
        "wire_payload",
        "segment",
        "epoch",
    )

    def __init__(
        self,
        message: Message,
        on_complete: Optional[Callable[[DeliveryReceipt], None]],
    ) -> None:
        self.message = message
        self.on_complete = on_complete
        self.plan: Optional[List[Tuple[Node, Node]]] = None
        self.index = 0
        self.hops = 0
        self.start_tick = 0
        self.payload: Any = None
        self.wire_payload: Any = None
        self.segment: Optional[Tuple[Node, Node]] = None
        self.epoch = 0


class NetworkSimulator:
    """Simulate point-to-point delivery over a fixed routing with faults.

    Parameters
    ----------
    graph:
        The underlying network.
    routing:
        A constructed routing (or multirouting) over ``graph``.
    service:
        Endpoint service applied at the endpoints of every route segment
        (defaults to no processing).
    hop_latency:
        Simulated time per link traversal (quantised to
        ``round(hop_latency * resolution)`` ticks).
    resolution:
        Ticks per latency unit (see :data:`DEFAULT_RESOLUTION`).
    link:
        Optional :class:`~repro.network.links.LinkSpec` giving every
        directed edge a capacity / buffer / propagation latency.  ``None``
        is the null model: unlimited capacity, zero queueing — the legacy
        cost model.
    """

    def __init__(
        self,
        graph: Graph,
        routing: AnyRouting,
        service: Optional[EndpointService] = None,
        hop_latency: float = 0.1,
        resolution: int = DEFAULT_RESOLUTION,
        link: Optional[LinkSpec] = None,
    ) -> None:
        if not isinstance(resolution, int) or resolution < 1:
            raise SimulationError(
                f"resolution must be a positive integer, got {resolution!r}"
            )
        if hop_latency < 0:
            raise SimulationError(f"hop_latency must be non-negative, got {hop_latency!r}")
        self.graph = graph
        self.routing = routing
        self.service = service if service is not None else NullService()
        self.hop_latency = hop_latency
        self.resolution = resolution
        self.hop_ticks = self._to_ticks(hop_latency)
        self.service_ticks = self._to_ticks(self.service.cost)
        self.link_spec = link if link is not None else LinkSpec()
        self.events = EventQueue()
        self.nodes: Dict[Node, NetworkNode] = {
            node: NetworkNode(node) for node in graph.nodes()
        }
        self.stats = SimulatorStats()
        #: Lazily created per directed edge actually carrying traffic.
        self.links: Dict[Tuple[Node, Node], Link] = {}
        self._failed: set = set()
        self._surviving_cache: Optional[DiGraph] = None
        #: BFS parent maps per origin over the surviving route graph,
        #: invalidated whenever the fault set changes.
        self._plan_cache: Dict[Node, Dict[Node, Optional[Node]]] = {}
        #: Monotone counter bumped on every fail/repair; a segment flight
        #: whose epoch still matches at landing crossed an unchanged fault
        #: set and needs no per-hop liveness replay.
        self._fault_epoch = 0
        #: Per-node (tick, alive) transition history, so a landing flight
        #: can reconstruct whether a node was up when the message crossed it.
        self._transitions: Dict[Node, List[Tuple[int, bool]]] = {}
        #: Chosen surviving path per route segment, invalidated with the
        #: plans: steady-state traffic skips the per-node fault scan.
        self._route_cache: Dict[Tuple[Node, Node], Tuple[Node, ...]] = {}
        #: Stats objects per path (NetworkNode instances are never replaced,
        #: so these rows stay valid across fail/repair).
        self._path_stats: Dict[Tuple[Node, ...], Tuple[List, Any]] = {}

    def _to_ticks(self, latency: float) -> int:
        """Quantise a latency in time units to engine ticks."""
        if latency < 0:
            raise SimulationError(f"latency must be non-negative, got {latency!r}")
        return int(round(latency * self.resolution))

    # ------------------------------------------------------------------
    # Fault management
    # ------------------------------------------------------------------
    def failed_nodes(self) -> List[Node]:
        """Return the currently failed nodes."""
        return [node_id for node_id, node in self.nodes.items() if not node.alive]

    def fail_node(self, node_id: Node) -> None:
        """Fail a node (it drops everything it is handed from now on).

        Under traffic, failing a node mid-run kills the in-flight messages
        that reach it afterwards — their deliveries fail with the usual
        "reached failed node" receipts.
        """
        if node_id not in self.nodes:
            raise SimulationError(f"unknown node {node_id!r}")
        self.nodes[node_id].fail()
        self._failed.add(node_id)
        self._fault_epoch += 1
        self._transitions.setdefault(node_id, []).append((self.events.now, False))
        self._invalidate_plans()

    def fail_nodes(self, node_ids: Iterable[Node]) -> None:
        """Fail several nodes at once."""
        for node_id in node_ids:
            self.fail_node(node_id)

    def repair_node(self, node_id: Node) -> None:
        """Repair a previously failed node."""
        if node_id not in self.nodes:
            raise SimulationError(f"unknown node {node_id!r}")
        self.nodes[node_id].repair()
        self._failed.discard(node_id)
        self._fault_epoch += 1
        self._transitions.setdefault(node_id, []).append((self.events.now, True))
        self._invalidate_plans()

    def _invalidate_plans(self) -> None:
        self._surviving_cache = None
        self._plan_cache.clear()
        self._route_cache.clear()

    # ------------------------------------------------------------------
    # Surviving route graph bookkeeping
    # ------------------------------------------------------------------
    def surviving_graph(self) -> DiGraph:
        """Return (and cache) the surviving route graph for the current faults."""
        if self._surviving_cache is None:
            self._surviving_cache = surviving_route_graph(
                self.graph, self.routing, self.failed_nodes()
            )
        return self._surviving_cache

    def plan_route_sequence(self, origin: Node, destination: Node) -> List[Tuple[Node, Node]]:
        """Return the sequence of route segments used to deliver a message.

        Each element is an ordered pair (segment source, segment destination)
        for which the routing defines a surviving route.  Raises
        :class:`DeliveryError` when the destination is unreachable in the
        surviving route graph (more faults than the routing tolerates, or a
        faulty endpoint).  The BFS parent map is cached per origin until the
        fault set changes, so repeated plans from one origin are O(length).
        """
        surviving = self.surviving_graph()
        if not surviving.has_node(origin):
            raise DeliveryError(f"origin {origin!r} is failed or unknown")
        if not surviving.has_node(destination):
            raise DeliveryError(f"destination {destination!r} is failed or unknown")
        if origin == destination:
            return []
        parents = self._plan_cache.get(origin)
        if parents is None:
            parents = bfs_tree(surviving, origin)
            self._plan_cache[origin] = parents
        if destination not in parents:
            raise DeliveryError(
                f"no sequence of surviving routes connects {origin!r} to {destination!r}"
            )
        chain: List[Node] = [destination]
        while chain[-1] != origin:
            parent = parents[chain[-1]]
            assert parent is not None
            chain.append(parent)
        chain.reverse()
        return list(zip(chain, chain[1:]))

    def _segment_path(self, source: Node, target: Node) -> Tuple[Node, ...]:
        """Return a surviving route path for one segment of the plan.

        Cached per segment until the fault set changes, so steady-state
        traffic pays the per-node fault scan once per (source, target).
        """
        cached = self._route_cache.get((source, target))
        if cached is not None:
            return cached
        failed = self._failed
        if isinstance(self.routing, MultiRouting):
            for candidate in self.routing.get_routes(source, target):
                if not any(node in failed for node in candidate):
                    path = tuple(candidate)
                    break
            else:
                raise DeliveryError(
                    f"all parallel routes {source!r}->{target!r} are faulty"
                )
        else:
            candidate = self.routing.get_route(source, target)
            if candidate is None or any(node in failed for node in candidate):
                raise DeliveryError(
                    f"route {source!r}->{target!r} is missing or faulty"
                )
            path = tuple(candidate)
        self._route_cache[(source, target)] = path
        return path

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def link_between(self, source: Node, target: Node) -> Link:
        """Return (creating on first use) the link for one directed edge."""
        key = (source, target)
        link = self.links.get(key)
        if link is None:
            spec = self.link_spec
            latency = spec.latency if spec.latency is not None else self.hop_ticks
            link = Link(source, target, latency, spec.capacity, spec.buffer)
            self.links[key] = link
        return link

    # ------------------------------------------------------------------
    # Message delivery
    # ------------------------------------------------------------------
    def send(self, origin: Node, destination: Node, payload: Any) -> DeliveryReceipt:
        """Deliver ``payload`` from ``origin`` to ``destination`` and return a receipt.

        The delivery is simulated through the event engine; the returned
        receipt records the number of route segments used (which the
        theorems bound by the surviving diameter), the total hop count, and
        the simulated latency including endpoint-service processing.
        Synchronous convenience over :meth:`inject` — the engine runs until
        this delivery completes (other pending traffic progresses too).
        """
        box: List[DeliveryReceipt] = []
        self.inject(origin, destination, payload, on_complete=box.append)
        while not box:
            if not self.events.step():
                raise SimulationError(
                    "event queue drained before the delivery completed"
                )
        return box[0]

    def inject(
        self,
        origin: Node,
        destination: Node,
        payload: Any,
        delay: int = 0,
        on_complete: Optional[Callable[[DeliveryReceipt], None]] = None,
    ) -> Message:
        """Schedule a delivery to start ``delay`` ticks from now (non-blocking).

        The message is planned against the fault set at its *start tick*,
        not at injection time — timed fault schedules change the outcomes
        of messages injected before the fault strikes.  ``on_complete``
        receives the :class:`DeliveryReceipt` when the delivery finishes
        (delivered, failed, or dropped at a full link buffer).
        """
        self.stats.messages_sent += 1
        message = Message(origin=origin, final_destination=destination, payload=payload)
        message.trace.append(origin)
        delivery = _Delivery(message, on_complete)
        self.events.schedule(delay, lambda: self._start(delivery), kind="inject")
        return message

    # Each delivery is a small state machine walked by engine callbacks:
    # _start -> [per segment: endpoint-send -> hop* -> endpoint-recv] -> _finish.
    def _start(self, delivery: _Delivery) -> None:
        message = delivery.message
        delivery.start_tick = self.events.now
        message.injected_tick = self.events.now
        try:
            delivery.plan = self.plan_route_sequence(
                message.origin, message.final_destination
            )
        except DeliveryError as exc:
            self._finish(delivery, delivered=False, reason=str(exc))
            return
        self.nodes[message.origin].stats.originated += 1
        delivery.payload = message.payload
        self._next_segment(delivery)

    def _next_segment(self, delivery: _Delivery) -> None:
        plan = delivery.plan
        assert plan is not None
        if delivery.index >= len(plan):
            self._complete(delivery)
            return
        segment_source, segment_target = plan[delivery.index]
        try:
            path = self._segment_path(segment_source, segment_target)
        except DeliveryError as exc:
            self._finish(delivery, delivered=False, reason=str(exc))
            return
        # Service errors (e.g. checksum mismatches) propagate out of the
        # engine run, matching the legacy simulator's synchronous raise.
        wire_payload = self.service.on_send(
            delivery.payload, segment_source, segment_target
        )
        delivery.segment = (segment_source, segment_target)
        delivery.wire_payload = wire_payload
        delivery.epoch = self._fault_epoch
        message = delivery.message
        message.payload = wire_payload
        message.attach_route(path)
        if self.link_spec.capacity is None:
            # Null link model: no transmission queues, so the whole segment
            # is deterministic at departure — endpoint send, flight, and
            # endpoint receive coalesce into a single landing event (see
            # :meth:`_land`), instead of an event per hop.
            hop = self.link_spec.latency
            if hop is None:
                hop = self.hop_ticks
            hops = len(path) - 1
            start = self.events.now + self.service_ticks
            self.events.schedule(
                2 * self.service_ticks + hops * hop,
                lambda: self._land(delivery, start, hop),
                kind="segment",
            )
            return
        self.events.schedule(
            self.service_ticks, lambda: self._forward(delivery), kind="endpoint-send"
        )

    def _forward(self, delivery: _Delivery) -> None:
        message = delivery.message
        node = self.nodes[message.current_node]
        try:
            next_node = node.forward(message)
        except SimulationError as exc:
            self._finish(delivery, delivered=False, reason=str(exc))
            return
        if next_node is None:
            # End of the segment: endpoint receive, then the next segment.
            self.events.schedule(
                self.service_ticks,
                lambda: self._finish_segment(delivery),
                kind="endpoint-recv",
            )
            return
        link = self.link_between(message.current_node, next_node)
        depart = link.reserve(self.events.now)
        if depart is None:
            self._finish(
                delivery,
                delivered=False,
                reason=(
                    f"link {message.current_node!r}->{next_node!r} dropped "
                    f"message {message.message_id} (buffer full)"
                ),
            )
            return
        delay = depart - self.events.now + link.latency
        self.events.schedule(
            delay, lambda: self._arrive(delivery, next_node), kind="hop"
        )

    def _land(self, delivery: _Delivery, start: int, hop: int) -> None:
        """Finish one null-model segment scheduled as a single event.

        Without link capacity there is nothing to queue for: every node of
        the attached route is crossed at a tick known at departure
        (``start``, ``start + hop``, ...).  Liveness is replayed at landing
        from the fault-transition history, so timed fail/repair schedules
        kill exactly the crossings the per-hop model would have killed — a
        death mid-flight backdates the receipt to the tick the message
        reached the failed node.
        """
        message = delivery.message
        path = message.route
        last = len(path) - 1
        nodes = self.nodes
        if self._fault_epoch != delivery.epoch:
            # The fault set changed after the path was validated: replay
            # each crossing against the transition history.
            if not self._alive_at(path[0], start):
                nodes[path[0]].stats.dropped += 1
                self._finish(
                    delivery,
                    delivered=False,
                    reason=f"node {path[0]!r} is failed and dropped the message",
                    at_tick=start,
                )
                return
            for index in range(1, last + 1):
                if self._alive_at(path[index], start + index * hop):
                    continue
                for passed in range(index):
                    nodes[path[passed]].stats.forwarded += 1
                message.trace.extend(path[1:index])
                message.hop_index = index - 1
                delivery.hops += index - 1
                self._finish(
                    delivery,
                    delivered=False,
                    reason=(
                        f"message {message.message_id} reached failed node "
                        f"{path[index]!r}"
                    ),
                    at_tick=start + index * hop,
                )
                return
        stats_row = self._path_stats.get(path)
        if stats_row is None:
            stats_row = (
                [nodes[node].stats for node in path[:-1]],
                nodes[path[last]].stats,
            )
            self._path_stats[path] = stats_row
        for stats in stats_row[0]:
            stats.forwarded += 1
        stats_row[1].received += 1
        message.trace.extend(path[1:])
        message.hop_index = last
        delivery.hops += last
        # The landing event already includes the endpoint-receive delay.
        self._finish_segment(delivery)

    def _alive_at(self, node_id: Node, tick: int) -> bool:
        """Return whether a node was up at ``tick`` (ties go to the fault:
        fail/repair schedules fire before traffic within a tick)."""
        for when, alive in reversed(self._transitions.get(node_id, ())):
            if when <= tick:
                return alive
        return True

    def _arrive(self, delivery: _Delivery, node_id: Node) -> None:
        message = delivery.message
        if not self.nodes[node_id].alive:
            self._finish(
                delivery,
                delivered=False,
                reason=f"message {message.message_id} reached failed node {node_id!r}",
            )
            return
        message.advance()
        delivery.hops += 1
        self._forward(delivery)

    def _finish_segment(self, delivery: _Delivery) -> None:
        segment = delivery.segment
        assert segment is not None
        delivery.payload = self.service.on_receive(
            delivery.wire_payload, segment[0], segment[1]
        )
        delivery.index += 1
        self._next_segment(delivery)

    def _complete(self, delivery: _Delivery) -> None:
        message = delivery.message
        try:
            self.nodes[message.final_destination].deliver(message, delivery.payload)
        except SimulationError as exc:
            # The destination failed while the delivery was in flight.
            self._finish(delivery, delivered=False, reason=str(exc))
            return
        self._finish(delivery, delivered=True)

    def _finish(
        self,
        delivery: _Delivery,
        delivered: bool,
        reason: str = "",
        at_tick: Optional[int] = None,
    ) -> None:
        message = delivery.message
        now = self.events.now if at_tick is None else at_tick
        message.finished_tick = now
        ticks = now - delivery.start_tick
        if delivered:
            self.stats.messages_delivered += 1
            self.stats.total_hops += delivery.hops
            self.stats.total_routes_used += message.route_counter
            self.stats.total_latency_ticks += ticks
        else:
            self.stats.messages_failed += 1
        receipt = DeliveryReceipt(
            message=message,
            delivered=delivered,
            routes_used=message.route_counter,
            hops=delivery.hops,
            latency=ticks / self.resolution,
            failure_reason=reason,
            latency_ticks=ticks,
        )
        if delivery.on_complete is not None:
            delivery.on_complete(receipt)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def max_queue_depth(self) -> int:
        """Return the deepest queue any link reached during the run."""
        return max(
            (link.stats.max_queue_depth for link in self.links.values()), default=0
        )

    def dropped_at_links(self) -> int:
        """Return the number of messages dropped at full link buffers."""
        return sum(link.stats.dropped for link in self.links.values())

    def describe(self) -> str:
        """Return a one-paragraph summary of the simulator state."""
        failed = self.failed_nodes()
        return (
            f"NetworkSimulator over {self.graph!r} with routing "
            f"{getattr(self.routing, 'name', '?')!r}: "
            f"{len(failed)} failed nodes, "
            f"{self.stats.messages_delivered}/{self.stats.messages_sent} delivered, "
            f"avg routes/message="
            f"{(self.stats.total_routes_used / self.stats.messages_delivered):.2f}"
            if self.stats.messages_delivered
            else f"NetworkSimulator over {self.graph!r}: no deliveries yet"
        )

"""The fixed-route network simulator.

:class:`NetworkSimulator` runs a constructed routing the way the paper's
motivating systems would:

* every message carries its precomputed source route; intermediate nodes
  forward blindly along it (one event per hop, each costing ``hop_latency``);
* endpoint services (encryption, checksums) run at the endpoints of every
  route segment and dominate the cost (``service.cost`` per endpoint);
* when nodes have failed, a single route may no longer reach the destination;
  the simulator then delivers the message across a *sequence* of surviving
  routes, exactly the re-routing behaviour whose length the surviving route
  graph's diameter bounds.

The route-sequence planner uses BFS over the surviving route graph — the
"ideal" plan whose length is ``dist(x, y, R(G, rho)/F)``; the broadcast module
implements the paper's decentralised route-counter protocol that needs no such
global knowledge.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple, Union

from repro.core.routing import MultiRouting, Routing
from repro.core.surviving import surviving_route_graph
from repro.exceptions import DeliveryError, SimulationError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_tree
from repro.network.events import EventQueue
from repro.network.messages import DeliveryReceipt, Message
from repro.network.node import NetworkNode
from repro.network.services import EndpointService, NullService

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]


@dataclasses.dataclass
class SimulatorStats:
    """Aggregate counters for a simulation run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_failed: int = 0
    total_hops: int = 0
    total_routes_used: int = 0

    def delivery_ratio(self) -> float:
        """Return the fraction of sent messages that were delivered."""
        if self.messages_sent == 0:
            return 1.0
        return self.messages_delivered / self.messages_sent


class NetworkSimulator:
    """Simulate point-to-point delivery over a fixed routing with faults.

    Parameters
    ----------
    graph:
        The underlying network.
    routing:
        A constructed routing (or multirouting) over ``graph``.
    service:
        Endpoint service applied at the endpoints of every route segment
        (defaults to no processing).
    hop_latency:
        Simulated time per link traversal.
    """

    def __init__(
        self,
        graph: Graph,
        routing: AnyRouting,
        service: Optional[EndpointService] = None,
        hop_latency: float = 0.1,
    ) -> None:
        self.graph = graph
        self.routing = routing
        self.service = service if service is not None else NullService()
        self.hop_latency = hop_latency
        self.events = EventQueue()
        self.nodes: Dict[Node, NetworkNode] = {
            node: NetworkNode(node) for node in graph.nodes()
        }
        self.stats = SimulatorStats()
        self._surviving_cache: Optional[DiGraph] = None

    # ------------------------------------------------------------------
    # Fault management
    # ------------------------------------------------------------------
    def failed_nodes(self) -> List[Node]:
        """Return the currently failed nodes."""
        return [node_id for node_id, node in self.nodes.items() if not node.alive]

    def fail_node(self, node_id: Node) -> None:
        """Fail a node (it drops everything it is handed from now on)."""
        if node_id not in self.nodes:
            raise SimulationError(f"unknown node {node_id!r}")
        self.nodes[node_id].fail()
        self._surviving_cache = None

    def fail_nodes(self, node_ids: Iterable[Node]) -> None:
        """Fail several nodes at once."""
        for node_id in node_ids:
            self.fail_node(node_id)

    def repair_node(self, node_id: Node) -> None:
        """Repair a previously failed node."""
        if node_id not in self.nodes:
            raise SimulationError(f"unknown node {node_id!r}")
        self.nodes[node_id].repair()
        self._surviving_cache = None

    # ------------------------------------------------------------------
    # Surviving route graph bookkeeping
    # ------------------------------------------------------------------
    def surviving_graph(self) -> DiGraph:
        """Return (and cache) the surviving route graph for the current faults."""
        if self._surviving_cache is None:
            self._surviving_cache = surviving_route_graph(
                self.graph, self.routing, self.failed_nodes()
            )
        return self._surviving_cache

    def plan_route_sequence(self, origin: Node, destination: Node) -> List[Tuple[Node, Node]]:
        """Return the sequence of route segments used to deliver a message.

        Each element is an ordered pair (segment source, segment destination)
        for which the routing defines a surviving route.  Raises
        :class:`DeliveryError` when the destination is unreachable in the
        surviving route graph (more faults than the routing tolerates, or a
        faulty endpoint).
        """
        surviving = self.surviving_graph()
        if not surviving.has_node(origin):
            raise DeliveryError(f"origin {origin!r} is failed or unknown")
        if not surviving.has_node(destination):
            raise DeliveryError(f"destination {destination!r} is failed or unknown")
        if origin == destination:
            return []
        parents = bfs_tree(surviving, origin)
        if destination not in parents:
            raise DeliveryError(
                f"no sequence of surviving routes connects {origin!r} to {destination!r}"
            )
        chain: List[Node] = [destination]
        while chain[-1] != origin:
            parent = parents[chain[-1]]
            assert parent is not None
            chain.append(parent)
        chain.reverse()
        return list(zip(chain, chain[1:]))

    def _segment_path(self, source: Node, target: Node) -> Tuple[Node, ...]:
        """Return a surviving route path for one segment of the plan."""
        failed = set(self.failed_nodes())
        if isinstance(self.routing, MultiRouting):
            for path in self.routing.get_routes(source, target):
                if not any(node in failed for node in path):
                    return tuple(path)
            raise DeliveryError(f"all parallel routes {source!r}->{target!r} are faulty")
        path = self.routing.get_route(source, target)
        if path is None or any(node in failed for node in path):
            raise DeliveryError(f"route {source!r}->{target!r} is missing or faulty")
        return tuple(path)

    # ------------------------------------------------------------------
    # Message delivery
    # ------------------------------------------------------------------
    def send(self, origin: Node, destination: Node, payload: Any) -> DeliveryReceipt:
        """Deliver ``payload`` from ``origin`` to ``destination`` and return a receipt.

        The delivery is simulated hop by hop through the event queue; the
        returned receipt records the number of route segments used (which the
        theorems bound by the surviving diameter), the total hop count, and
        the simulated latency including endpoint-service processing.
        """
        self.stats.messages_sent += 1
        message = Message(origin=origin, final_destination=destination, payload=payload)
        message.trace.append(origin)
        start_time = self.events.now

        try:
            plan = self.plan_route_sequence(origin, destination)
        except DeliveryError as exc:
            self.stats.messages_failed += 1
            return DeliveryReceipt(
                message=message,
                delivered=False,
                routes_used=0,
                hops=0,
                latency=0.0,
                failure_reason=str(exc),
            )

        self.nodes[origin].stats.originated += 1
        hops = 0
        current_payload = payload
        try:
            for segment_source, segment_target in plan:
                path = self._segment_path(segment_source, segment_target)
                wire_payload = self.service.on_send(
                    current_payload, segment_source, segment_target
                )
                self.events.schedule(self.service.cost, lambda: None, label="endpoint-send")
                message.payload = wire_payload
                message.attach_route(path)
                hops += self._run_segment(message)
                current_payload = self.service.on_receive(
                    wire_payload, segment_source, segment_target
                )
                self.events.schedule(self.service.cost, lambda: None, label="endpoint-recv")
            self.events.run()
        except (SimulationError, DeliveryError) as exc:
            self.stats.messages_failed += 1
            return DeliveryReceipt(
                message=message,
                delivered=False,
                routes_used=message.route_counter,
                hops=hops,
                latency=self.events.now - start_time,
                failure_reason=str(exc),
            )

        self.nodes[destination].deliver(message, current_payload)
        self.stats.messages_delivered += 1
        self.stats.total_hops += hops
        self.stats.total_routes_used += message.route_counter
        return DeliveryReceipt(
            message=message,
            delivered=True,
            routes_used=message.route_counter,
            hops=hops,
            latency=self.events.now - start_time,
        )

    def _run_segment(self, message: Message) -> int:
        """Forward the message hop by hop along its attached route."""
        hops = 0
        while True:
            current = self.nodes[message.current_node]
            next_node = current.forward(message)
            if next_node is None:
                return hops
            self.events.schedule(self.hop_latency, lambda: None, label="hop")
            self.events.run()
            if not self.nodes[next_node].alive:
                raise SimulationError(
                    f"message {message.message_id} reached failed node {next_node!r}"
                )
            message.advance()
            hops += 1

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Return a one-paragraph summary of the simulator state."""
        failed = self.failed_nodes()
        return (
            f"NetworkSimulator over {self.graph!r} with routing "
            f"{getattr(self.routing, 'name', '?')!r}: "
            f"{len(failed)} failed nodes, "
            f"{self.stats.messages_delivered}/{self.stats.messages_sent} delivered, "
            f"avg routes/message="
            f"{(self.stats.total_routes_used / self.stats.messages_delivered):.2f}"
            if self.stats.messages_delivered
            else f"NetworkSimulator over {self.graph!r}: no deliveries yet"
        )

"""Network node processes for the fixed-route simulator.

A :class:`NetworkNode` is deliberately dumb, matching the paper's model: when
it holds a message that is *not* at the end of its attached route, it simply
forwards it to the next node named in the route (no routing computation); when
the message reaches a route endpoint, control returns to the simulator, which
performs the endpoint processing and decides whether another route segment is
needed to make further progress towards the final destination.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Hashable, List, Optional

from repro.exceptions import SimulationError
from repro.network.messages import Message

Node = Hashable


@dataclasses.dataclass
class NodeStats:
    """Per-node counters collected during a simulation run."""

    forwarded: int = 0
    received: int = 0
    originated: int = 0
    dropped: int = 0


class NetworkNode:
    """A single node of the simulated network."""

    def __init__(self, node_id: Node) -> None:
        self.node_id = node_id
        self.alive = True
        self.stats = NodeStats()
        #: Messages whose final destination is this node, after endpoint processing.
        self.delivered: List[Message] = []
        #: Payloads delivered to the application layer on this node.
        self.application_inbox: List[Any] = []

    def fail(self) -> None:
        """Mark the node as failed; it silently drops anything it is handed."""
        self.alive = False

    def repair(self) -> None:
        """Bring the node back (used by the repair / reconfiguration examples)."""
        self.alive = True

    def can_forward(self, message: Message) -> bool:
        """Return ``True`` if this node is able to forward the message."""
        return self.alive

    def forward(self, message: Message) -> Optional[Node]:
        """Forward the message one hop along its attached route.

        Returns the next node's identifier, or ``None`` when the message is at
        the end of its route (the simulator then performs endpoint
        processing).  Dead nodes drop messages silently, which is reported by
        raising :class:`SimulationError` so the simulator can account for it.
        """
        if not self.alive:
            self.stats.dropped += 1
            raise SimulationError(f"node {self.node_id!r} is failed and dropped the message")
        if message.current_node != self.node_id:
            raise SimulationError(
                f"message {message.message_id} routed to {self.node_id!r} but its "
                f"route position is {message.current_node!r}"
            )
        if message.at_segment_end:
            self.stats.received += 1
            return None
        self.stats.forwarded += 1
        return message.next_node

    def deliver(self, message: Message, payload: Any) -> None:
        """Hand a fully delivered message to the application layer."""
        if not self.alive:
            self.stats.dropped += 1
            raise SimulationError(f"node {self.node_id!r} is failed; cannot deliver")
        self.delivered.append(message)
        self.application_inbox.append(payload)

    def __repr__(self) -> str:
        status = "up" if self.alive else "FAILED"
        return f"<NetworkNode {self.node_id!r} {status} fwd={self.stats.forwarded}>"

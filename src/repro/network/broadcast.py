"""The route-counter broadcast protocol (Section 1).

The paper bounds the number of broadcast rounds needed to recompute routing
tables after failures by the diameter of the surviving route graph, using the
following protocol: a node broadcasts by sending a message, tagged with a
*route counter*, along all of its routes; every node that receives the message
for the first time re-sends it along all of *its* routes with the counter
incremented; the message is discarded once the counter exceeds the diameter
bound.

:func:`route_counter_broadcast` implements that protocol on top of the
surviving route graph semantics (a route delivers iff it avoids every faulty
node), and reports the number of rounds actually needed, which the benchmarks
compare against the diameter bound of the construction in use.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Iterable, List, Optional, Set, Union

from repro.core.routing import MultiRouting, Routing
from repro.core.surviving import surviving_route_graph
from repro.exceptions import SimulationError
from repro.graphs.graph import Graph

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]


@dataclasses.dataclass
class BroadcastResult:
    """Outcome of one route-counter broadcast."""

    origin: Node
    reached: Set[Node]
    rounds_used: int
    counter_limit: Optional[int]
    messages_sent: int
    discarded: int

    @property
    def complete(self) -> bool:
        """``True`` when every surviving node received the broadcast."""
        return self.rounds_used >= 0 and self._expected is not None and self.reached >= self._expected

    # populated by the broadcast routine
    _expected: Optional[Set[Node]] = None

    def coverage(self) -> float:
        """Fraction of surviving nodes reached."""
        if not self._expected:
            return 0.0
        return len(self.reached & self._expected) / len(self._expected)

    def __repr__(self) -> str:
        return (
            f"<BroadcastResult origin={self.origin!r} reached={len(self.reached)} "
            f"rounds={self.rounds_used} messages={self.messages_sent} "
            f"discarded={self.discarded}>"
        )


def route_counter_broadcast(
    graph: Graph,
    routing: AnyRouting,
    origin: Node,
    faults: Iterable[Node] = (),
    counter_limit: Optional[int] = None,
    index=None,
) -> BroadcastResult:
    """Run the Section 1 route-counter broadcast from ``origin``.

    Parameters
    ----------
    graph, routing:
        The network and its fixed routing.
    origin:
        The broadcasting node (must be non-faulty).
    faults:
        Currently failed nodes.
    counter_limit:
        The route-counter threshold above which messages are discarded.  The
        paper sets this to (a bound on) the surviving route graph's diameter;
        passing ``None`` disables discarding, which lets tests confirm that
        the number of rounds needed *without* a limit still never exceeds the
        diameter.
    index:
        Optional :class:`~repro.core.route_index.RouteIndex` for ``(graph,
        routing)``: the surviving route graph driving the protocol is then
        derived incrementally instead of re-walking every route, which
        matters when the route tables are recomputed after every failure
        event.

    Returns
    -------
    BroadcastResult
        ``rounds_used`` is the round in which the last new node was reached
        (0 if the origin is alone); ``messages_sent`` counts every route
        transmission, and ``discarded`` counts transmissions suppressed by the
        counter limit.
    """
    fault_set = set(faults)
    surviving = surviving_route_graph(graph, routing, fault_set, index=index)
    return _broadcast_on(surviving, graph, origin, fault_set, counter_limit)


def _broadcast_on(
    surviving,
    graph: Graph,
    origin: Node,
    fault_set: Set[Node],
    counter_limit: Optional[int],
) -> BroadcastResult:
    """Run the route-counter protocol on a pre-built surviving route graph."""
    if origin in fault_set:
        raise SimulationError(f"broadcast origin {origin!r} is faulty")
    if not graph.has_node(origin):
        raise SimulationError(f"broadcast origin {origin!r} is not in the graph")

    expected = set(surviving.nodes())

    reached: Set[Node] = {origin}
    frontier: Set[Node] = {origin}
    rounds_used = 0
    messages_sent = 0
    discarded = 0
    round_number = 0

    while frontier:
        round_number += 1
        if counter_limit is not None and round_number > counter_limit:
            # Every message that would be sent this round carries a counter
            # exceeding the limit and is discarded.
            discarded += sum(len(surviving.successors(node)) for node in frontier)
            break
        next_frontier: Set[Node] = set()
        for node in frontier:
            for neighbor in surviving.successors(node):
                messages_sent += 1
                if neighbor not in reached:
                    reached.add(neighbor)
                    next_frontier.add(neighbor)
        if next_frontier:
            rounds_used = round_number
        frontier = next_frontier

    result = BroadcastResult(
        origin=origin,
        reached=reached,
        rounds_used=rounds_used,
        counter_limit=counter_limit,
        messages_sent=messages_sent,
        discarded=discarded,
    )
    result._expected = expected
    return result


def counter_limit_suffices(
    graph: Graph,
    routing: AnyRouting,
    counter_limit: float,
    faults: Iterable[Node] = (),
    index=None,
) -> bool:
    """Decide whether ``counter_limit`` lets every broadcast complete.

    A route-counter broadcast reaches every surviving node from every origin
    iff the counter limit is at least the diameter of the surviving route
    graph — counter limits *are* diameter bounds.  This predicate therefore
    answers the deployment question ("is this limit safe after these
    faults?") through the bounded *decision* path of
    :meth:`~repro.core.route_index.RouteIndex.surviving_diameter_at_most`
    instead of an exact diameter evaluation: each source's BFS is abandoned
    the moment its eccentricity exceeds the limit and the first violating
    source short-circuits the whole check.  An index is built on the fly
    when none is supplied (one pass over the routes — the same cost a single
    exact evaluation would have paid before its BFS even started).
    """
    from repro.core.route_index import RouteIndex
    from repro.core.surviving import _check_index

    if index is None:
        index = RouteIndex(graph, routing)
    else:
        _check_index(graph, routing, index)
    return index.surviving_diameter_at_most(faults, counter_limit)


def broadcast_rounds_from_all(
    graph: Graph,
    routing: AnyRouting,
    faults: Iterable[Node] = (),
    counter_limit: Optional[int] = None,
    index=None,
) -> Dict[Node, int]:
    """Run the broadcast from every surviving node; return rounds used per origin.

    The maximum over all origins is the empirical counterpart of the
    surviving-diameter bound of Section 1.  The surviving route graph is
    built once (through ``index`` when given) and shared by every origin's
    run instead of being rebuilt per origin.
    """
    fault_set = set(faults)
    surviving = surviving_route_graph(graph, routing, fault_set, index=index)
    rounds: Dict[Node, int] = {}
    for node in graph.nodes():
        if node in fault_set:
            continue
        result = _broadcast_on(surviving, graph, node, fault_set, counter_limit)
        rounds[node] = result.rounds_used
    return rounds

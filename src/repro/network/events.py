"""A slotted integer-tick discrete-event engine for the network simulator.

The simulator in :mod:`repro.network.simulator` schedules message hops,
link departures and endpoint-service steps as timestamped events.  Time is
an **integer tick** (the simulator quantises float latencies through its
``resolution``), which buys the engine three structural wins over the old
float-keyed binary heap:

* events landing on the same tick live in one **slot** (a plain list), so
  dispatch pops each distinct tick from a small heap once and then walks
  the slot in insertion order — far fewer heap operations per event when
  traffic bunches up, which is exactly what congestion does;
* ``len(queue)`` is a maintained **live-event counter**, not a heap scan;
* :meth:`cancel` flips a flag and decrements the counter — cancelled
  events are skipped (and never counted) at dispatch, with no heap
  surgery and no O(n) sweeps.

Determinism is unchanged from the old engine: events on one tick fire in
scheduling order, and an event scheduled with zero delay from inside a
callback joins the *currently dispatching* tick batch (cascades complete
within their tick).
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Callable, Dict, List, Optional

from repro.exceptions import SimulationError

EventCallback = Callable[[], None]


@dataclasses.dataclass(slots=True)
class Event:
    """One scheduled callback: fires at ``tick``, ties broken by ``seq``."""

    tick: int
    seq: int
    callback: EventCallback
    kind: str = ""
    cancelled: bool = False
    fired: bool = False

    def __repr__(self) -> str:
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"<Event #{self.seq} {self.kind or 'event'}@{self.tick} {state}>"


class EventQueue:
    """A deterministic slotted discrete-event queue over integer ticks.

    Events scheduled for the same tick fire in scheduling order.  The queue
    keeps the current simulation tick; delays must be non-negative integers
    (scheduling into the past, or with a float delay, raises
    :class:`~repro.exceptions.SimulationError` — callers quantise real
    latencies, see ``NetworkSimulator.resolution``).
    """

    __slots__ = (
        "_slots",
        "_ticks",
        "_now",
        "_live",
        "_processed",
        "_seq",
        "_batch",
        "_batch_tick",
        "_batch_index",
    )

    def __init__(self) -> None:
        #: tick -> events scheduled for that tick, in scheduling order.
        self._slots: Dict[int, List[Event]] = {}
        #: min-heap of distinct pending ticks (each tick pushed exactly once).
        self._ticks: List[int] = []
        self._now = 0
        self._live = 0
        self._processed = 0
        self._seq = 0
        # The slot currently being dispatched (or parked by an early break
        # in :meth:`run`), consumed through a cursor so ``step`` keeps
        # single-event granularity without re-heapifying the remainder.
        self._batch: Optional[List[Event]] = None
        self._batch_tick = 0
        self._batch_index = 0

    @property
    def now(self) -> int:
        """Return the current simulation tick."""
        return self._now

    @property
    def processed(self) -> int:
        """Return the number of events processed so far."""
        return self._processed

    def __len__(self) -> int:
        """Return the number of live (scheduled, not cancelled) events — O(1)."""
        return self._live

    def schedule(self, delay: int, callback: EventCallback, kind: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` ticks from now.

        Returns the scheduled event, which can be passed to :meth:`cancel`.
        """
        if not isinstance(delay, int) or isinstance(delay, bool):
            raise SimulationError(
                f"event delays are integer ticks, got {delay!r}"
            )
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        tick = self._now + delay
        event = Event(tick, self._seq, callback, kind)
        self._seq += 1
        batch = self._batch
        if batch is not None and tick == self._batch_tick:
            # The slot for this tick is already out of the heap (it is the
            # one being dispatched, or parked by run(until=)); append so
            # zero-delay cascades fire within the current tick batch.
            batch.append(event)
        else:
            slot = self._slots.get(tick)
            if slot is None:
                self._slots[tick] = [event]
                heapq.heappush(self._ticks, tick)
            else:
                slot.append(event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if it already fired or was cancelled)."""
        if event.fired or event.cancelled:
            return
        event.cancelled = True
        self._live -= 1

    def _advance(self) -> bool:
        """Position the cursor on the next live event; ``False`` when drained.

        Cancelled events are skipped (they were already uncounted by
        :meth:`cancel`).  A parked batch yields to any earlier tick that
        was scheduled while it sat waiting — its remainder is re-shelved,
        preserving in-tick order.
        """
        while True:
            batch = self._batch
            if batch is not None:
                index = self._batch_index
                while index < len(batch) and batch[index].cancelled:
                    index += 1
                if index < len(batch):
                    self._batch_index = index
                    if self._ticks and self._ticks[0] < self._batch_tick:
                        # An earlier tick appeared while this batch was
                        # parked (only possible between run()/step() calls).
                        self._slots[self._batch_tick] = batch[index:]
                        heapq.heappush(self._ticks, self._batch_tick)
                        self._batch = None
                        continue
                    return True
                self._batch = None
            if not self._ticks:
                return False
            tick = heapq.heappop(self._ticks)
            self._batch = self._slots.pop(tick)
            self._batch_tick = tick
            self._batch_index = 0

    def _fire(self) -> None:
        event = self._batch[self._batch_index]  # type: ignore[index]
        self._batch_index += 1
        self._now = event.tick
        event.fired = True
        self._live -= 1
        self._processed += 1
        event.callback()

    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if the queue is empty."""
        if not self._advance():
            return False
        self._fire()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is passed, or the cap hits.

        ``until`` is inclusive: events scheduled exactly at that tick still
        fire.  Cancelled events never count against ``max_events``.
        Returns the number of events processed by this call.
        """
        processed = 0
        while self._advance():
            if until is not None and self._batch_tick > until:
                break
            if max_events is not None and processed >= max_events:
                break
            self._fire()
            processed += 1
        return processed

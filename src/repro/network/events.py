"""A minimal discrete-event engine for the network simulator.

The simulator in :mod:`repro.network.simulator` schedules message hops and
protocol steps as timestamped events.  The engine here is intentionally tiny:
an event is a callback plus a firing time, the queue is a binary heap, and
ties are broken by insertion order so runs are fully deterministic.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from typing import Any, Callable, List, Optional

from repro.exceptions import SimulationError

EventCallback = Callable[[], None]


@dataclasses.dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry; ordering is (time, sequence number)."""

    time: float
    sequence: int
    callback: EventCallback = dataclasses.field(compare=False)
    label: str = dataclasses.field(compare=False, default="")
    cancelled: bool = dataclasses.field(compare=False, default=False)


class EventQueue:
    """A deterministic discrete-event queue.

    Events scheduled for the same time fire in scheduling order.  The queue
    keeps track of the current simulation time; scheduling an event in the
    past raises :class:`~repro.exceptions.SimulationError`.
    """

    def __init__(self) -> None:
        self._heap: List[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Return the current simulation time."""
        return self._now

    @property
    def processed(self) -> int:
        """Return the number of events processed so far."""
        return self._processed

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule(
        self, delay: float, callback: EventCallback, label: str = ""
    ) -> _ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns the scheduled event, which can be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        event = _ScheduledEvent(
            time=self._now + delay,
            sequence=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (no-op if it already fired)."""
        event.cancelled = True

    def step(self) -> bool:
        """Fire the next pending event.  Returns ``False`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or the cap hits.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and processed >= max_events:
                break
            self.step()
            processed += 1
        return processed

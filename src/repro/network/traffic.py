"""Traffic workloads over routings: load, congestion and latency metrics.

The campaign layers measure *structure* (surviving diameters); this module
measures *behaviour*: what throughput, queueing latency and drop rate a
constructed routing actually sustains when a workload of messages flows
over it — optionally through capacity-limited links and under a timed
fault schedule that fails and repairs nodes mid-run.

Three workload generators cover the usual traffic shapes:

* ``uniform`` — message pairs drawn uniformly at random, injection times
  uniform over a window (the baseline load of the paper's model);
* ``hotspot`` — a fraction of the traffic converges on a small set of hot
  destinations (the concentrator-stress case);
* ``gossip`` — synchronous rounds in which **every** node sends to a
  random peer, à la the uniform-gossip model (a broadcast-storm burst per
  round).

Workloads are pure functions of ``(spec, node list, seed)``: the RNG is
seeded from the canonical workload string, never from object identity or
hash randomisation, so the same seed reproduces byte-identical result rows
across processes and ``PYTHONHASHSEED`` values.

:func:`run_traffic` drives one workload through the event-driven
:class:`~repro.network.simulator.NetworkSimulator` and folds the receipts
into a :class:`TrafficResult` — a thin view over the unified result-record
schema (``kind="traffic"``), so traffic rows persist through the ordinary
:class:`~repro.results.store.ResultStore` and render through
``repro report``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.network.links import LinkSpec
from repro.network.messages import DeliveryReceipt
from repro.network.services import EndpointService
from repro.network.simulator import DEFAULT_RESOLUTION, NetworkSimulator

Node = Hashable

#: Workload generator kinds understood by :class:`Workload`.
WORKLOAD_KINDS = ("uniform", "hotspot", "gossip")

#: Actions a timed fault event may take.
FAULT_ACTIONS = ("fail", "repair")


@dataclasses.dataclass(frozen=True)
class Workload:
    """One traffic workload spec (deterministic given a seed).

    ``messages`` / ``duration`` shape ``uniform`` and ``hotspot`` loads
    (how many injections, over how many ticks); ``rounds`` / ``interval``
    shape ``gossip`` (every node sends once per round, rounds spaced
    ``interval`` ticks apart — ``messages`` and ``duration`` are derived).
    """

    kind: str = "uniform"
    messages: int = 200
    duration: int = 100
    hotspots: int = 1
    hot_fraction: float = 0.8
    rounds: int = 4
    interval: int = 10

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(
                f"unknown workload kind {self.kind!r}; expected one of {WORKLOAD_KINDS}"
            )
        if self.messages < 1:
            raise ValueError("workload needs at least one message")
        if self.duration < 1:
            raise ValueError("workload duration must be at least one tick")
        if self.hotspots < 1:
            raise ValueError("hotspot workloads need at least one hot node")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must lie in [0, 1]")
        if self.rounds < 1:
            raise ValueError("gossip workloads need at least one round")
        if self.interval < 1:
            raise ValueError("gossip round interval must be at least one tick")

    def canonical(self) -> str:
        """Render the workload compactly (seeds the generator RNG)."""
        if self.kind == "gossip":
            return f"gossip:rounds={self.rounds},interval={self.interval}"
        if self.kind == "hotspot":
            return (
                f"hotspot:messages={self.messages},duration={self.duration},"
                f"hotspots={self.hotspots},hot_fraction={format(self.hot_fraction, 'g')}"
            )
        return f"uniform:messages={self.messages},duration={self.duration}"

    def injections(
        self, nodes: Sequence[Node], seed: int
    ) -> List[Tuple[int, Node, Node]]:
        """Return the ``(tick, origin, destination)`` injection list.

        Deterministic across processes: the RNG is seeded from the
        canonical workload string and ``seed`` (string seeding hashes via
        SHA-512, independent of ``PYTHONHASHSEED``), and nodes are drawn
        from the caller's ordered node list.
        """
        if len(nodes) < 2:
            raise ValueError("traffic needs at least two nodes")
        rng = random.Random(f"{self.canonical()}|seed={seed}")
        out: List[Tuple[int, Node, Node]] = []
        if self.kind == "gossip":
            for round_index in range(self.rounds):
                tick = round_index * self.interval
                for node in nodes:
                    peer = rng.choice(nodes)
                    while peer == node:
                        peer = rng.choice(nodes)
                    out.append((tick, node, peer))
            return out
        if self.kind == "hotspot":
            hot = rng.sample(list(nodes), min(self.hotspots, len(nodes)))
            for _ in range(self.messages):
                if rng.random() < self.hot_fraction:
                    destination = rng.choice(hot)
                else:
                    destination = rng.choice(nodes)
                origin = rng.choice(nodes)
                while origin == destination:
                    origin = rng.choice(nodes)
                out.append((rng.randrange(self.duration), origin, destination))
            return out
        for _ in range(self.messages):
            origin, destination = rng.sample(list(nodes), 2)
            out.append((rng.randrange(self.duration), origin, destination))
        return out


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One timed fault action: fail or repair ``node`` at ``tick``.

    At its tick the action applies *before* any message event on the same
    tick (fault events are scheduled ahead of the workload), so a message
    arriving at a node the very tick it fails is dropped.
    """

    tick: int
    action: str
    node: Node

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ValueError("fault events cannot be scheduled in the past")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}"
            )

    def canonical(self) -> str:
        return f"{self.action}@{self.tick}:{self.node!r}"


@dataclasses.dataclass
class TrafficResult:
    """Aggregate metrics of one traffic run (a ``kind="traffic"`` record).

    ``duration`` is the observed makespan in ticks (last event processed);
    latencies are in time units (``ticks / resolution``); ``throughput``
    is delivered messages per time unit.  ``receipts`` carries the
    per-message outcomes for callers that want them — it is not part of
    the persisted record.
    """

    scenario: Optional[str]
    family: Optional[str]
    strategy: Optional[str]
    scheme: Optional[str]
    nodes: Optional[int]
    edges: Optional[int]
    t: Optional[int]
    fingerprint: Optional[str]
    workload: str
    duration: int
    injected: int
    delivered: int
    dropped: int
    throughput: float
    mean_latency: Optional[float]
    p99_latency: Optional[float]
    drop_rate: float
    max_queue_depth: int
    receipts: Optional[List[DeliveryReceipt]] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def as_row(self) -> Dict[str, object]:
        """Return a flat dict for table rendering."""
        return {
            "scenario": self.scenario,
            "workload": self.workload,
            "injected": self.injected,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "drop_rate": round(self.drop_rate, 4),
            "throughput": round(self.throughput, 3),
            "mean_latency": (
                round(self.mean_latency, 3) if self.mean_latency is not None else "-"
            ),
            "p99_latency": (
                round(self.p99_latency, 3) if self.p99_latency is not None else "-"
            ),
            "max_queue_depth": self.max_queue_depth,
        }

    def record(self) -> Dict[str, object]:
        """Return the unified result record for this run."""
        return {
            "source": "traffic",
            "kind": "traffic",
            "scenario": self.scenario,
            "family": self.family,
            "strategy": self.strategy,
            "scheme": self.scheme,
            "n": self.nodes,
            "m": self.edges,
            "t": self.t,
            "fingerprint": self.fingerprint,
            "workload": self.workload,
            "duration": self.duration,
            "injected": self.injected,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "throughput": self.throughput,
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "drop_rate": self.drop_rate,
            "max_queue_depth": self.max_queue_depth,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "TrafficResult":
        """Rebuild the result view from a stored record."""
        return cls(
            scenario=record.get("scenario"),
            family=record.get("family"),
            strategy=record.get("strategy"),
            scheme=record.get("scheme"),
            nodes=record.get("n"),
            edges=record.get("m"),
            t=record.get("t"),
            fingerprint=record.get("fingerprint"),
            workload=record["workload"],
            duration=record["duration"],
            injected=record["injected"],
            delivered=record["delivered"],
            dropped=record["dropped"],
            throughput=record["throughput"],
            mean_latency=record.get("mean_latency"),
            p99_latency=record.get("p99_latency"),
            drop_rate=record["drop_rate"],
            max_queue_depth=record["max_queue_depth"],
        )


def percentile_nearest_rank(sorted_values: Sequence[int], fraction: float) -> int:
    """Return the nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        raise ValueError("cannot take a percentile of no values")
    rank = max(1, -(-len(sorted_values) * fraction // 1))
    return sorted_values[int(rank) - 1]


def run_traffic(
    graph,
    routing,
    workload: Workload,
    *,
    seed: int = 0,
    service: Optional[EndpointService] = None,
    hop_latency: float = 0.1,
    resolution: int = DEFAULT_RESOLUTION,
    link: Optional[LinkSpec] = None,
    faults: Sequence[FaultEvent] = (),
    scenario: Optional[str] = None,
    family: Optional[str] = None,
    strategy: Optional[str] = None,
    scheme: Optional[str] = None,
    t: Optional[int] = None,
    fingerprint: Optional[str] = None,
) -> TrafficResult:
    """Run one workload over a routing and return its aggregate metrics.

    Fault events are scheduled ahead of the workload so a fail/repair at
    tick ``T`` applies before any message event on ``T``; every message is
    planned against the fault set at its own start tick.  The run is a
    deterministic function of all arguments — receipts, engine event
    counts and the returned record are identical across processes.
    """
    simulator = NetworkSimulator(
        graph,
        routing,
        service=service,
        hop_latency=hop_latency,
        resolution=resolution,
        link=link,
    )
    node_list = list(graph.nodes())
    unknown = [fault.node for fault in faults if fault.node not in simulator.nodes]
    if unknown:
        raise SimulationError(f"fault schedule names unknown nodes: {unknown!r}")
    for fault in faults:
        action = (
            simulator.fail_node if fault.action == "fail" else simulator.repair_node
        )
        simulator.events.schedule(
            fault.tick, lambda act=action, node=fault.node: act(node), kind="fault"
        )
    receipts: List[DeliveryReceipt] = []
    injections = workload.injections(node_list, seed)
    for tick, origin, destination in injections:
        simulator.inject(
            origin, destination, payload=len(receipts), delay=tick,
            on_complete=receipts.append,
        )
    simulator.events.run()

    injected = len(injections)
    delivered = [receipt for receipt in receipts if receipt.delivered]
    dropped = injected - len(delivered)
    latencies = sorted(receipt.latency_ticks for receipt in delivered)
    makespan = simulator.events.now
    if delivered:
        mean_latency = (sum(latencies) / len(latencies)) / resolution
        p99_latency = percentile_nearest_rank(latencies, 0.99) / resolution
    else:
        mean_latency = None
        p99_latency = None
    elapsed = makespan / resolution
    throughput = len(delivered) / elapsed if elapsed > 0 else float(len(delivered))
    return TrafficResult(
        scenario=scenario,
        family=family,
        strategy=strategy,
        scheme=scheme,
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        t=t,
        fingerprint=fingerprint,
        workload=workload.canonical(),
        duration=makespan,
        injected=injected,
        delivered=len(delivered),
        dropped=dropped,
        throughput=throughput,
        mean_latency=mean_latency,
        p99_latency=p99_latency,
        drop_rate=dropped / injected if injected else 0.0,
        max_queue_depth=simulator.max_queue_depth(),
        receipts=receipts,
    )


def traffic_manifest(
    scenarios: Sequence[str],
    workload: Workload,
    seed: int,
    hop_latency: float,
    resolution: int,
    link: Optional[LinkSpec],
    service: str,
    faults: Sequence[object] = (),
) -> Dict[str, object]:
    """Return the result-store run manifest for a traffic invocation.

    Two invocations produce the same rows iff they share this manifest —
    the same determinism contract the scenario suites use.  ``faults``
    entries may be :class:`FaultEvent` instances or raw schedule strings.
    """
    return {
        "experiment": "traffic",
        "scenarios": list(scenarios),
        "workload": workload.canonical(),
        "seed": seed,
        "hop_latency": hop_latency,
        "resolution": resolution,
        "link": link.describe() if link is not None else "null",
        "service": service,
        "faults": [
            fault.canonical() if isinstance(fault, FaultEvent) else str(fault)
            for fault in faults
        ],
    }

"""Message model for the fixed-route network simulator.

The paper's system model attaches the precomputed route to every message so
intermediate nodes can forward it without computing a next hop, and all
"interesting" processing (encryption, error-correction, re-routing decisions)
happens at route *endpoints*.  :class:`Message` captures exactly that: a
payload, the attached source route, a hop pointer within the route, and the
route counter used by the broadcast protocol of Section 1.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Hashable, List, Optional, Sequence, Tuple

Node = Hashable

_message_ids = itertools.count(1)


@dataclasses.dataclass
class Message:
    """A message travelling along a fixed, precomputed route.

    Attributes
    ----------
    source, destination:
        Endpoints of the *current route segment* (not necessarily the original
        sender / final recipient: delivery across a faulty network traverses a
        sequence of routes, each with its own endpoints).
    origin, final_destination:
        The original sender and the ultimate recipient.
    payload:
        Application data (opaque to the network; endpoint services may
        transform it, e.g. encrypt / append checksums).
    route:
        The attached source route — the exact node sequence the message must
        follow for the current segment.
    hop_index:
        Position within ``route`` (0 = at the segment source).
    route_counter:
        Number of routes traversed so far; the broadcast protocol discards
        messages whose counter exceeds the diameter bound.
    trace:
        Every node the message has visited, across all segments (diagnostics).
    injected_tick, finished_tick:
        Engine ticks at which the delivery started / completed (``None``
        until the event-driven simulator processes the message); their
        difference is the receipt's exact ``latency_ticks``.
    """

    origin: Node
    final_destination: Node
    payload: Any
    source: Node = None
    destination: Node = None
    route: Tuple[Node, ...] = ()
    hop_index: int = 0
    route_counter: int = 0
    message_id: int = dataclasses.field(default_factory=lambda: next(_message_ids))
    trace: List[Node] = dataclasses.field(default_factory=list)
    injected_tick: Optional[int] = None
    finished_tick: Optional[int] = None

    def attach_route(self, route: Sequence[Node]) -> None:
        """Attach a new source route and reset the hop pointer.

        Incrementing ``route_counter`` here mirrors the paper's broadcast
        protocol: the counter goes up once per route traversed.
        """
        self.route = tuple(route)
        self.source = self.route[0]
        self.destination = self.route[-1]
        self.hop_index = 0
        self.route_counter += 1

    @property
    def current_node(self) -> Node:
        """Return the node currently holding the message."""
        if not self.route:
            return self.origin
        return self.route[self.hop_index]

    @property
    def next_node(self) -> Optional[Node]:
        """Return the next node on the attached route, or ``None`` at the end."""
        if not self.route or self.hop_index + 1 >= len(self.route):
            return None
        return self.route[self.hop_index + 1]

    @property
    def at_segment_end(self) -> bool:
        """Return ``True`` when the message sits at the end of its current route."""
        return bool(self.route) and self.hop_index == len(self.route) - 1

    def advance(self) -> Node:
        """Move one hop along the attached route and return the new position."""
        if self.next_node is None:
            raise ValueError("message is already at the end of its route")
        self.hop_index += 1
        node = self.route[self.hop_index]
        self.trace.append(node)
        return node

    def __repr__(self) -> str:
        return (
            f"<Message #{self.message_id} {self.origin!r}->{self.final_destination!r} "
            f"segment={self.source!r}->{self.destination!r} "
            f"hops={len(self.trace)} routes={self.route_counter}>"
        )


@dataclasses.dataclass
class DeliveryReceipt:
    """Summary of a completed (or failed) end-to-end delivery.

    ``latency`` is simulated time units (``latency_ticks / resolution``);
    ``latency_ticks`` is the exact integer the event engine measured for
    *this message* — failure receipts report the ticks the message itself
    consumed, never the global clock drift of unrelated pending events.
    """

    message: Message
    delivered: bool
    routes_used: int
    hops: int
    latency: float
    failure_reason: str = ""
    latency_ticks: Optional[int] = None

    def __repr__(self) -> str:
        status = "delivered" if self.delivered else f"FAILED ({self.failure_reason})"
        return (
            f"<DeliveryReceipt #{self.message.message_id} {status} "
            f"routes={self.routes_used} hops={self.hops} latency={self.latency}>"
        )

"""Endpoint services: the per-route processing that motivates the model.

The paper's introduction motivates counting *route traversals* (rather than
hops) by systems that perform expensive processing at the endpoints of every
route — the examples given are automatic encryption/decryption and
error-correction analysis at the destination of every message.  The services
here are deliberately toy versions of those two examples (a keyed XOR cipher
and an appended checksum), implemented just realistically enough that the
simulator can demonstrate (and the tests can verify) the endpoint-processing
semantics: a payload is transformed once per route segment, not once per hop.
"""

from __future__ import annotations

import hashlib
from typing import Any, Hashable, Tuple

Node = Hashable


class EndpointService:
    """Base class for per-route endpoint processing.

    ``on_send`` runs at the source endpoint of a route segment and returns the
    payload to put on the wire; ``on_receive`` runs at the destination
    endpoint and returns the recovered payload.  Both default to pass-through.
    The ``cost`` attribute is the simulated processing latency charged at each
    endpoint (this is the dominant term in the paper's transmission-time
    model).
    """

    #: Simulated processing latency per endpoint invocation.
    cost: float = 1.0

    def on_send(self, payload: Any, source: Node, destination: Node) -> Any:
        """Transform the payload before it leaves the route's source."""
        return payload

    def on_receive(self, payload: Any, source: Node, destination: Node) -> Any:
        """Transform the payload at the route's destination."""
        return payload


class NullService(EndpointService):
    """No endpoint processing (zero cost); useful as a baseline."""

    cost = 0.0


class XorEncryptionService(EndpointService):
    """A keyed XOR "cipher" applied per route segment.

    Real systems would use real cryptography; what matters for the model is
    that encryption happens once per route traversal, so the number of routes
    traversed — the surviving graph distance — governs the total processing
    cost.
    """

    cost = 2.0

    def __init__(self, key: bytes = b"peleg-simons-1986") -> None:
        if not key:
            raise ValueError("encryption key must be non-empty")
        self.key = key

    def _xor(self, data: bytes) -> bytes:
        key = self.key
        return bytes(byte ^ key[index % len(key)] for index, byte in enumerate(data))

    def on_send(self, payload: Any, source: Node, destination: Node) -> Any:
        data = payload if isinstance(payload, bytes) else str(payload).encode("utf-8")
        return {"ciphertext": self._xor(data), "encoding": "bytes" if isinstance(payload, bytes) else "str"}

    def on_receive(self, payload: Any, source: Node, destination: Node) -> Any:
        if not isinstance(payload, dict) or "ciphertext" not in payload:
            return payload
        plain = self._xor(payload["ciphertext"])
        return plain if payload.get("encoding") == "bytes" else plain.decode("utf-8")


class ChecksumService(EndpointService):
    """Error-detection analysis at the destination of every route segment.

    The source appends a SHA-256 digest of the payload; the destination
    recomputes and compares it, raising ``ValueError`` on mismatch (corruption
    in transit would be a node fault in this model, so in practice the check
    always passes — the point is the per-route endpoint cost).
    """

    cost = 1.5

    @staticmethod
    def _digest(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    def on_send(self, payload: Any, source: Node, destination: Node) -> Any:
        data = payload if isinstance(payload, bytes) else str(payload).encode("utf-8")
        return {
            "data": payload,
            "checksum": self._digest(data),
        }

    def on_receive(self, payload: Any, source: Node, destination: Node) -> Any:
        if not isinstance(payload, dict) or "checksum" not in payload:
            return payload
        original = payload["data"]
        data = original if isinstance(original, bytes) else str(original).encode("utf-8")
        if self._digest(data) != payload["checksum"]:
            raise ValueError(
                f"checksum mismatch on route segment {source!r} -> {destination!r}"
            )
        return original


class StackedService(EndpointService):
    """Compose several endpoint services (applied in order on send, reversed on receive)."""

    def __init__(self, *services: EndpointService) -> None:
        if not services:
            raise ValueError("at least one service is required")
        self.services = list(services)
        self.cost = sum(service.cost for service in self.services)

    def on_send(self, payload: Any, source: Node, destination: Node) -> Any:
        for service in self.services:
            payload = service.on_send(payload, source, destination)
        return payload

    def on_receive(self, payload: Any, source: Node, destination: Node) -> Any:
        for service in reversed(self.services):
            payload = service.on_receive(payload, source, destination)
        return payload

"""Discrete-event network simulator running the fixed routings under faults."""

from repro.network.events import EventQueue
from repro.network.messages import DeliveryReceipt, Message
from repro.network.node import NetworkNode, NodeStats
from repro.network.services import (
    ChecksumService,
    EndpointService,
    NullService,
    StackedService,
    XorEncryptionService,
)
from repro.network.simulator import NetworkSimulator, SimulatorStats
from repro.network.broadcast import (
    BroadcastResult,
    broadcast_rounds_from_all,
    counter_limit_suffices,
    route_counter_broadcast,
)

__all__ = [
    "EventQueue",
    "DeliveryReceipt",
    "Message",
    "NetworkNode",
    "NodeStats",
    "ChecksumService",
    "EndpointService",
    "NullService",
    "StackedService",
    "XorEncryptionService",
    "NetworkSimulator",
    "SimulatorStats",
    "BroadcastResult",
    "broadcast_rounds_from_all",
    "counter_limit_suffices",
    "route_counter_broadcast",
]

"""Discrete-event network simulator running the fixed routings under faults."""

from repro.network.events import Event, EventQueue
from repro.network.links import Link, LinkSpec, LinkStats
from repro.network.messages import DeliveryReceipt, Message
from repro.network.node import NetworkNode, NodeStats
from repro.network.services import (
    ChecksumService,
    EndpointService,
    NullService,
    StackedService,
    XorEncryptionService,
)
from repro.network.simulator import (
    DEFAULT_RESOLUTION,
    NetworkSimulator,
    SimulatorStats,
)
from repro.network.traffic import (
    FAULT_ACTIONS,
    WORKLOAD_KINDS,
    FaultEvent,
    TrafficResult,
    Workload,
    run_traffic,
    traffic_manifest,
)
from repro.network.broadcast import (
    BroadcastResult,
    broadcast_rounds_from_all,
    counter_limit_suffices,
    route_counter_broadcast,
)

__all__ = [
    "Event",
    "EventQueue",
    "Link",
    "LinkSpec",
    "LinkStats",
    "DeliveryReceipt",
    "Message",
    "NetworkNode",
    "NodeStats",
    "ChecksumService",
    "EndpointService",
    "NullService",
    "StackedService",
    "XorEncryptionService",
    "DEFAULT_RESOLUTION",
    "NetworkSimulator",
    "SimulatorStats",
    "FAULT_ACTIONS",
    "WORKLOAD_KINDS",
    "FaultEvent",
    "TrafficResult",
    "Workload",
    "run_traffic",
    "traffic_manifest",
    "BroadcastResult",
    "broadcast_rounds_from_all",
    "counter_limit_suffices",
    "route_counter_broadcast",
]

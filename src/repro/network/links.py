"""The link/flow layer: capacity, bounded FIFO buffers, queueing, drops.

The paper's cost model charges a message one ``hop_latency`` per link
traversal — implicitly assuming every link can carry unlimited traffic at
once.  Real traffic queues.  A :class:`Link` models one **directed edge** of
the network as a FIFO transmission queue:

* ``capacity`` messages may *depart* per tick (the link's serialisation
  rate); further arrivals wait in the queue and pick up queueing delay;
* the queue holds at most ``buffer`` waiting messages — an arrival that
  finds it full is **dropped** (counted, and surfaced as a failed
  delivery);
* a departed message still takes ``latency`` ticks of propagation before it
  arrives at the far end.

``capacity=None`` (the default) is the **null model**: no serialisation, no
queueing, no drops — every message departs the instant it arrives, so the
simulator reproduces the legacy per-hop loop's receipts exactly.  That
equivalence is pinned by the hypothesis parity suite in
``tests/network/test_legacy_parity.py``.

Reservation is O(1) amortised per message: the link keeps a slot cursor
``(tick, used)`` that only moves forward (simulation time is monotone), and
a deque of pending departure ticks whose head expires as time passes.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Hashable, Optional

Node = Hashable


@dataclasses.dataclass(frozen=True)
class LinkSpec:
    """Configuration shared by every link of a simulated network.

    Parameters
    ----------
    latency:
        Propagation delay in ticks per traversal; ``None`` (default) means
        "use the simulator's quantised ``hop_latency``".
    capacity:
        Messages that may depart per tick; ``None`` disables serialisation
        entirely (the null model — no queueing, no drops).
    buffer:
        Maximum queued messages (including those in transmission slots);
        ``None`` means unbounded.  Only meaningful with a capacity.
    """

    latency: Optional[int] = None
    capacity: Optional[int] = None
    buffer: Optional[int] = None

    def __post_init__(self) -> None:
        if self.latency is not None and (
            not isinstance(self.latency, int) or self.latency < 0
        ):
            raise ValueError(f"link latency must be a non-negative int, got {self.latency!r}")
        if self.capacity is not None and (
            not isinstance(self.capacity, int) or self.capacity < 1
        ):
            raise ValueError(f"link capacity must be a positive int, got {self.capacity!r}")
        if self.buffer is not None and (
            not isinstance(self.buffer, int) or self.buffer < 0
        ):
            raise ValueError(f"link buffer must be a non-negative int, got {self.buffer!r}")
        if self.capacity is None and self.buffer is not None:
            raise ValueError("a link buffer bound needs a capacity (else nothing queues)")

    def describe(self) -> str:
        """Render the spec compactly for manifests and reports."""
        if self.capacity is None:
            return "null"
        parts = [f"capacity={self.capacity}"]
        if self.buffer is not None:
            parts.append(f"buffer={self.buffer}")
        if self.latency is not None:
            parts.append(f"latency={self.latency}")
        return ",".join(parts)


@dataclasses.dataclass
class LinkStats:
    """Per-link counters collected during a run."""

    entered: int = 0
    dropped: int = 0
    max_queue_depth: int = 0
    queue_wait_ticks: int = 0


class Link:
    """One directed edge's transmission queue (see the module docstring)."""

    __slots__ = (
        "source",
        "target",
        "latency",
        "capacity",
        "buffer",
        "stats",
        "_slot_tick",
        "_slot_used",
        "_departures",
    )

    def __init__(
        self,
        source: Node,
        target: Node,
        latency: int,
        capacity: Optional[int] = None,
        buffer: Optional[int] = None,
    ) -> None:
        self.source = source
        self.target = target
        self.latency = latency
        self.capacity = capacity
        self.buffer = buffer
        self.stats = LinkStats()
        self._slot_tick = -1
        self._slot_used = 0
        #: Departure ticks of queued messages, oldest first (monotone).
        self._departures: Deque[int] = collections.deque()

    def queue_depth(self, now: int) -> int:
        """Return the number of messages queued (not yet departed) at ``now``."""
        departures = self._departures
        while departures and departures[0] < now:
            departures.popleft()
        return len(departures)

    def reserve(self, now: int) -> Optional[int]:
        """Reserve a departure slot for a message entering the link at ``now``.

        Returns the departure tick (``>= now``), or ``None`` when the
        bounded buffer is full and the message is dropped.  Simulation time
        is monotone, so ``now`` never decreases across calls.
        """
        stats = self.stats
        if self.capacity is None:
            stats.entered += 1
            return now
        depth = self.queue_depth(now)
        if self.buffer is not None and depth >= self.buffer:
            stats.dropped += 1
            return None
        if now > self._slot_tick:
            self._slot_tick = now
            self._slot_used = 0
        while self._slot_used >= self.capacity:
            self._slot_tick += 1
            self._slot_used = 0
        self._slot_used += 1
        depart = self._slot_tick
        self._departures.append(depart)
        stats.entered += 1
        depth += 1
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        stats.queue_wait_ticks += depart - now
        return depart

    def __repr__(self) -> str:
        shape = "null" if self.capacity is None else (
            f"capacity={self.capacity} buffer={self.buffer}"
        )
        return (
            f"<Link {self.source!r}->{self.target!r} latency={self.latency} {shape} "
            f"entered={self.stats.entered} dropped={self.stats.dropped}>"
        )

"""Scenario subsystem: named, parameterised, seedable workload specs.

A *scenario* names a complete workload — graph family, routing strategy,
fault parameter and fault model — as one canonical string
(``hypercube:d=7/kernel/t=3/random:p=0.1``) that every layer consumes: the
CLI, the suite runner, campaign worker processes and benchmark JSON all
speak the same form, and the deterministic construction pipeline guarantees
that any process rebuilding a scenario from its string obtains bit-for-bit
the same routing (verified by fingerprint).
"""

from repro.scenarios.spec import (
    DEFAULT_FAULT_MODEL,
    FAULT_KINDS,
    FaultModel,
    Range,
    Scenario,
    ScenarioGrid,
    as_scenarios,
    expand_grids,
    parse_grid,
    parse_scenario,
)
from repro.scenarios.suite import (
    ScenarioRow,
    campaign_row_keys,
    run_scenario_suite,
    suite_manifest,
    suite_row_keys,
)

__all__ = [
    "DEFAULT_FAULT_MODEL",
    "FAULT_KINDS",
    "FaultModel",
    "Range",
    "Scenario",
    "ScenarioGrid",
    "ScenarioRow",
    "as_scenarios",
    "campaign_row_keys",
    "expand_grids",
    "parse_grid",
    "parse_scenario",
    "run_scenario_suite",
    "suite_manifest",
    "suite_row_keys",
]

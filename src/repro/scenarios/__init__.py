"""Scenario subsystem: named, parameterised, seedable workload specs.

A *scenario* names a complete workload — graph family, routing strategy,
fault parameter and fault model — as one canonical string
(``hypercube:d=7/kernel/t=3/random:p=0.1``) that every layer consumes: the
CLI, the suite runner, campaign worker processes and benchmark JSON all
speak the same form, and the deterministic construction pipeline guarantees
that any process rebuilding a scenario from its string obtains bit-for-bit
the same routing (verified by fingerprint).
"""

from repro.scenarios.spec import (
    DEFAULT_FAULT_MODEL,
    FAULT_KINDS,
    FaultModel,
    Scenario,
    as_scenarios,
    parse_scenario,
)
from repro.scenarios.suite import ScenarioRow, run_scenario_suite

__all__ = [
    "DEFAULT_FAULT_MODEL",
    "FAULT_KINDS",
    "FaultModel",
    "Scenario",
    "ScenarioRow",
    "as_scenarios",
    "parse_scenario",
    "run_scenario_suite",
]

"""Scenario-suite runner: sharded campaigns across whole workload families.

:func:`run_scenario_suite` turns a list of scenarios (canonical strings or
:class:`~repro.scenarios.spec.Scenario` values) into campaign rows — one row
per scenario and fault-set size — evaluating every battery through the
bitset kernel of :class:`~repro.core.route_index.RouteIndex`.

Sharding happens **across scenarios as well as within batteries**: the suite
is flattened into a deterministic list of shard tasks (scenario spec +
battery slice descriptor) and a single process pool drains all of them, so a
suite of many small scenarios parallelises exactly as well as one giant
battery.  Three design rules keep the rows byte-identical for any worker
count and any ``PYTHONHASHSEED``:

1. tasks are a pure function of the scenario list, ``samples``, ``seed`` and
   ``chunk_size`` — never of the worker count — and results are folded in
   task order;
2. workers receive only the canonical scenario string and a tiny shard
   descriptor: they rebuild the graph, routing and index locally (the
   construction pipeline is bit-for-bit deterministic) and regenerate their
   battery slice from per-shard SHA-256 seeds;
3. every worker reports the fingerprint of the routing it rebuilt, and the
   parent verifies it against its own construction — a corrupted or
   nondeterministic rebuild fails loudly instead of silently skewing rows.

With ``bound`` given the suite runs *bounded-decision* campaigns: fault sets
are evaluated with an eccentricity cap (``surviving_diameter_at_most``
semantics) and rows report pass/fail statistics instead of exact diameters
— the cheap path for paper-style "does the guarantee hold at scale" tables.
"""

from __future__ import annotations

import dataclasses
import math
import random as _random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.construction import ConstructionResult
from repro.core.route_index import RouteIndex
from repro.faults.engine import DEFAULT_CHUNK_SIZE, _combinations_slice, shard_seed
from repro.faults.models import FaultSet
from repro.faults.simulation import (
    CampaignResult,
    DecisionCampaignResult,
    aggregate_decisions,
    aggregate_outcomes,
)
from repro.scenarios.spec import Scenario, as_scenarios

CampaignRow = Union[CampaignResult, DecisionCampaignResult]


@dataclasses.dataclass(frozen=True)
class _SuiteTask:
    """One worker-sized unit: a battery slice of one scenario campaign.

    ``campaign_key`` identifies the row the outcomes fold into (scenario
    position, campaign position); shards of one campaign are numbered by
    ``shard_index`` and generated locally by whichever process runs them.
    ``mode`` selects the generator: ``"random"`` (uniform sets of
    ``fault_size``), ``"random-p"`` (binomial per-node failures with
    probability ``p``) or ``"exhaustive"`` (combinations offsets
    ``start .. start + count`` at ``fault_size``).
    """

    spec: str
    campaign_key: Tuple[int, int]
    mode: str
    fault_size: int = 0
    p: float = 0.0
    count: int = 0
    start: int = 0
    seed: int = 0
    bound: Optional[float] = None

    def materialise(self, pool: Sequence) -> Tuple[FaultSet, ...]:
        """Regenerate this task's fault sets from the canonical node pool."""
        if self.mode == "exhaustive":
            return tuple(
                FaultSet(combo, description=f"exhaustive size {self.fault_size}")
                for combo in _combinations_slice(
                    pool, self.fault_size, self.start, self.count
                )
            )
        rng = _random.Random(self.seed)
        if self.mode == "random-p":
            sets = []
            for offset in range(self.count):
                failed = [node for node in pool if rng.random() < self.p]
                sets.append(
                    FaultSet(
                        failed, description=f"random p={self.p} #{self.start + offset}"
                    )
                )
            return tuple(sets)
        if self.fault_size > len(pool):
            return ()
        return tuple(
            FaultSet(
                rng.sample(pool, self.fault_size),
                description=f"random #{self.start + offset}",
            )
            for offset in range(self.count)
        )


@dataclasses.dataclass
class ScenarioRow:
    """One suite row: a scenario, its construction metadata, and a campaign."""

    scenario: str
    scheme: str
    nodes: int
    edges: int
    t: int
    fingerprint: str
    campaign: CampaignRow

    def as_row(self) -> Dict[str, object]:
        """Return a flat dict for table rendering / JSON persistence."""
        row: Dict[str, object] = {
            "scenario": self.scenario,
            "scheme": self.scheme,
            "n": self.nodes,
            "m": self.edges,
            "t": self.t,
        }
        row.update(self.campaign.as_row())
        row["fingerprint"] = self.fingerprint[:12]
        return row


# ----------------------------------------------------------------------
# Worker-side scenario cache
# ----------------------------------------------------------------------
# Workers rebuild each scenario exactly once per process: the canonical
# string is the cache key, the deterministic construction pipeline is the
# loader.  Holding (index, fingerprint) per spec keeps repeated shards of
# the same scenario cheap.  The cache is bounded (FIFO) so long-lived
# processes running many suites do not accumulate every graph and index
# ever built, and it is cleared in each pool worker at start-up — under the
# ``fork`` start method workers would otherwise inherit the parent's
# entries, which would make the cross-process fingerprint verification
# vacuous (the worker must genuinely rebuild from the canonical string).
_SCENARIO_CACHE: Dict[str, Tuple[RouteIndex, str]] = {}
_SCENARIO_CACHE_LIMIT = 8


def _reset_worker_cache() -> None:
    """Pool initializer: force workers to rebuild scenarios from scratch."""
    _SCENARIO_CACHE.clear()


def _cache_workload(spec: str, value: Tuple[RouteIndex, str]) -> None:
    if spec not in _SCENARIO_CACHE and len(_SCENARIO_CACHE) >= _SCENARIO_CACHE_LIMIT:
        _SCENARIO_CACHE.pop(next(iter(_SCENARIO_CACHE)))
    _SCENARIO_CACHE[spec] = value


def _scenario_workload(spec: str) -> Tuple[RouteIndex, str]:
    cached = _SCENARIO_CACHE.get(spec)
    if cached is None:
        from repro.scenarios.spec import parse_scenario

        graph, result = parse_scenario(spec).build()
        cached = (RouteIndex(graph, result.routing), result.fingerprint())
        _cache_workload(spec, cached)
    return cached


def _eval_suite_task(task: _SuiteTask):
    """Evaluate one shard; returns (campaign_key, fingerprint, outcomes)."""
    index, fingerprint = _scenario_workload(task.spec)
    fault_sets = task.materialise(index.node_pool)
    if task.bound is not None:
        outcomes = [
            (fault_set, index.surviving_diameter(fault_set, cap=task.bound))
            for fault_set in fault_sets
        ]
    else:
        outcomes = [
            (fault_set, index.surviving_diameter(fault_set))
            for fault_set in fault_sets
        ]
    return task.campaign_key, fingerprint, outcomes


# ----------------------------------------------------------------------
# Task expansion
# ----------------------------------------------------------------------
def _campaign_plans(
    scenario: Scenario, samples: int, node_count: Optional[int] = None
) -> List[Tuple[str, int, float, int]]:
    """Return ``(mode, fault_size, p, total)`` per campaign of a scenario.

    ``node_count`` (needed only by exhaustive models, to size the
    enumeration) is taken from the caller when already known; otherwise the
    graph is built deterministically to read it.
    """
    model = scenario.faults
    if model.kind == "sizes":
        return [("random", size, 0.0, samples) for size in model.sizes]
    if model.kind == "random":
        return [("random-p", 0, model.p, samples)]
    n = (
        node_count
        if node_count is not None
        else scenario.build_graph().number_of_nodes()
    )
    return [
        ("exhaustive", size, 0.0, math.comb(n, size))
        for size in range(0, model.max_faults + 1)
    ]


def _expand_tasks(
    scenarios: Sequence[Scenario],
    samples: int,
    seed: int,
    chunk_size: int,
    bound: Optional[float],
    node_counts: Optional[Sequence[int]] = None,
) -> Tuple[List[_SuiteTask], List[Tuple[Tuple[int, int], int]]]:
    """Flatten the suite into shard tasks plus per-campaign metadata.

    Returns ``(tasks, campaigns)`` where ``campaigns[j] = (campaign_key,
    fault_size)`` in row order.  Task seeds hash the campaign's *position*
    (scenario index, plan index) as well as the canonical scenario string,
    so distinct scenarios — and repeated scenarios or repeated fault sizes
    within one — always draw independent batteries under one suite seed
    (mirroring ``CampaignEngine.sweep_fault_sizes``).
    """
    tasks: List[_SuiteTask] = []
    campaigns: List[Tuple[Tuple[int, int], int]] = []
    for scenario_index, scenario in enumerate(scenarios):
        spec = scenario.canonical()
        node_count = node_counts[scenario_index] if node_counts else None
        for plan_index, (mode, fault_size, p, total) in enumerate(
            _campaign_plans(scenario, samples, node_count)
        ):
            campaign_key = (scenario_index, plan_index)
            campaigns.append((campaign_key, fault_size))
            tag = (
                f"{scenario_index}.{plan_index}|{spec}|{mode}|size={fault_size}"
            )
            for shard_index, start in enumerate(range(0, total, chunk_size)):
                count = min(chunk_size, total - start)
                tasks.append(
                    _SuiteTask(
                        spec=spec,
                        campaign_key=campaign_key,
                        mode=mode,
                        fault_size=fault_size,
                        p=p,
                        count=count,
                        start=start,
                        seed=shard_seed(seed, tag, shard_index),
                        bound=bound,
                    )
                )
    return tasks, campaigns


# ----------------------------------------------------------------------
# The suite entry point
# ----------------------------------------------------------------------
def run_scenario_suite(
    scenarios: Iterable[Union[str, Scenario]],
    samples: int = 50,
    seed: int = 0,
    bound: Optional[float] = None,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> List[ScenarioRow]:
    """Run campaigns for every scenario and return one row per campaign.

    Parameters
    ----------
    scenarios:
        Canonical scenario strings and/or :class:`Scenario` values.
    samples:
        Battery size per campaign for the sampled fault models (``sizes`` /
        ``random:p``); ``exhaustive:f`` ignores it.
    seed:
        Suite seed.  Rows are byte-identical for any worker count and any
        ``PYTHONHASHSEED`` given the same seed.
    bound:
        Optional diameter bound: campaigns then stream bounded *decisions*
        (pass/fail per fault set) instead of exact diameters.
    workers:
        Worker processes.  ``1`` evaluates in-process; larger values drain
        the flattened task list — all scenarios, all batteries — through one
        pool, so cross-scenario parallelism comes for free.
    chunk_size:
        Fault sets per shard (also the streaming granularity).

    Raises
    ------
    RuntimeError
        If a worker's rebuilt routing fingerprint disagrees with the
        parent's — i.e. the construction pipeline went nondeterministic.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if samples < 1:
        raise ValueError("samples must be at least 1")
    scenario_list = as_scenarios(scenarios)
    if not scenario_list:
        return []

    # Parent-side builds: row metadata + the reference fingerprints that
    # worker rebuilds are verified against.  The sequential path shares the
    # worker-side cache, so each scenario is built exactly once in-process.
    built: List[Tuple[Scenario, ConstructionResult, int, int, str]] = []
    for scenario in scenario_list:
        graph, result = scenario.build()
        index = RouteIndex(graph, result.routing)
        _cache_workload(scenario.canonical(), (index, result.fingerprint()))
        built.append(
            (
                scenario,
                result,
                graph.number_of_nodes(),
                graph.number_of_edges(),
                index.preferred_strategy(),
            )
        )

    tasks, campaigns = _expand_tasks(
        scenario_list,
        samples,
        seed,
        chunk_size,
        bound,
        node_counts=[entry[2] for entry in built],
    )

    # Drain the shard tasks — one pool for the whole suite — and fold the
    # outcomes per campaign in deterministic task order.  The pool
    # initializer clears the inherited scenario cache, so workers really do
    # rebuild every workload from its canonical string (that rebuild is
    # what the fingerprint verification below checks).
    outcome_lists: Dict[Tuple[int, int], List] = {}
    if workers == 1:
        results_iter = map(_eval_suite_task, tasks)
    else:
        import multiprocessing

        pool = multiprocessing.Pool(workers, initializer=_reset_worker_cache)
        try:
            results_iter = list(pool.imap(_eval_suite_task, tasks))
        finally:
            pool.terminate()
            pool.join()
    for (campaign_key, fingerprint, outcomes), task in zip(results_iter, tasks):
        reference = built[campaign_key[0]][1].fingerprint()
        if fingerprint != reference:
            raise RuntimeError(
                f"worker rebuilt scenario {task.spec!r} with fingerprint "
                f"{fingerprint[:12]}... but the parent built "
                f"{reference[:12]}...; the construction pipeline is "
                "nondeterministic"
            )
        outcome_lists.setdefault(campaign_key, []).extend(outcomes)

    rows: List[ScenarioRow] = []
    for campaign_key, fault_size in campaigns:
        scenario, result, nodes, edges, strategy = built[campaign_key[0]]
        outcomes = outcome_lists.get(campaign_key, [])
        if bound is not None:
            campaign: CampaignRow = aggregate_decisions(fault_size, bound, outcomes)
        else:
            campaign = aggregate_outcomes(fault_size, outcomes)
        campaign.bfs_strategy = strategy
        rows.append(
            ScenarioRow(
                scenario=scenario.canonical(),
                scheme=result.scheme,
                nodes=nodes,
                edges=edges,
                t=result.t,
                fingerprint=result.fingerprint(),
                campaign=campaign,
            )
        )
    return rows

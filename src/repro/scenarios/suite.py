"""Scenario-suite runner: sharded campaigns across whole workload families.

:func:`run_scenario_suite` turns a list of scenarios (canonical strings or
:class:`~repro.scenarios.spec.Scenario` values) into campaign rows — one row
per scenario and fault-set size — evaluating every battery through the
bitset kernel of :class:`~repro.core.route_index.RouteIndex`.

Sharding happens **across scenarios as well as within batteries**: the suite
is flattened into a deterministic list of shard tasks (scenario spec +
battery slice descriptor) and a single process pool drains all of them, so a
suite of many small scenarios parallelises exactly as well as one giant
battery.  Three design rules keep the rows byte-identical for any worker
count and any ``PYTHONHASHSEED``:

1. tasks are a pure function of the scenario list, ``samples``, ``seed`` and
   ``chunk_size`` — never of the worker count — and results are folded in
   task order; battery seeds hash each campaign's *identity* (canonical
   scenario string, occurrence, plan index), not its suite position, so the
   same scenario yields byte-identical rows in every suite that contains it
   (split runs merge losslessly via ``repro report store_a store_b``);
2. workers regenerate their battery slice locally from per-shard SHA-256
   seeds; the parent builds each scenario exactly once and broadcasts the
   slim route indexes through the pool initializer (one payload per worker
   process, as the engine's pools do).  With ``share_index=False`` workers
   instead rebuild graph, routing and index from the canonical scenario
   string alone (the construction pipeline is bit-for-bit deterministic);
3. every worker reports the fingerprint of the routing it used, and the
   parent verifies it against its own construction — under
   ``share_index=False`` this is a genuine cross-process determinism check
   that fails loudly instead of silently skewing rows.

With ``bound`` given the suite runs *bounded-decision* campaigns: fault sets
are evaluated with an eccentricity cap (``surviving_diameter_at_most``
semantics) and rows report pass/fail statistics instead of exact diameters
— the cheap path for paper-style "does the guarantee hold at scale" tables.

With a ``store`` attached (a :class:`~repro.results.store.ResultStore`
opened against :func:`suite_manifest`), every finished campaign row is
persisted the moment it completes and already-recorded campaigns are
skipped on the next run — the substrate of resumable ``repro grid``
campaigns.
"""

from __future__ import annotations

import dataclasses
import math
import random as _random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.builder import build_routing
from repro.core.construction import ConstructionResult
from repro.core.route_index import RouteIndex
from repro.exceptions import ReproError
from repro.faults.engine import DEFAULT_CHUNK_SIZE, _combinations_slice, shard_seed
from repro.faults.models import FaultSet
from repro.faults.simulation import (
    CampaignResult,
    CampaignStatus,
    DecisionCampaignResult,
    aggregate_decisions,
    aggregate_outcomes,
)
from repro.runtime import (
    FailedTask,
    Supervisor,
    SupervisorPolicy,
    chaos_point,
    shutdown_pool,
)
from repro.scenarios.spec import Scenario, as_scenarios

CampaignRow = Union[CampaignResult, DecisionCampaignResult, CampaignStatus]


@dataclasses.dataclass(frozen=True)
class _SuiteTask:
    """One worker-sized unit: a battery slice of one scenario campaign.

    ``campaign_key`` identifies the row the outcomes fold into (scenario
    position, campaign position); shards of one campaign are numbered by
    ``shard_index`` and generated locally by whichever process runs them.
    ``mode`` selects the generator: ``"random"`` (uniform sets of
    ``fault_size``), ``"random-p"`` (binomial per-node failures with
    probability ``p``), ``"exhaustive"`` (combinations offsets
    ``start .. start + count`` at ``fault_size``) or ``"greedy"`` (one
    adversarially-grown set of ``fault_size`` via the batched greedy
    search, with ``candidate_limit`` candidates per round).

    ``density_threshold`` and ``backend`` carry the **parent-resolved**
    index tunables.  Workers rebuilding a scenario construct their index
    from these values instead of consulting their own environment — worker
    processes whose environment diverges from the parent's (or from each
    other's) would otherwise silently evaluate with different strategies.
    ``None`` preserves the historical per-process resolution.
    """

    spec: str
    campaign_key: Tuple[int, int]
    mode: str
    fault_size: int = 0
    p: float = 0.0
    count: int = 0
    start: int = 0
    seed: int = 0
    bound: Optional[float] = None
    density_threshold: Optional[int] = None
    backend: Optional[str] = None
    candidate_limit: int = 0

    def materialise(self, pool: Sequence) -> Tuple[FaultSet, ...]:
        """Regenerate this task's fault sets from the canonical node pool."""
        if self.mode == "exhaustive":
            return tuple(
                FaultSet(combo, description=f"exhaustive size {self.fault_size}")
                for combo in _combinations_slice(
                    pool, self.fault_size, self.start, self.count
                )
            )
        rng = _random.Random(self.seed)
        if self.mode == "random-p":
            sets = []
            for offset in range(self.count):
                failed = [node for node in pool if rng.random() < self.p]
                sets.append(
                    FaultSet(
                        failed, description=f"random p={self.p} #{self.start + offset}"
                    )
                )
            return tuple(sets)
        if self.fault_size > len(pool):
            return ()
        return tuple(
            FaultSet(
                rng.sample(pool, self.fault_size),
                description=f"random #{self.start + offset}",
            )
            for offset in range(self.count)
        )


@dataclasses.dataclass
class ScenarioRow:
    """One suite row: a scenario, its construction metadata, and a campaign.

    Like the campaign views it wraps, a :class:`ScenarioRow` is a thin view
    over one unified result record (:mod:`repro.results.records`):
    :meth:`record` emits the row the suite persists through
    :class:`~repro.results.store.ResultStore`, and :meth:`from_record`
    reconstructs the view — which is how resumed grid campaigns rehydrate
    their completed rows without recomputing them.
    """

    scenario: str
    scheme: Optional[str]
    nodes: int
    edges: int
    t: int
    fingerprint: Optional[str]
    campaign: CampaignRow

    def as_row(self) -> Dict[str, object]:
        """Return a flat dict for table rendering / JSON persistence."""
        row: Dict[str, object] = {
            "scenario": self.scenario,
            "scheme": self.scheme,
            "n": self.nodes,
            "m": self.edges,
            "t": self.t,
        }
        row.update(self.campaign.as_row())
        if self.fingerprint is not None:
            row["fingerprint"] = self.fingerprint[:12]
        return row

    def record(self) -> Dict[str, object]:
        """Return the unified result record for this row."""
        from repro.results.records import scenario_family, scenario_strategy

        return self.campaign.record(
            source="suite",
            scenario=self.scenario,
            family=scenario_family(self.scenario),
            strategy=scenario_strategy(self.scenario),
            scheme=self.scheme,
            n=self.nodes,
            m=self.edges,
            t=self.t,
            fingerprint=self.fingerprint,
        )

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "ScenarioRow":
        """Rebuild the row (and its campaign view) from a stored record."""
        from repro.results.records import view_from_record

        return cls(
            scenario=record["scenario"],
            scheme=record["scheme"],
            nodes=record["n"],
            edges=record["m"],
            t=record["t"],
            fingerprint=record["fingerprint"],
            campaign=view_from_record(record),
        )


# ----------------------------------------------------------------------
# Worker-side scenario cache
# ----------------------------------------------------------------------
# Workers rebuild each scenario exactly once per process: the canonical
# string is the cache key, the deterministic construction pipeline is the
# loader.  Holding (index, fingerprint) per spec keeps repeated shards of
# the same scenario cheap.  The cache is bounded (FIFO) so long-lived
# processes running many suites do not accumulate every graph and index
# ever built, and it is cleared in each pool worker at start-up — under the
# ``fork`` start method workers would otherwise inherit the parent's
# entries, which would make the cross-process fingerprint verification
# vacuous (the worker must genuinely rebuild from the canonical string).
_SCENARIO_CACHE: Dict[str, Tuple[RouteIndex, str]] = {}
_SCENARIO_CACHE_LIMIT = 8


def _reset_worker_cache() -> None:
    """Pool initializer: force workers to rebuild scenarios from scratch."""
    _SCENARIO_CACHE.clear()


def _init_suite_worker(payload: Optional[Dict[str, Tuple[RouteIndex, str]]]) -> None:
    """Pool initializer: seed each worker with the parent's slim indexes.

    ``payload`` maps canonical scenario strings to ``(RouteIndex.slim(),
    fingerprint)`` pairs built once in the parent — the same broadcast
    :class:`~repro.faults.engine.CampaignEngine` pools use — so workers
    skip the per-process scenario rebuild entirely.  With ``payload=None``
    (``share_index=False``) workers fall back to rebuilding every scenario
    from its canonical string, which is what makes the parent's fingerprint
    verification a genuine cross-process determinism check.
    """
    _reset_worker_cache()
    if payload:
        # Insert directly (no FIFO eviction): the payload is the complete,
        # read-only working set for this suite run.
        _SCENARIO_CACHE.update(payload)


def _cache_workload(key: str, value: Tuple[RouteIndex, str]) -> None:
    if key not in _SCENARIO_CACHE and len(_SCENARIO_CACHE) >= _SCENARIO_CACHE_LIMIT:
        _SCENARIO_CACHE.pop(next(iter(_SCENARIO_CACHE)))
    _SCENARIO_CACHE[key] = value


def _workload_key(
    spec: str, density_threshold: Optional[int], backend: Optional[str]
) -> str:
    """Cache key of one (scenario, resolved index tunables) workload.

    The tunables are part of the key so a parent-broadcast slim index (built
    with the parent's resolved values) is never conflated with a worker-side
    rebuild under different values.
    """
    return f"{spec}\x00{density_threshold}\x00{backend}"


def _scenario_workload(
    spec: str,
    density_threshold: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[RouteIndex, str]:
    key = _workload_key(spec, density_threshold, backend)
    cached = _SCENARIO_CACHE.get(key)
    if cached is None:
        from repro.scenarios.spec import parse_scenario

        graph, result = parse_scenario(spec).build()
        cached = (
            RouteIndex(
                graph,
                result.routing,
                density_threshold=density_threshold,
                backend=backend,
            ),
            result.fingerprint(),
        )
        _cache_workload(key, cached)
    return cached


def _eval_suite_task(task: _SuiteTask):
    """Evaluate one shard; returns (campaign_key, fingerprint, outcomes)."""
    chaos_point(
        "task", f"{task.spec}#{task.campaign_key[1]}:start={task.start}"
    )
    index, fingerprint = _scenario_workload(
        task.spec, task.density_threshold, task.backend
    )
    if task.mode == "greedy":
        from repro.faults.adversary import greedy_fault_set_from_index

        fault_sets: Tuple[FaultSet, ...] = (
            greedy_fault_set_from_index(
                index,
                task.fault_size,
                candidate_limit=task.candidate_limit,
                seed=task.seed,
            ),
        )
    else:
        fault_sets = task.materialise(index.node_pool)
    if task.bound is not None:
        values = index.surviving_diameters(fault_sets, cap=task.bound)
    else:
        values = index.surviving_diameters(fault_sets)
    return task.campaign_key, fingerprint, list(zip(fault_sets, values))


# ----------------------------------------------------------------------
# Task expansion
# ----------------------------------------------------------------------
def _campaign_plans(
    scenario: Scenario, samples: int, node_count: Optional[int] = None
) -> List[Tuple[str, int, float, int]]:
    """Return ``(mode, fault_size, p, total)`` per campaign of a scenario.

    ``node_count`` (needed only by exhaustive models, to size the
    enumeration) is taken from the caller when already known; otherwise the
    graph is built deterministically to read it.
    """
    model = scenario.faults
    if model.kind == "sizes":
        return [("random", size, 0.0, samples) for size in model.sizes]
    if model.kind == "random":
        return [("random-p", 0, model.p, samples)]
    n = (
        node_count
        if node_count is not None
        else scenario.build_graph().number_of_nodes()
    )
    return [
        ("exhaustive", size, 0.0, math.comb(n, size))
        for size in range(0, model.max_faults + 1)
    ]


def _expand_tasks(
    scenarios: Sequence[Scenario],
    samples: int,
    seed: int,
    chunk_size: int,
    bound: Optional[float],
    node_counts: Optional[Sequence[Optional[int]]] = None,
    skip: Iterable[Tuple[int, int]] = (),
    drop: Iterable[int] = (),
    tunables: Optional[Sequence[Optional[Tuple[int, str]]]] = None,
    greedy: bool = False,
    candidate_limit: int = 40,
) -> Tuple[List[_SuiteTask], List[Tuple[Tuple[int, int], int]]]:
    """Flatten the suite into shard tasks plus per-campaign metadata.

    ``tunables[i]`` optionally carries scenario ``i``'s parent-resolved
    ``(density_threshold, backend)`` pair; it is stamped onto every task of
    that scenario so workers evaluate with exactly the parent's resolution.

    With ``greedy`` set, every ``random`` (sizes-model) campaign of
    positive fault size gains one trailing ``"greedy"`` task: a single
    adversarially-grown fault set of the same size, folded into the same
    campaign row as an extra battery member.  The greedy task rides the
    campaign's identity tag (its seed never depends on suite position), so
    greedy-augmented rows stay byte-identical across splits and resumes.

    Returns ``(tasks, campaigns)`` where ``campaigns[j] = (campaign_key,
    fault_size)`` in row order.  Task seeds hash the campaign's *identity*
    — the canonical scenario string, its occurrence number (repeats of one
    spec in a suite) and the plan index — never the scenario's position in
    the suite.  Repeated scenarios and repeated fault sizes still draw
    independent batteries under one suite seed, while the same scenario
    produces byte-identical rows in *any* suite that contains it: a grid
    split across several runs/stores and merged back together yields
    exactly the rows of the combined run (the substrate of the
    strategy-comparison tables assembled with ``repro report a b``).

    Campaign keys in ``skip`` (already recorded in a resumed result store)
    stay in ``campaigns`` — the row order is that of an uninterrupted run —
    but contribute no shard tasks: their rows are rehydrated from the store
    instead of recomputed.  Scenario indices in ``drop`` (constructions
    that do not apply under ``skip_inapplicable``) contribute neither tasks
    nor campaign rows.  Because task seeds depend only on identities, the
    surviving tasks are exactly the ones the uninterrupted run would have
    evaluated.
    """
    skipped = set(skip)
    dropped = set(drop)
    occurrences: Dict[str, int] = {}
    tasks: List[_SuiteTask] = []
    campaigns: List[Tuple[Tuple[int, int], int]] = []
    for scenario_index, scenario in enumerate(scenarios):
        spec = scenario.canonical()
        occurrence = occurrences.get(spec, 0)
        occurrences[spec] = occurrence + 1
        if scenario_index in dropped:
            continue
        node_count = node_counts[scenario_index] if node_counts else None
        scenario_tunables = (
            tunables[scenario_index] if tunables is not None else None
        )
        density_threshold, backend = (
            scenario_tunables if scenario_tunables is not None else (None, None)
        )
        for plan_index, (mode, fault_size, p, total) in enumerate(
            _campaign_plans(scenario, samples, node_count)
        ):
            campaign_key = (scenario_index, plan_index)
            campaigns.append((campaign_key, fault_size))
            if campaign_key in skipped:
                continue
            tag = (
                f"{spec}@{occurrence}#{plan_index}|{mode}|size={fault_size}"
            )
            for shard_index, start in enumerate(range(0, total, chunk_size)):
                count = min(chunk_size, total - start)
                tasks.append(
                    _SuiteTask(
                        spec=spec,
                        campaign_key=campaign_key,
                        mode=mode,
                        fault_size=fault_size,
                        p=p,
                        count=count,
                        start=start,
                        seed=shard_seed(seed, tag, shard_index),
                        bound=bound,
                        density_threshold=density_threshold,
                        backend=backend,
                    )
                )
            if greedy and mode == "random" and fault_size > 0:
                # The greedy probe folds into the same campaign row, so it
                # must stay contiguous with the campaign's random shards.
                # ``start=total`` keeps its chaos/task tag distinct from
                # every random shard of the campaign.
                tasks.append(
                    _SuiteTask(
                        spec=spec,
                        campaign_key=campaign_key,
                        mode="greedy",
                        fault_size=fault_size,
                        count=1,
                        start=total,
                        seed=shard_seed(seed, tag + "|greedy", 0),
                        bound=bound,
                        density_threshold=density_threshold,
                        backend=backend,
                        candidate_limit=candidate_limit,
                    )
                )
    return tasks, campaigns


# ----------------------------------------------------------------------
# Store keys and manifests
# ----------------------------------------------------------------------
def campaign_row_keys(scenario: Scenario, occurrence: int = 0) -> List[str]:
    """Return a scenario's store row keys, one per campaign, in plan order.

    The key is a content address — the canonical scenario string plus the
    campaign's plan position — so it is identical across runs, which is what
    lets a resumed store recognise completed rows.  ``occurrence``
    disambiguates repeated scenarios within one suite (each repeat draws an
    independent battery and therefore records distinct rows).
    """
    model = scenario.faults
    if model.kind == "sizes":
        count = len(model.sizes)
    elif model.kind == "random":
        count = 1
    else:
        count = model.max_faults + 1
    spec = scenario.canonical()
    suffix = f"@{occurrence}" if occurrence else ""
    return [f"{spec}#{plan_index}{suffix}" for plan_index in range(count)]


def suite_row_keys(scenarios: Sequence[Scenario]) -> List[List[str]]:
    """Return the row keys of every scenario, disambiguating repeats."""
    occurrences: Dict[str, int] = {}
    keys: List[List[str]] = []
    for scenario in scenarios:
        spec = scenario.canonical()
        occurrence = occurrences.get(spec, 0)
        occurrences[spec] = occurrence + 1
        keys.append(campaign_row_keys(scenario, occurrence))
    return keys


def suite_manifest(
    scenarios: Iterable[Union[str, Scenario]],
    samples: int,
    seed: int,
    bound: Optional[float] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    greedy: bool = False,
    candidate_limit: int = 40,
) -> Dict[str, object]:
    """Return the result-store run manifest for a suite invocation.

    Two invocations produce the same rows iff they share this manifest,
    which is exactly the condition :meth:`~repro.results.store.ResultStore
    .open` enforces before resuming.  The greedy-probe parameters are part
    of the manifest because a greedy-augmented battery folds one extra
    fault set into every sizes-model row — resuming a non-greedy store
    under ``greedy`` (or with a different candidate budget) would change
    rows already recorded.
    """
    return {
        "experiment": "scenario-suite",
        "scenarios": [s.canonical() for s in as_scenarios(scenarios)],
        "samples": samples,
        "seed": seed,
        "bound": bound,
        "chunk_size": chunk_size,
        "greedy": greedy,
        "candidate_limit": candidate_limit if greedy else None,
    }


# ----------------------------------------------------------------------
# The suite entry point
# ----------------------------------------------------------------------
def run_scenario_suite(
    scenarios: Iterable[Union[str, Scenario]],
    samples: int = 50,
    seed: int = 0,
    bound: Optional[float] = None,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    store=None,
    share_index: bool = True,
    skip_inapplicable: Union[bool, Iterable[Union[str, int]]] = False,
    skipped: Optional[List[Tuple[Scenario, str]]] = None,
    density_threshold: Optional[Union[int, str]] = None,
    backend: Optional[str] = None,
    policy: Optional[SupervisorPolicy] = None,
    supervised: bool = True,
    greedy: bool = False,
    candidate_limit: int = 40,
) -> List[ScenarioRow]:
    """Run campaigns for every scenario and return one row per campaign.

    Parameters
    ----------
    scenarios:
        Canonical scenario strings and/or :class:`Scenario` values.
    samples:
        Battery size per campaign for the sampled fault models (``sizes`` /
        ``random:p``); ``exhaustive:f`` ignores it.
    seed:
        Suite seed.  Rows are byte-identical for any worker count and any
        ``PYTHONHASHSEED`` given the same seed.
    bound:
        Optional diameter bound: campaigns then stream bounded *decisions*
        (pass/fail per fault set) instead of exact diameters.
    workers:
        Worker processes.  ``1`` evaluates in-process; larger values drain
        the flattened task list — all scenarios, all batteries — through one
        pool, so cross-scenario parallelism comes for free.
    chunk_size:
        Fault sets per shard (also the streaming granularity).
    store:
        Optional :class:`~repro.results.store.ResultStore` opened with the
        matching :func:`suite_manifest`.  Every finished campaign row is
        appended to it the moment its last shard folds, and campaigns whose
        keys the store already records are **not recomputed**: their rows
        are rehydrated from the stored records, scenarios with no work left
        are not even rebuilt, and the returned row list is identical to an
        uninterrupted run's.
    share_index:
        Ship each built scenario's slim route index to the worker pool
        through the initializer (one payload per worker process, as
        :class:`~repro.faults.engine.CampaignEngine` pools do) instead of
        letting every worker rebuild every scenario.  Set to ``False`` to
        restore the rebuild-and-verify behaviour, which turns the parent's
        fingerprint comparison into a genuine cross-process determinism
        check.
    skip_inapplicable:
        Drop scenarios whose construction does not apply to their graph
        (e.g. ``circular`` on a hypercube too small for its neighbourhood
        set) instead of raising.  ``True`` makes every scenario eligible;
        an iterable restricts dropping to its members — canonical scenario
        strings, or suite positions (ints) when the same scenario string
        must be treated differently per occurrence (so one suite can mix
        strategy-axis scenarios, which skip, with explicitly requested
        ones, which still fail loudly).  Dropped
        scenarios contribute no campaign rows; with a store attached each
        of their campaign keys records an ``inapplicable`` status row
        (see ``skipped`` below), and because construction is
        deterministic a resumed run drops exactly the same scenarios, so
        stores stay byte-exact.  This is how
        strategy-axis grids sweep ``kernel|circular`` across families
        where not every strategy applies everywhere.  Graph construction
        itself is never forgiven: a malformed graph axis raises
        regardless.
    density_threshold, backend:
        Index tunables (see :class:`~repro.core.route_index.RouteIndex`).
        Whatever they resolve to — explicit argument, environment variable
        or default — is resolved **once, in the parent** and stamped onto
        every shard task, so workers never consult their own environment:
        a pool whose processes see divergent ``REPRO_*`` variables still
        evaluates every shard with the parent's strategy.
    skipped:
        Optional list the suite appends ``(scenario, reason)`` pairs to for
        every scenario dropped under ``skip_inapplicable`` (in suite
        order), so callers can surface what the table will not show.  With
        a store attached the drop is also recorded: every campaign key of a
        dropped scenario gets a ``kind="status"`` row with
        ``disposition="inapplicable"``, so reports can annotate "not
        applicable" (status row) vs "not run" (no row at all) — and a
        resumed run re-drops from the stored rows without rebuilding the
        scenario.
    policy:
        Optional :class:`~repro.runtime.SupervisorPolicy` tuning the
        supervised dispatch: per-task wall-clock timeouts, bounded retry
        with backoff, dead-worker pool rebuilds and in-process degradation.
        Tasks are pure functions of their descriptors (seeds travel inside
        them), so retries recompute byte-identical outcomes — a recovered
        run's store equals an undisturbed run's.  A campaign whose task
        exhausts the retry budget is **quarantined**: recorded as a
        ``disposition="failed"`` status row (and returned as such) instead
        of aborting the sweep.  ``policy.strict`` restores fail-fast.
    supervised:
        ``False`` restores the bare ``pool.imap`` dispatch with no
        timeouts, retries or recovery — the benchmark baseline for the
        supervisor's clean-path overhead gate.
    greedy, candidate_limit:
        With ``greedy`` set, every sizes-model campaign of positive fault
        size additionally evaluates one adversarially-grown fault set of
        the same size (the batched greedy search of
        :func:`~repro.faults.adversary.greedy_fault_set_from_index`, with
        ``candidate_limit`` candidates per round), folded into the same
        row as an extra battery member — so ``worst_diam`` reflects a
        sampled *and* adversarial battery.  Rows then carry the candidate
        budget in their ``candidate_limit`` column.  The store manifest
        records both parameters: a greedy store and a non-greedy store
        hold different rows and never resume one another.

    Raises
    ------
    RuntimeError
        If a worker's routing fingerprint disagrees with the parent's (with
        ``share_index=False``: the construction pipeline went
        nondeterministic), or if a resumed store's rows were recorded
        against a different routing than the one this run builds.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if samples < 1:
        raise ValueError("samples must be at least 1")
    scenario_list = as_scenarios(scenarios)
    if not scenario_list:
        return []

    # Resume bookkeeping: a campaign is complete when its content-addressed
    # key is already recorded in the store.  Stored ``inapplicable`` status
    # rows instead classify their whole scenario as dropped-by-record: the
    # resumed run honours the stored decision without rebuilding the
    # scenario (and without consulting ``skip_inapplicable`` again).
    # Stored ``failed`` rows count as completed — a quarantined campaign is
    # never silently retried; delete the store to re-run it.
    keys = suite_row_keys(scenario_list)
    completed: set = set()
    stored_dropped: Dict[int, str] = {}
    if store is not None:
        for scenario_index, scenario_keys in enumerate(keys):
            for plan_index, key in enumerate(scenario_keys):
                if key not in store:
                    continue
                record = store.get(key)
                if (
                    record.get("kind") == "status"
                    and record.get("disposition") == "inapplicable"
                ):
                    stored_dropped[scenario_index] = record.get("reason") or ""
                else:
                    completed.add((scenario_index, plan_index))

    # Parent-side builds: row metadata + the reference fingerprints worker
    # results are verified against.  Scenarios whose campaigns are all
    # already stored are skipped outright — resuming a finished scenario
    # costs no construction at all.  The sequential path shares the
    # worker-side cache, so each scenario is built exactly once in-process;
    # only the *slim* index (when a sharing pool will need it) outlives the
    # loop, so the suite never holds every full index at once.
    if isinstance(skip_inapplicable, bool):
        may_skip = (
            set(range(len(scenario_list))) if skip_inapplicable else set()
        )
    else:
        may_skip = set(skip_inapplicable)

    built: Dict[
        int, Tuple[Scenario, ConstructionResult, int, int, str, Tuple[int, str]]
    ] = {}
    dropped: Dict[int, str] = {}
    payload: Optional[Dict[str, Tuple[RouteIndex, str]]] = (
        {} if workers > 1 and share_index else None
    )

    def _record_inapplicable(
        scenario_index: int,
        scenario: Scenario,
        reason: str,
        nodes: int,
        edges: int,
    ) -> None:
        """Append an ``inapplicable`` status row per missing campaign key.

        Appends happen here, in build-loop scenario order and before any
        campaign row is dispatched, so an uninterrupted store and a resumed
        one lay out identical bytes (a resumed run appends only the keys a
        crash left missing, in the same order).
        """
        if store is None:
            return
        for plan_index, (_mode, fault_size, _p, _total) in enumerate(
            _campaign_plans(scenario, samples, nodes)
        ):
            key = keys[scenario_index][plan_index]
            if key in store:
                continue
            row = ScenarioRow(
                scenario=scenario.canonical(),
                scheme=None,
                nodes=nodes,
                edges=edges,
                t=scenario.t,
                fingerprint=None,
                campaign=CampaignStatus(
                    disposition="inapplicable",
                    reason=reason,
                    fault_size=fault_size,
                ),
            )
            store.append(key, row.record())

    for scenario_index, scenario in enumerate(scenario_list):
        if scenario_index in stored_dropped:
            # The store already ruled this scenario inapplicable; honour
            # the record without rebuilding (a crash may have interrupted
            # the status appends mid-scenario, so complete them).
            reason = stored_dropped[scenario_index]
            dropped[scenario_index] = reason
            if skipped is not None:
                skipped.append((scenario, reason))
            first = store.get(keys[scenario_index][0])
            _record_inapplicable(
                scenario_index,
                scenario,
                reason,
                first.get("n") or 0,
                first.get("m") or 0,
            )
            continue
        if all(
            (scenario_index, plan_index) in completed
            for plan_index in range(len(keys[scenario_index]))
        ):
            continue
        # Graph construction stays outside the applicability guard: a bad
        # graph axis (e.g. cycle:n=2) is a malformed grid and must fail the
        # run, not be mislabelled "strategy not applicable" and dropped.
        graph = scenario.build_graph()
        try:
            result = build_routing(graph, strategy=scenario.strategy, t=scenario.t)
        except (ReproError, ValueError) as exc:
            # ValueError covers substrate-level refusals such as "complete
            # graphs have no separating set" (as build_routing's auto mode).
            if (
                scenario_index not in may_skip
                and scenario.canonical() not in may_skip
            ):
                raise
            dropped[scenario_index] = str(exc)
            if skipped is not None:
                skipped.append((scenario, str(exc)))
            _record_inapplicable(
                scenario_index,
                scenario,
                str(exc),
                graph.number_of_nodes(),
                graph.number_of_edges(),
            )
            continue
        index = RouteIndex(
            graph,
            result.routing,
            density_threshold=density_threshold,
            backend=backend,
        )
        # The parent's resolved tunables travel with every task and key the
        # worker-side cache, so shared slim indexes and worker rebuilds
        # agree with the parent no matter what the workers' environment says.
        resolved = (index.density_threshold, index.backend)
        key = _workload_key(scenario.canonical(), *resolved)
        _cache_workload(key, (index, result.fingerprint()))
        if payload is not None:
            payload[key] = (index.slim(), result.fingerprint())
        built[scenario_index] = (
            scenario,
            result,
            graph.number_of_nodes(),
            graph.number_of_edges(),
            index.preferred_strategy(),
            resolved,
        )

    # A partially-complete scenario is rebuilt for its remaining campaigns;
    # its stored rows must have been recorded against the same routing.
    if store is not None:
        for scenario_index, plan_index in sorted(completed):
            if scenario_index not in built:
                continue
            stored = store.get(keys[scenario_index][plan_index])
            reference = built[scenario_index][1].fingerprint()
            if stored.get("fingerprint") != reference:
                raise RuntimeError(
                    f"stored row {keys[scenario_index][plan_index]!r} was "
                    f"recorded against fingerprint "
                    f"{str(stored.get('fingerprint'))[:12]}... but this run "
                    f"built {reference[:12]}...; the store belongs to a "
                    "different construction"
                )

    # Node counts feed exhaustive-model plan sizing: from the fresh build
    # when there is one, otherwise from the stored rows.
    node_counts: List[Optional[int]] = []
    for scenario_index in range(len(scenario_list)):
        if scenario_index in built:
            node_counts.append(built[scenario_index][2])
        elif (
            scenario_index not in dropped
            and store is not None
            and keys[scenario_index]
        ):
            node_counts.append(store.get(keys[scenario_index][0]).get("n"))
        else:
            node_counts.append(None)

    tunables: List[Optional[Tuple[int, str]]] = [
        built[scenario_index][5] if scenario_index in built else None
        for scenario_index in range(len(scenario_list))
    ]
    tasks, campaigns = _expand_tasks(
        scenario_list,
        samples,
        seed,
        chunk_size,
        bound,
        node_counts=node_counts,
        skip=completed,
        drop=dropped,
        tunables=tunables,
        greedy=greedy,
        candidate_limit=candidate_limit,
    )
    fault_sizes = dict(campaigns)

    # Fold the streamed outcomes per campaign in deterministic task order.
    # Tasks of one campaign are contiguous, so a campaign is finished the
    # moment the first task of the next one arrives — at which point its
    # row is aggregated and (when a store is attached) persisted, keeping
    # the store valid for resumption at every instant of the run.
    computed: Dict[Tuple[int, int], ScenarioRow] = {}
    failed_reasons: Dict[Tuple[int, int], str] = {}

    def _finalise(campaign_key: Tuple[int, int], outcomes: List) -> None:
        scenario, result, nodes, edges, strategy, resolved = built[
            campaign_key[0]
        ]
        # A quarantined campaign is checked first: its collected outcomes
        # (if any shards did finish) are partial and must not feed an
        # aggregate.  The row still carries the real construction metadata
        # — the scenario built fine; only its evaluation failed.
        if campaign_key in failed_reasons:
            campaign: CampaignRow = CampaignStatus(
                disposition="failed",
                reason=failed_reasons[campaign_key],
                fault_size=fault_sizes[campaign_key],
            )
        elif bound is not None:
            campaign = aggregate_decisions(
                fault_sizes[campaign_key], bound, outcomes
            )
            campaign.bfs_strategy = strategy
        else:
            campaign = aggregate_outcomes(fault_sizes[campaign_key], outcomes)
            campaign.bfs_strategy = strategy
        if campaign_key not in failed_reasons:
            # Provenance columns: the parent-resolved eval backend, and the
            # greedy candidate budget when this row's battery carried an
            # adversarial probe.
            campaign.eval_backend = resolved[1]
            if (
                greedy
                and scenario.faults.kind == "sizes"
                and fault_sizes[campaign_key] > 0
            ):
                campaign.candidate_limit = candidate_limit
        row = ScenarioRow(
            scenario=scenario.canonical(),
            scheme=result.scheme,
            nodes=nodes,
            edges=edges,
            t=result.t,
            fingerprint=result.fingerprint(),
            campaign=campaign,
        )
        computed[campaign_key] = row
        if store is not None:
            store.append(keys[campaign_key[0]][campaign_key[1]], row.record())

    pool_state: Dict[str, object] = {"pool": None}

    def _ensure_suite_pool():
        if pool_state["pool"] is None:
            import multiprocessing

            pool_state["pool"] = multiprocessing.Pool(
                workers, initializer=_init_suite_worker, initargs=(payload,)
            )
        return pool_state["pool"]

    def _rebuild_suite_pool():
        shutdown_pool(pool_state["pool"])
        pool_state["pool"] = None
        return _ensure_suite_pool()

    try:
        if supervised:
            supervisor = Supervisor(
                _eval_suite_task,
                ensure_pool=_ensure_suite_pool if workers > 1 else None,
                rebuild_pool=_rebuild_suite_pool if workers > 1 else None,
                local_fn=_eval_suite_task,
                policy=policy if policy is not None else SupervisorPolicy(),
                workers=workers,
            )
            pairs = supervisor.run(tasks)
        elif workers == 1:
            pairs = ((task, _eval_suite_task(task)) for task in tasks)
        else:
            results_iter = _ensure_suite_pool().imap(_eval_suite_task, tasks)
            pairs = (
                (task, result) for result, task in zip(results_iter, tasks)
            )
        current_key: Optional[Tuple[int, int]] = None
        current_outcomes: List = []
        for task, result in pairs:
            campaign_key = task.campaign_key
            if isinstance(result, FailedTask):
                # One failed shard quarantines its whole campaign: the
                # aggregate would be incomplete either way.  The first
                # failure's reason is the one recorded.
                failed_reasons.setdefault(campaign_key, result.reason)
                outcomes: List = []
            else:
                _result_key, fingerprint, outcomes = result
                reference = built[campaign_key[0]][1].fingerprint()
                if fingerprint != reference:
                    raise RuntimeError(
                        f"worker rebuilt scenario {task.spec!r} with "
                        f"fingerprint {fingerprint[:12]}... but the parent "
                        f"built {reference[:12]}...; the construction "
                        "pipeline is nondeterministic"
                    )
            if campaign_key != current_key:
                if current_key is not None:
                    _finalise(current_key, current_outcomes)
                current_key = campaign_key
                current_outcomes = []
            current_outcomes.extend(outcomes)
        if current_key is not None:
            _finalise(current_key, current_outcomes)
    finally:
        shutdown_pool(pool_state["pool"])
        pool_state["pool"] = None

    # Assemble the rows in campaign order: stored rows for completed
    # campaigns, freshly computed rows for the rest.
    rows: List[ScenarioRow] = []
    for campaign_key, _fault_size in campaigns:
        if campaign_key in completed:
            rows.append(
                ScenarioRow.from_record(
                    store.get(keys[campaign_key[0]][campaign_key[1]])
                )
            )
        else:
            rows.append(computed[campaign_key])
    return rows

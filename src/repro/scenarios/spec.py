"""Scenario specifications: named, parameterised, seedable workload specs.

A :class:`Scenario` bundles everything needed to reproduce one workload of
the paper's experiments — *which* network, *which* construction, *which*
fault process — into a single canonical string that every layer (CLI, suite
runner, campaign workers, benchmark JSON) consumes and emits:

.. code-block:: text

    hypercube:d=7/kernel/t=3/random:p=0.1
    circulant:n=200,offsets=1+2/kernel/sizes:1,2,3
    flower:t=2,k=9/circular/exhaustive:f=2

The string has ``/``-separated segments:

1. a **graph family spec** (mandatory, first) — parsed and canonicalised by
   :mod:`repro.graphs.registry`;
2. an optional **routing strategy** — any name accepted by
   :func:`repro.core.builder.build_routing` (default ``auto``);
3. an optional **fault parameter** ``t=<int>`` (default: derive from the
   graph's connectivity);
4. an optional **fault model** (default ``sizes:1,2,3``):

   * ``sizes:a,b,c`` — one campaign per fault-set size, uniform random sets;
   * ``random:p=<float>`` — one campaign whose fault sets fail each node
     independently with probability ``p`` (binomial sizes);
   * ``exhaustive:f=<int>`` — every fault set of size at most ``f``.

Segments 2–4 may appear in any order; each is recognised by its shape.
``parse_scenario`` and :meth:`Scenario.canonical` round-trip exactly:
``parse_scenario(s.canonical()) == s`` for every scenario, and parsing any
accepted spelling then re-canonicalising is idempotent.  Scenarios are
hashable values — they carry no graph or routing objects, which is what
makes them cheap to ship to campaign worker processes (workers rebuild the
workload deterministically from the string alone).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Tuple, Union

from repro.core.builder import STRATEGIES, build_routing
from repro.core.construction import ConstructionResult
from repro.graphs.graph import Graph
from repro.graphs.registry import canonical_graph_spec, parse_graph_spec

#: Fault-model kinds understood by the scenario grammar.
FAULT_KINDS = ("sizes", "random", "exhaustive")


@dataclasses.dataclass(frozen=True)
class FaultModel:
    """The fault process of a scenario (see the module docstring grammar)."""

    kind: str
    sizes: Tuple[int, ...] = ()
    p: float = 0.0
    max_faults: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault model {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind == "sizes":
            if not self.sizes:
                raise ValueError("fault model 'sizes' needs at least one size")
            if any(size < 0 for size in self.sizes):
                raise ValueError("fault-set sizes must be non-negative")
        if self.kind == "random" and not 0.0 <= self.p <= 1.0:
            raise ValueError("fault probability p must lie in [0, 1]")
        if self.kind == "exhaustive" and self.max_faults < 0:
            raise ValueError("exhaustive fault bound f must be non-negative")

    def canonical(self) -> str:
        """Render the fault model segment of the canonical scenario string."""
        if self.kind == "sizes":
            return "sizes:" + ",".join(str(size) for size in self.sizes)
        if self.kind == "random":
            return f"random:p={format(self.p, 'g')}"
        return f"exhaustive:f={self.max_faults}"

    @staticmethod
    def parse(segment: str) -> "FaultModel":
        """Parse one ``kind:args`` fault-model segment."""
        kind, _, argument_text = segment.partition(":")
        kind = kind.strip().lower()
        if kind == "sizes":
            try:
                sizes = tuple(
                    int(token)
                    for token in argument_text.split(",")
                    if token.strip()
                )
            except ValueError:
                raise ValueError(
                    f"fault model 'sizes' expects integers, got {argument_text!r}"
                ) from None
            return FaultModel("sizes", sizes=sizes)
        if kind == "random":
            key, _, raw = argument_text.partition("=")
            if key.strip() != "p":
                raise ValueError(
                    f"fault model 'random' expects p=<float>, got {argument_text!r}"
                )
            try:
                p = float(raw)
            except ValueError:
                raise ValueError(
                    f"fault model 'random' expects p=<float>, got {argument_text!r}"
                ) from None
            return FaultModel("random", p=p)
        if kind == "exhaustive":
            key, _, raw = argument_text.partition("=")
            if key.strip() != "f":
                raise ValueError(
                    f"fault model 'exhaustive' expects f=<int>, got {argument_text!r}"
                )
            try:
                max_faults = int(raw)
            except ValueError:
                raise ValueError(
                    f"fault model 'exhaustive' expects f=<int>, got {argument_text!r}"
                ) from None
            return FaultModel("exhaustive", max_faults=max_faults)
        raise ValueError(f"unknown fault model {kind!r}")


#: Default fault model when a scenario omits the segment.
DEFAULT_FAULT_MODEL = FaultModel("sizes", sizes=(1, 2, 3))


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One fully-specified workload: graph family + construction + faults.

    ``graph_spec`` is always stored in canonical form, so two scenarios are
    equal iff their canonical strings are equal.
    """

    graph_spec: str
    strategy: str = "auto"
    t: Optional[int] = None
    faults: FaultModel = DEFAULT_FAULT_MODEL

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "graph_spec", canonical_graph_spec(self.graph_spec)
        )
        if self.strategy != "auto" and self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown routing strategy {self.strategy!r}; available: "
                f"{sorted(STRATEGIES) + ['auto']}"
            )
        if self.t is not None and self.t < 0:
            raise ValueError("fault parameter t must be non-negative")

    def canonical(self) -> str:
        """Return the canonical scenario string (round-trips via parse)."""
        segments = [self.graph_spec, self.strategy]
        if self.t is not None:
            segments.append(f"t={self.t}")
        segments.append(self.faults.canonical())
        return "/".join(segments)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()

    # ------------------------------------------------------------------
    # Workload construction
    # ------------------------------------------------------------------
    def build_graph(self) -> Graph:
        """Build the scenario's graph (deterministic for a fixed spec)."""
        return parse_graph_spec(self.graph_spec)

    def build(self) -> Tuple[Graph, ConstructionResult]:
        """Build the graph and its routing.

        Construction is bit-for-bit deterministic (hash-seed independent),
        so any process that builds the same scenario obtains a routing with
        the same :meth:`~repro.core.construction.ConstructionResult
        .fingerprint` — campaign workers rely on this to rebuild workloads
        locally from the canonical string alone.
        """
        graph = self.build_graph()
        result = build_routing(graph, strategy=self.strategy, t=self.t)
        return graph, result


def parse_scenario(text: str) -> Scenario:
    """Parse a scenario string (see the module docstring for the grammar).

    The graph spec must come first; the strategy, ``t=`` and fault-model
    segments are recognised by shape and may appear in any order.  Repeated
    segments of the same kind are an error.
    """
    segments = [segment.strip() for segment in text.strip().split("/")]
    if not segments or not segments[0]:
        raise ValueError("scenario spec is empty; expected at least a graph spec")
    graph_spec = segments[0]
    strategy: Optional[str] = None
    t: Optional[int] = None
    faults: Optional[FaultModel] = None
    for segment in segments[1:]:
        if not segment:
            raise ValueError(f"empty segment in scenario spec {text!r}")
        head = segment.partition(":")[0].strip().lower()
        if segment.startswith("t=") or segment.startswith("t "):
            if t is not None:
                raise ValueError(f"duplicate t= segment in {text!r}")
            raw = segment.partition("=")[2]
            try:
                t = int(raw)
            except ValueError:
                raise ValueError(f"t= expects an integer, got {raw!r}") from None
            continue
        if head in FAULT_KINDS:
            if faults is not None:
                raise ValueError(f"duplicate fault-model segment in {text!r}")
            faults = FaultModel.parse(segment)
            continue
        if segment == "auto" or segment in STRATEGIES:
            if strategy is not None:
                raise ValueError(f"duplicate strategy segment in {text!r}")
            strategy = segment
            continue
        raise ValueError(
            f"unrecognised scenario segment {segment!r}; expected a strategy "
            f"({sorted(STRATEGIES) + ['auto']}), t=<int>, or a fault model "
            f"({'/'.join(FAULT_KINDS)})"
        )
    return Scenario(
        graph_spec=graph_spec,
        strategy=strategy if strategy is not None else "auto",
        t=t,
        faults=faults if faults is not None else DEFAULT_FAULT_MODEL,
    )


def as_scenarios(specs: Iterable[Union[str, Scenario]]) -> List[Scenario]:
    """Normalise a mixed iterable of strings / scenarios into scenarios."""
    scenarios: List[Scenario] = []
    for spec in specs:
        scenarios.append(spec if isinstance(spec, Scenario) else parse_scenario(spec))
    return scenarios

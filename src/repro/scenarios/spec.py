"""Scenario specifications: named, parameterised, seedable workload specs.

A :class:`Scenario` bundles everything needed to reproduce one workload of
the paper's experiments — *which* network, *which* construction, *which*
fault process — into a single canonical string that every layer (CLI, suite
runner, campaign workers, benchmark JSON) consumes and emits:

.. code-block:: text

    hypercube:d=7/kernel/t=3/random:p=0.1
    circulant:n=200,offsets=1+2/kernel/sizes:1,2,3
    flower:t=2,k=9/circular/exhaustive:f=2

The string has ``/``-separated segments:

1. a **graph family spec** (mandatory, first) — parsed and canonicalised by
   :mod:`repro.graphs.registry`;
2. an optional **routing strategy** — any name accepted by
   :func:`repro.core.builder.build_routing` (default ``auto``);
3. an optional **fault parameter** ``t=<int>`` (default: derive from the
   graph's connectivity);
4. an optional **fault model** (default ``sizes:1,2,3``):

   * ``sizes:a,b,c`` — one campaign per fault-set size, uniform random sets;
   * ``random:p=<float>`` — one campaign whose fault sets fail each node
     independently with probability ``p`` (binomial sizes);
   * ``exhaustive:f=<int>`` — every fault set of size at most ``f``.

Segments 2–4 may appear in any order; each is recognised by its shape.
``parse_scenario`` and :meth:`Scenario.canonical` round-trip exactly:
``parse_scenario(s.canonical()) == s`` for every scenario, and parsing any
accepted spelling then re-canonicalising is idempotent.  Scenarios are
hashable values — they carry no graph or routing objects, which is what
makes them cheap to ship to campaign worker processes (workers rebuild the
workload deterministically from the string alone).

**Scenario grids** extend the same grammar with inclusive integer ranges
and strategy sets, so one spec sweeps a whole family (see
:class:`ScenarioGrid` / :func:`parse_grid`):

.. code-block:: text

    hypercube:d=3..8/kernel/t=1..3/sizes:1-5
    hypercube:d=3..5/kernel|circular/t=1..2/sizes:1-3

``lo..hi`` sweeps named integer graph parameters and ``t``;
``kernel|circular`` sweeps routing strategies (the axis of the paper's
side-by-side comparison tables); ``sizes:a-b`` expands to the size list
``a,a+1,...,b`` within each scenario.  Every plain scenario string is a
one-scenario grid.
"""

from __future__ import annotations

import dataclasses
import itertools
import re
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.builder import STRATEGIES, available_strategies, build_routing
from repro.core.construction import ConstructionResult
from repro.graphs.graph import Graph
from repro.graphs.registry import (
    GRAPH_FAMILIES,
    canonical_graph_spec,
    family_by_name,
    parse_graph_spec,
)

#: Fault-model kinds understood by the scenario grammar.
FAULT_KINDS = ("sizes", "random", "exhaustive")


def _strategy_listing() -> str:
    """Render the known strategy names for error messages (sorted, with auto).

    One shared helper so the scenario parser, the grid parser and
    :class:`Scenario` validation all show the identical, cleanly formatted
    listing (:func:`repro.core.builder.available_strategies` sorts ``auto``
    into place rather than appending it).
    """
    return ", ".join(available_strategies())


@dataclasses.dataclass(frozen=True)
class FaultModel:
    """The fault process of a scenario (see the module docstring grammar)."""

    kind: str
    sizes: Tuple[int, ...] = ()
    p: float = 0.0
    max_faults: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault model {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.kind == "sizes":
            if not self.sizes:
                raise ValueError("fault model 'sizes' needs at least one size")
            if any(size < 0 for size in self.sizes):
                raise ValueError("fault-set sizes must be non-negative")
        if self.kind == "random" and not 0.0 <= self.p <= 1.0:
            raise ValueError("fault probability p must lie in [0, 1]")
        if self.kind == "exhaustive" and self.max_faults < 0:
            raise ValueError("exhaustive fault bound f must be non-negative")

    def canonical(self) -> str:
        """Render the fault model segment of the canonical scenario string."""
        if self.kind == "sizes":
            return "sizes:" + ",".join(str(size) for size in self.sizes)
        if self.kind == "random":
            return f"random:p={format(self.p, 'g')}"
        return f"exhaustive:f={self.max_faults}"

    @staticmethod
    def parse(segment: str) -> "FaultModel":
        """Parse one ``kind:args`` fault-model segment."""
        kind, _, argument_text = segment.partition(":")
        kind = kind.strip().lower()
        if kind == "sizes":
            try:
                sizes = tuple(
                    int(token)
                    for token in argument_text.split(",")
                    if token.strip()
                )
            except ValueError:
                raise ValueError(
                    f"fault model 'sizes' expects integers, got {argument_text!r}"
                ) from None
            return FaultModel("sizes", sizes=sizes)
        if kind == "random":
            key, _, raw = argument_text.partition("=")
            if key.strip() != "p":
                raise ValueError(
                    f"fault model 'random' expects p=<float>, got {argument_text!r}"
                )
            try:
                p = float(raw)
            except ValueError:
                raise ValueError(
                    f"fault model 'random' expects p=<float>, got {argument_text!r}"
                ) from None
            return FaultModel("random", p=p)
        if kind == "exhaustive":
            key, _, raw = argument_text.partition("=")
            if key.strip() != "f":
                raise ValueError(
                    f"fault model 'exhaustive' expects f=<int>, got {argument_text!r}"
                )
            try:
                max_faults = int(raw)
            except ValueError:
                raise ValueError(
                    f"fault model 'exhaustive' expects f=<int>, got {argument_text!r}"
                ) from None
            return FaultModel("exhaustive", max_faults=max_faults)
        raise ValueError(f"unknown fault model {kind!r}")


#: Default fault model when a scenario omits the segment.
DEFAULT_FAULT_MODEL = FaultModel("sizes", sizes=(1, 2, 3))


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One fully-specified workload: graph family + construction + faults.

    ``graph_spec`` is always stored in canonical form, so two scenarios are
    equal iff their canonical strings are equal.
    """

    graph_spec: str
    strategy: str = "auto"
    t: Optional[int] = None
    faults: FaultModel = DEFAULT_FAULT_MODEL

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "graph_spec", canonical_graph_spec(self.graph_spec)
        )
        if self.strategy != "auto" and self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown routing strategy {self.strategy!r}; available: "
                f"{_strategy_listing()}"
            )
        if self.t is not None and self.t < 0:
            raise ValueError("fault parameter t must be non-negative")

    def canonical(self) -> str:
        """Return the canonical scenario string (round-trips via parse)."""
        segments = [self.graph_spec, self.strategy]
        if self.t is not None:
            segments.append(f"t={self.t}")
        segments.append(self.faults.canonical())
        return "/".join(segments)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()

    # ------------------------------------------------------------------
    # Workload construction
    # ------------------------------------------------------------------
    def build_graph(self) -> Graph:
        """Build the scenario's graph (deterministic for a fixed spec)."""
        return parse_graph_spec(self.graph_spec)

    def build(self) -> Tuple[Graph, ConstructionResult]:
        """Build the graph and its routing.

        Construction is bit-for-bit deterministic (hash-seed independent),
        so any process that builds the same scenario obtains a routing with
        the same :meth:`~repro.core.construction.ConstructionResult
        .fingerprint` — campaign workers rely on this to rebuild workloads
        locally from the canonical string alone.
        """
        graph = self.build_graph()
        result = build_routing(graph, strategy=self.strategy, t=self.t)
        return graph, result


def parse_scenario(text: str) -> Scenario:
    """Parse a scenario string (see the module docstring for the grammar).

    The graph spec must come first; the strategy, ``t=`` and fault-model
    segments are recognised by shape and may appear in any order.  Repeated
    segments of the same kind are an error.
    """
    segments = [segment.strip() for segment in text.strip().split("/")]
    if not segments or not segments[0]:
        raise ValueError("scenario spec is empty; expected at least a graph spec")
    graph_spec = segments[0]
    strategy: Optional[str] = None
    t: Optional[int] = None
    faults: Optional[FaultModel] = None
    for segment in segments[1:]:
        if not segment:
            raise ValueError(f"empty segment in scenario spec {text!r}")
        head = segment.partition(":")[0].strip().lower()
        if segment.startswith("t=") or segment.startswith("t "):
            if t is not None:
                raise ValueError(f"duplicate t= segment in {text!r}")
            raw = segment.partition("=")[2]
            try:
                t = int(raw)
            except ValueError:
                raise ValueError(f"t= expects an integer, got {raw!r}") from None
            continue
        if head in FAULT_KINDS:
            if faults is not None:
                raise ValueError(f"duplicate fault-model segment in {text!r}")
            faults = FaultModel.parse(segment)
            continue
        if segment == "auto" or segment in STRATEGIES:
            if strategy is not None:
                raise ValueError(f"duplicate strategy segment in {text!r}")
            strategy = segment
            continue
        if "|" in segment:
            raise ValueError(
                f"strategy set {segment!r} is grid syntax; a scenario names "
                "exactly one strategy — sweep strategy sets with parse_grid "
                "/ `repro grid`"
            )
        raise ValueError(
            f"unrecognised scenario segment {segment!r}; expected a strategy "
            f"({_strategy_listing()}), t=<int>, or a fault model "
            f"({', '.join(FAULT_KINDS)})"
        )
    return Scenario(
        graph_spec=graph_spec,
        strategy=strategy if strategy is not None else "auto",
        t=t,
        faults=faults if faults is not None else DEFAULT_FAULT_MODEL,
    )


def as_scenarios(specs: Iterable[Union[str, Scenario]]) -> List[Scenario]:
    """Normalise a mixed iterable of strings / scenarios into scenarios."""
    scenarios: List[Scenario] = []
    for spec in specs:
        scenarios.append(spec if isinstance(spec, Scenario) else parse_scenario(spec))
    return scenarios


# ----------------------------------------------------------------------
# Scenario grids: one spec sweeping whole parameter ranges
# ----------------------------------------------------------------------
#: ``lo..hi`` integer range token (both endpoints mandatory and integral).
_RANGE_RE = re.compile(r"^(-?\d+)\.\.(-?\d+)$")
#: ``lo-hi`` shorthand inside ``sizes:`` lists (sizes are non-negative).
_SIZES_RANGE_RE = re.compile(r"^(\d+)-(\d+)$")


@dataclasses.dataclass(frozen=True)
class Range:
    """An inclusive integer sweep axis ``lo..hi`` of a scenario grid.

    Always a genuine sweep: single-point ranges (``3..3``) collapse to plain
    values at parse time, so ``lo < hi`` holds for every stored range.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise ValueError(
                f"range {self.lo}..{self.hi} is not ascending; single values "
                "should be written plainly"
            )

    def values(self) -> Tuple[int, ...]:
        """Return the swept values in ascending order."""
        return tuple(range(self.lo, self.hi + 1))

    def canonical(self) -> str:
        return f"{self.lo}..{self.hi}"


def _parse_range_token(raw: str, context: str) -> Tuple[int, int]:
    """Parse one ``lo..hi`` token, rejecting malformed and reversed forms."""
    match = _RANGE_RE.match(raw)
    if match is None:
        raise ValueError(
            f"{context} has a malformed range {raw!r}; expected lo..hi with "
            "two integers (e.g. 3..8)"
        )
    lo, hi = int(match.group(1)), int(match.group(2))
    if lo > hi:
        raise ValueError(
            f"{context} has a reversed range {raw!r}; write {hi}..{lo}"
        )
    return lo, hi


def _range_or_value(raw: str, context: str) -> Union[int, Range]:
    lo, hi = _parse_range_token(raw, context)
    return lo if lo == hi else Range(lo, hi)


@dataclasses.dataclass(frozen=True)
class ScenarioGrid:
    """A rectangular sweep of scenarios in one spec string.

    The grid grammar is the scenario grammar plus inclusive integer ranges
    and strategy sets:

    .. code-block:: text

        hypercube:d=3..8/kernel/t=1..3/sizes:1-5
        hypercube:d=3..5/kernel|circular/t=1..2/sizes:1-3
        circulant:n=16..24,offsets=1+2/kernel/random:p=0.1
        torus:rows=3..5,cols=4/circular/t=2

    ``lo..hi`` sweeps any named integer graph parameter and the fault
    parameter ``t``; ``a|b|c`` in the strategy segment sweeps routing
    strategies — the axis of the paper's kernel-vs-circular comparison
    tables — expanding one scenario per strategy in written order (the
    rendered comparison table sorts its column groups by strategy name);
    ``sizes:a-b`` is list shorthand expanding to ``sizes:a,a+1,...,b``
    *within* each scenario (fault-set sizes are rows of one campaign table,
    not separate grid cells).  A spec without any range is a one-scenario
    grid, so every valid scenario string is also a valid grid string.

    :meth:`scenarios` expands the axes in declared parameter order with
    ``t`` varying fastest and the strategy axis just above it; the
    expansion is a pure function of the canonical grid string, which is
    what makes grid campaigns resumable (row keys are stable across runs).
    """

    family: str
    #: Every family parameter in declared order; swept parameters hold a
    #: :class:`Range`, fixed ones their concrete value.
    graph_values: Tuple[Tuple[str, object], ...]
    #: One strategy name, or a tuple of them (a swept strategy axis).
    strategy: Union[str, Tuple[str, ...]] = "auto"
    t: Union[None, int, Range] = None
    faults: FaultModel = DEFAULT_FAULT_MODEL

    def strategies(self) -> Tuple[str, ...]:
        """Return the strategy axis values (a single strategy is one value)."""
        if isinstance(self.strategy, tuple):
            return self.strategy
        return (self.strategy,)

    def axes(self) -> List[Tuple[str, Tuple[object, ...]]]:
        """Return the sweep axes as ``(label, values)`` in expansion order."""
        axes: List[Tuple[str, Tuple[object, ...]]] = []
        for name, value in self.graph_values:
            if isinstance(value, Range):
                axes.append((name, value.values()))
        if isinstance(self.strategy, tuple):
            axes.append(("strategy", self.strategy))
        if isinstance(self.t, Range):
            axes.append(("t", self.t.values()))
        return axes

    def __len__(self) -> int:
        total = 1
        for _, values in self.axes():
            total *= len(values)
        return total

    def scenarios(self) -> List[Scenario]:
        """Expand the grid into its scenario list (deterministic order)."""
        family = GRAPH_FAMILIES[self.family]
        graph_axes = [
            (name, value.values())
            for name, value in self.graph_values
            if isinstance(value, Range)
        ]
        fixed = {
            name: value
            for name, value in self.graph_values
            if not isinstance(value, Range)
        }
        t_values: Tuple[Union[None, int], ...]
        if isinstance(self.t, Range):
            t_values = self.t.values()
        else:
            t_values = (self.t,)
        scenarios: List[Scenario] = []
        for combo in itertools.product(*(values for _, values in graph_axes)):
            values = dict(fixed)
            values.update(
                {name: value for (name, _), value in zip(graph_axes, combo)}
            )
            spec = family.canonical(values)
            for strategy in self.strategies():
                for t in t_values:
                    scenarios.append(
                        Scenario(
                            graph_spec=spec,
                            strategy=strategy,
                            t=t,
                            faults=self.faults,
                        )
                    )
        return scenarios

    def canonical(self) -> str:
        """Return the canonical grid string (idempotent under re-parsing)."""
        family = GRAPH_FAMILIES[self.family]
        if family.params:
            by_name = {param.name: param for param in family.params}
            rendered = ",".join(
                f"{name}="
                + (
                    value.canonical()
                    if isinstance(value, Range)
                    else by_name[name].format(value)
                )
                for name, value in self.graph_values
            )
            graph = f"{self.family}:{rendered}"
        else:
            graph = self.family
        segments = [graph, "|".join(self.strategies())]
        if self.t is not None:
            rendered_t = (
                self.t.canonical() if isinstance(self.t, Range) else str(self.t)
            )
            segments.append(f"t={rendered_t}")
        segments.append(self.faults.canonical())
        return "/".join(segments)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.canonical()


def _parse_grid_graph_segment(
    segment: str,
) -> Tuple[str, Tuple[Tuple[str, object], ...]]:
    """Parse the graph segment of a grid spec, extracting range axes."""
    name, _, argument_text = segment.partition(":")
    family = family_by_name(name.strip().lower())
    tokens = argument_text.split(",") if argument_text else []
    ranges: Dict[str, Union[int, Range]] = {}
    base_tokens: List[str] = []
    for token in tokens:
        stripped = token.strip()
        if ".." in stripped:
            key, equals, raw = stripped.partition("=")
            key = key.strip()
            if not equals or ".." in key:
                raise ValueError(
                    f"range token {stripped!r} must use the named form "
                    "key=lo..hi (e.g. d=3..8)"
                )
            value = _range_or_value(
                raw.strip(), context=f"parameter {key!r} of {family.name!r}"
            )
            ranges[key] = value
            # Substitute the low endpoint so the family parser validates the
            # parameter name, kind and duplicate use exactly as usual.
            low = value.lo if isinstance(value, Range) else value
            base_tokens.append(f"{key}={low}")
        else:
            base_tokens.append(token)
    try:
        values = family.parse_arguments(base_tokens)
    except (ValueError, TypeError) as exc:
        raise ValueError(
            f"invalid arguments for graph family {family.name!r}: {exc}"
        ) from exc
    by_name = {param.name: param for param in family.params}
    for key in ranges:
        if by_name[key].kind != "int":
            raise ValueError(
                f"parameter {key!r} of {family.name!r} is "
                f"{by_name[key].kind}; only integer parameters can be swept"
            )
    graph_values = tuple(
        (param.name, ranges.get(param.name, values[param.name]))
        for param in family.params
    )
    return family.name, graph_values


def _parse_strategy_set(segment: str) -> Tuple[str, ...]:
    """Parse a ``a|b|c`` strategy-set segment of a grid spec.

    Written order is preserved — it fixes the expansion order and therefore
    the store row order (comparison-table *columns* are sorted by strategy
    name at render time); duplicates and unknown names are rejected.
    """
    tokens = [token.strip() for token in segment.split("|")]
    if any(not token for token in tokens):
        raise ValueError(
            f"strategy set {segment!r} has an empty member; write e.g. "
            "kernel|circular"
        )
    seen: Dict[str, None] = {}
    for token in tokens:
        if token != "auto" and token not in STRATEGIES:
            raise ValueError(
                f"unknown routing strategy {token!r} in strategy set "
                f"{segment!r}; available: {_strategy_listing()}"
            )
        if token in seen:
            raise ValueError(
                f"strategy set {segment!r} lists {token!r} more than once"
            )
        seen[token] = None
    return tuple(tokens)


def _parse_grid_fault_model(segment: str) -> FaultModel:
    """Parse a fault-model segment, expanding ``sizes:a-b`` shorthand."""
    kind = segment.partition(":")[0].strip().lower()
    if kind != "sizes":
        return FaultModel.parse(segment)
    sizes: List[int] = []
    for token in segment.partition(":")[2].split(","):
        token = token.strip()
        if not token:
            continue
        match = _SIZES_RANGE_RE.match(token)
        if match is not None:
            lo, hi = int(match.group(1)), int(match.group(2))
            if lo > hi:
                raise ValueError(
                    f"sizes range {token!r} is reversed; write {hi}-{lo}"
                )
            sizes.extend(range(lo, hi + 1))
            continue
        try:
            sizes.append(int(token))
        except ValueError:
            raise ValueError(
                f"fault model 'sizes' expects integers or lo-hi ranges, "
                f"got {token!r}"
            ) from None
    return FaultModel("sizes", sizes=tuple(sizes))


def parse_grid(text: str) -> ScenarioGrid:
    """Parse a scenario-grid string (see :class:`ScenarioGrid` for the grammar).

    Accepts every plain scenario string (a one-scenario grid) plus
    ``lo..hi`` ranges on named integer graph parameters and on ``t``, and
    ``a-b`` shorthand inside ``sizes:`` lists.  Like :func:`parse_scenario`,
    the graph segment comes first and the strategy / ``t=`` / fault-model
    segments are recognised by shape in any order.
    """
    segments = [segment.strip() for segment in text.strip().split("/")]
    if not segments or not segments[0]:
        raise ValueError("grid spec is empty; expected at least a graph spec")
    family, graph_values = _parse_grid_graph_segment(segments[0])
    strategy: Union[None, str, Tuple[str, ...]] = None
    t: Union[None, int, Range] = None
    faults: Optional[FaultModel] = None
    for segment in segments[1:]:
        if not segment:
            raise ValueError(f"empty segment in grid spec {text!r}")
        head = segment.partition(":")[0].strip().lower()
        if segment.startswith("t=") or segment.startswith("t "):
            if t is not None:
                raise ValueError(f"duplicate t= segment in {text!r}")
            raw = segment.partition("=")[2].strip()
            if ".." in raw:
                t = _range_or_value(raw, context="t")
                low = t.lo if isinstance(t, Range) else t
                if low < 0:
                    raise ValueError("fault parameter t must be non-negative")
            else:
                try:
                    t = int(raw)
                except ValueError:
                    raise ValueError(
                        f"t= expects an integer or lo..hi range, got {raw!r}"
                    ) from None
            continue
        if head in FAULT_KINDS:
            if faults is not None:
                raise ValueError(f"duplicate fault-model segment in {text!r}")
            faults = _parse_grid_fault_model(segment)
            continue
        if segment == "auto" or segment in STRATEGIES:
            if strategy is not None:
                raise ValueError(f"duplicate strategy segment in {text!r}")
            strategy = segment
            continue
        if "|" in segment:
            if strategy is not None:
                raise ValueError(f"duplicate strategy segment in {text!r}")
            strategies = _parse_strategy_set(segment)
            strategy = strategies if len(strategies) > 1 else strategies[0]
            continue
        raise ValueError(
            f"unrecognised grid segment {segment!r}; expected a strategy "
            f"({_strategy_listing()}) or a|b strategy set, t=<int|lo..hi>, "
            f"or a fault model ({', '.join(FAULT_KINDS)})"
        )
    grid = ScenarioGrid(
        family=family,
        graph_values=graph_values,
        strategy=strategy if strategy is not None else "auto",
        t=t,
        faults=faults if faults is not None else DEFAULT_FAULT_MODEL,
    )
    # Validate every concrete scenario eagerly (t >= 0, strategy known, the
    # graph spec canonicalises) so malformed grids fail at parse time, not
    # mid-campaign.
    if isinstance(t, int) and t < 0:
        raise ValueError("fault parameter t must be non-negative")
    for name in grid.strategies():
        if name != "auto" and name not in STRATEGIES:
            raise ValueError(
                f"unknown routing strategy {name!r}; available: "
                f"{_strategy_listing()}"
            )
    return grid


def expand_grids(specs: Iterable[Union[str, Scenario, ScenarioGrid]]) -> List[Scenario]:
    """Expand a mixed iterable of grid/scenario specs into one scenario list.

    Order is preserved: each grid contributes its scenarios in expansion
    order, at its position in the input.
    """
    scenarios: List[Scenario] = []
    for spec in specs:
        if isinstance(spec, Scenario):
            scenarios.append(spec)
        elif isinstance(spec, ScenarioGrid):
            scenarios.extend(spec.scenarios())
        else:
            scenarios.extend(parse_grid(spec).scenarios())
    return scenarios

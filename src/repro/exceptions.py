"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by an operation is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class DisconnectedGraphError(GraphError):
    """An operation requiring a connected graph received a disconnected one."""


class RoutingError(ReproError):
    """Base class for errors raised while building or validating routings."""


class InvalidRouteError(RoutingError):
    """A route violates the model (not simple, wrong endpoints, not in G)."""


class ConflictingRouteError(RoutingError):
    """Two different routes were assigned to the same ordered pair of nodes."""


class ConstructionError(RoutingError):
    """A routing construction cannot be applied to the supplied graph.

    Raised, for instance, when the circular routing is requested for a graph
    that has no sufficiently large neighbourhood set, or when the bipolar
    routing is requested for a graph without the two-trees property.
    """


class PropertyNotSatisfiedError(ConstructionError):
    """The structural property required by a construction does not hold."""


class FaultModelError(ReproError):
    """Errors in fault-set specification (e.g. faulting a missing node)."""


class ServingError(ReproError):
    """Errors raised by the compiled routing-table serving layer."""


class ArtifactError(ServingError):
    """A compiled routing artifact cannot be written, read or trusted.

    Raised on malformed files, format-version mismatches, payload checksum
    failures (tampering or torn writes) and routing-fingerprint mismatches
    between an artifact and the construction it claims to serve.
    """


class SimulationError(ReproError):
    """Errors raised by the discrete-event network simulator."""


class DeliveryError(SimulationError):
    """A message could not be delivered (no surviving route sequence)."""

"""JSON (de)serialisation of graphs, routings and construction results.

In the system the paper envisions, the routing table is computed once
(offline, with as much effort as needed) and then *installed* on the network's
nodes.  This module provides the install format: a plain-JSON encoding of
graphs and route tables, plus loaders that reconstruct fully functional
:class:`~repro.graphs.graph.Graph` / :class:`~repro.core.routing.Routing`
objects, so a routing built by this library can be persisted, shipped and
audited independently of the code that produced it.

Node labels may be arbitrary hashable values in memory; on disk they are
encoded through a small tagging scheme (ints, strings, floats, booleans,
``None`` and — recursively — tuples of those), which covers every label the
library's generators produce.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Hashable, IO, List, Optional, Union

from repro.core.construction import ConstructionResult, Guarantee
from repro.core.routing import MultiRouting, Routing
from repro.exceptions import ReproError
from repro.graphs.graph import Graph

Node = Hashable

#: Format identifier embedded in every document this module writes.
FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Raised when a document cannot be encoded or decoded."""


# ----------------------------------------------------------------------
# Node label encoding
# ----------------------------------------------------------------------
def encode_node(node: Node) -> Any:
    """Encode a node label into a JSON-compatible tagged value."""
    if isinstance(node, bool) or node is None or isinstance(node, (int, float, str)):
        return node
    if isinstance(node, tuple):
        return {"__tuple__": [encode_node(item) for item in node]}
    raise SerializationError(
        f"node label {node!r} of type {type(node).__name__} cannot be serialised; "
        "supported labels are ints, floats, strings, booleans, None and tuples thereof"
    )


def decode_node(value: Any) -> Node:
    """Decode a node label written by :func:`encode_node`."""
    if isinstance(value, dict):
        if "__tuple__" not in value:
            raise SerializationError(f"unrecognised node encoding: {value!r}")
        return tuple(decode_node(item) for item in value["__tuple__"])
    return value


# ----------------------------------------------------------------------
# Graphs
# ----------------------------------------------------------------------
def graph_to_dict(graph: Graph) -> Dict[str, Any]:
    """Encode a graph as a JSON-compatible dictionary."""
    return {
        "format": FORMAT_VERSION,
        "kind": "graph",
        "name": graph.name,
        "nodes": [encode_node(node) for node in graph.nodes()],
        "edges": [[encode_node(u), encode_node(v)] for u, v in graph.edges()],
    }


def graph_from_dict(document: Dict[str, Any]) -> Graph:
    """Reconstruct a graph from :func:`graph_to_dict` output."""
    _check(document, "graph")
    graph = Graph(name=document.get("name", ""))
    for encoded in document.get("nodes", []):
        graph.add_node(decode_node(encoded))
    for encoded_u, encoded_v in document.get("edges", []):
        graph.add_edge(decode_node(encoded_u), decode_node(encoded_v))
    return graph


# ----------------------------------------------------------------------
# Routings
# ----------------------------------------------------------------------
def routing_to_dict(routing: Union[Routing, MultiRouting]) -> Dict[str, Any]:
    """Encode a routing (or multirouting) together with its underlying graph."""
    if isinstance(routing, MultiRouting):
        routes = [
            {
                "source": encode_node(source),
                "target": encode_node(target),
                "paths": [[encode_node(node) for node in path] for path in routing.get_routes(source, target)],
            }
            for source, target in routing.pairs()
        ]
        kind = "multirouting"
    else:
        routes = [
            {
                "source": encode_node(source),
                "target": encode_node(target),
                "paths": [[encode_node(node) for node in path]],
            }
            for (source, target), path in routing.items()
        ]
        kind = "routing"
    return {
        "format": FORMAT_VERSION,
        "kind": kind,
        "name": routing.name,
        "bidirectional": routing.bidirectional,
        "graph": graph_to_dict(routing.graph),
        "routes": routes,
    }


def routing_from_dict(document: Dict[str, Any], graph: Optional[Graph] = None) -> Union[Routing, MultiRouting]:
    """Reconstruct a routing from :func:`routing_to_dict` output.

    Parameters
    ----------
    graph:
        Optional pre-built graph to bind the routing to (must match the node /
        edge set recorded in the document); when omitted the embedded graph is
        used.
    """
    kind = document.get("kind")
    if kind not in ("routing", "multirouting"):
        raise SerializationError(f"document is not a routing (kind={kind!r})")
    _check(document, kind)
    underlying = graph if graph is not None else graph_from_dict(document["graph"])

    if kind == "multirouting":
        routing: Union[Routing, MultiRouting] = MultiRouting(
            underlying, bidirectional=False, name=document.get("name", "")
        )
    else:
        routing = Routing(underlying, bidirectional=False, name=document.get("name", ""))
    # Routes were materialised per ordered pair at save time (the symmetric
    # closure is already explicit), so the reconstruction is always stored as
    # unidirectional entries and the original bidirectional flag is restored
    # afterwards for metadata purposes.
    for entry in document.get("routes", []):
        source = decode_node(entry["source"])
        target = decode_node(entry["target"])
        for encoded_path in entry["paths"]:
            path = [decode_node(node) for node in encoded_path]
            if isinstance(routing, MultiRouting):
                routing.add_route(source, target, path)
            else:
                routing.set_route(source, target, path)
    routing.bidirectional = bool(document.get("bidirectional", False))
    return routing


# ----------------------------------------------------------------------
# Construction results
# ----------------------------------------------------------------------
def construction_to_dict(result: ConstructionResult) -> Dict[str, Any]:
    """Encode a construction result (routing + guarantee + concentrator).

    Only JSON-encodable details are preserved (numbers, strings, lists of node
    labels); complex detail values such as embedded graphs are dropped.
    """
    details: Dict[str, Any] = {}
    for key, value in result.details.items():
        try:
            details[key] = _encode_detail(value)
        except SerializationError:
            continue
    return {
        "format": FORMAT_VERSION,
        "kind": "construction",
        "scheme": result.scheme,
        "t": result.t,
        "guarantee": {
            "diameter_bound": result.guarantee.diameter_bound,
            "max_faults": result.guarantee.max_faults,
            "source": result.guarantee.source,
        },
        "concentrator": [encode_node(node) for node in result.concentrator],
        "details": details,
        "routing": routing_to_dict(result.routing),
    }


def construction_from_dict(document: Dict[str, Any]) -> ConstructionResult:
    """Reconstruct a construction result from :func:`construction_to_dict` output."""
    _check(document, "construction")
    routing = routing_from_dict(document["routing"])
    guarantee_doc = document.get("guarantee", {})
    return ConstructionResult(
        routing=routing,
        scheme=document.get("scheme", "unknown"),
        t=int(document.get("t", 0)),
        guarantee=Guarantee(
            diameter_bound=guarantee_doc.get("diameter_bound", 0),
            max_faults=guarantee_doc.get("max_faults", 0),
            source=guarantee_doc.get("source", ""),
        ),
        concentrator=[decode_node(node) for node in document.get("concentrator", [])],
        details=document.get("details", {}),
    )


def _encode_detail(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_encode_detail(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _encode_detail(item) for key, item in value.items()}
    raise SerializationError(f"detail value {value!r} is not JSON-encodable")


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def save_json(document: Dict[str, Any], target: Union[str, IO[str]]) -> None:
    """Write a document produced by the ``*_to_dict`` functions to a file or stream."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
    else:
        json.dump(document, target, indent=2, sort_keys=True)


def load_json(source: Union[str, IO[str]]) -> Dict[str, Any]:
    """Read a document previously written by :func:`save_json`."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return json.load(source)


def _check(document: Dict[str, Any], expected_kind: str) -> None:
    if document.get("format") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {document.get('format')!r} "
            f"(this library writes version {FORMAT_VERSION})"
        )
    if document.get("kind") != expected_kind:
        raise SerializationError(
            f"expected a {expected_kind!r} document, found {document.get('kind')!r}"
        )

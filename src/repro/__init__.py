"""repro — fault-tolerant routings for general networks.

A production-quality reproduction of

    David Peleg and Barbara Simons,
    "On Fault Tolerant Routings in General Networks",
    PODC 1986 / Information and Computation 74:33-49 (1987).

The package is organised as follows:

* :mod:`repro.graphs`   — self-contained graph substrate (graphs, connectivity,
  disjoint paths, separators, structural properties, generators);
* :mod:`repro.core`     — the paper's constructions: kernel, circular,
  tri-circular and bipolar routings, multiroutings, network augmentation,
  surviving route graphs, ``(d, f)``-tolerance checking, and
  :class:`~repro.core.route_index.RouteIndex`, the bitset evaluation kernel
  (one big-int adjacency row per node) that turns each fault-set evaluation
  into machine-word ``&``/``|`` operations, answers bounded-diameter
  decisions (:func:`~repro.core.surviving.surviving_diameter_at_most`) with
  early exit, and serves delta-aware
  :class:`~repro.core.route_index.EvalCursor` snapshots for prefix-sharing
  fault-set searches;
* :mod:`repro.faults`   — fault models, adversarial fault-set search,
  Monte-Carlo fault-injection campaigns, and
  :class:`~repro.faults.engine.CampaignEngine`, the indexed campaign runner
  that shards fault batteries across a ``multiprocessing`` pool with
  deterministic per-shard seeding (same seed => same rows for any worker
  count) and streaming, bounded-memory aggregation;
* :mod:`repro.network`  — a small discrete-event message-passing simulator
  that runs the routings as a real network would (fixed source routes,
  endpoint services, route-counter broadcast for table recomputation);
* :mod:`repro.scenarios` — named, parameterised, seedable workload specs
  (``hypercube:d=7/kernel/t=3/random:p=0.1``) and the scenario-suite runner
  that shards campaigns across scenarios as well as within batteries,
  rebuilding each workload deterministically in the workers (fingerprints
  verified cross-process);
* :mod:`repro.results` — the unified columnar result store
  (:class:`~repro.results.frame.ResultFrame` + JSONL
  :class:`~repro.results.store.ResultStore` with run manifests): every
  campaign, suite and experiment emits the same typed records, grid sweeps
  resume from a stored prefix without recomputing completed rows, and the
  reporting layer renders paper-style scaling tables straight from a store;
* :mod:`repro.analysis` — experiment runners and report formatting used by
  the benchmark suite and the examples.

Quickstart::

    from repro import build_routing, surviving_diameter
    from repro.graphs import generators

    graph = generators.hypercube_graph(4)
    result = build_routing(graph)            # picks the strongest construction
    print(result.describe())
    print(surviving_diameter(graph, result.routing, faults={0, 3, 5}))

Campaigns at scale go through the engine (``repro campaign`` on the command
line)::

    from repro import CampaignEngine

    engine = CampaignEngine(graph, result.routing, workers=4)
    for row in engine.sweep_fault_sizes([1, 2, 3], samples=200, seed=0):
        print(row.as_row())
"""

from repro.core import (
    ConstructionResult,
    Guarantee,
    MultiRouting,
    RouteIndex,
    Routing,
    ToleranceReport,
    bidirectional_bipolar_routing,
    build_routing,
    check_tolerance,
    circular_routing,
    clique_augmented_kernel_routing,
    full_multirouting,
    kernel_multirouting,
    kernel_routing,
    single_tree_multirouting,
    surviving_diameter,
    surviving_diameter_at_most,
    surviving_route_graph,
    tricircular_routing,
    unidirectional_bipolar_routing,
    verify_construction,
)
from repro.graphs import Graph, DiGraph
from repro.faults import CampaignEngine, CampaignResult, DecisionCampaignResult, FaultSet
from repro.results import ResultFrame, ResultStore, result_frame
from repro.scenarios import (
    Scenario,
    ScenarioGrid,
    parse_grid,
    parse_scenario,
    run_scenario_suite,
)

__version__ = "1.0.0"

__all__ = [
    "ConstructionResult",
    "Guarantee",
    "MultiRouting",
    "RouteIndex",
    "Routing",
    "ToleranceReport",
    "bidirectional_bipolar_routing",
    "build_routing",
    "check_tolerance",
    "circular_routing",
    "clique_augmented_kernel_routing",
    "full_multirouting",
    "kernel_multirouting",
    "kernel_routing",
    "single_tree_multirouting",
    "surviving_diameter",
    "surviving_diameter_at_most",
    "surviving_route_graph",
    "tricircular_routing",
    "unidirectional_bipolar_routing",
    "verify_construction",
    "Graph",
    "DiGraph",
    "CampaignEngine",
    "CampaignResult",
    "DecisionCampaignResult",
    "FaultSet",
    "ResultFrame",
    "ResultStore",
    "Scenario",
    "ScenarioGrid",
    "parse_grid",
    "parse_scenario",
    "result_frame",
    "run_scenario_suite",
    "__version__",
]

"""Fault-set generation strategies: exhaustive, random, targeted, greedy.

The tolerance theorems are worst-case statements over *all* fault sets of
bounded size.  Exhaustive enumeration is exact but only feasible for small
graphs and small ``f``; for larger instances the library combines

* random sampling (an unbiased but weak adversary),
* *targeted* fault sets aimed at the structures the constructions rely on —
  subsets of the concentrator, subsets of a single node's neighbourhood,
  subsets of the nodes on one node's tree routing — which in practice are the
  fault patterns that realise the worst surviving diameters, and
* a greedy adversarial search that grows a fault set one node at a time,
  always picking the node whose failure increases the surviving diameter the
  most.
"""

from __future__ import annotations

import itertools
import random as _random
from typing import Callable, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.core.route_index import EVAL_BACKEND_NUMPY
from repro.core.routing import MultiRouting, Routing
from repro.faults.models import FaultSet
from repro.graphs.graph import Graph

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]
RandomLike = Union[int, _random.Random, None]


def _rng(seed: RandomLike) -> _random.Random:
    if isinstance(seed, _random.Random):
        return seed
    return _random.Random(seed)


# ----------------------------------------------------------------------
# Exhaustive enumeration
# ----------------------------------------------------------------------
def all_fault_sets(
    nodes: Iterable[Node], max_size: int, include_smaller: bool = True
) -> Iterator[FaultSet]:
    """Yield every fault set of size at most (or exactly) ``max_size``.

    The surviving diameter is *not* monotone in the fault set (removing an
    extra node may delete the very pair of nodes realising the worst
    distance), so a sound exhaustive check must consider all sizes up to the
    bound, which is the default.
    """
    node_list = sorted(nodes, key=repr)
    sizes = range(0, max_size + 1) if include_smaller else range(max_size, max_size + 1)
    for size in sizes:
        for combo in itertools.combinations(node_list, size):
            yield FaultSet(combo, description=f"exhaustive size {size}")


def count_fault_sets(n: int, max_size: int, include_smaller: bool = True) -> int:
    """Return how many fault sets :func:`all_fault_sets` would yield."""
    import math

    sizes = range(0, max_size + 1) if include_smaller else [max_size]
    return sum(math.comb(n, size) for size in sizes)


# ----------------------------------------------------------------------
# Random sampling
# ----------------------------------------------------------------------
def random_fault_sets(
    nodes: Iterable[Node],
    size: int,
    count: int,
    seed: RandomLike = None,
    exclude: Iterable[Node] = (),
) -> Iterator[FaultSet]:
    """Yield ``count`` uniformly random fault sets of exactly ``size`` nodes."""
    pool = [node for node in sorted(nodes, key=repr) if node not in set(exclude)]
    if size > len(pool):
        return
    rng = _rng(seed)
    for index in range(count):
        yield FaultSet(rng.sample(pool, size), description=f"random #{index}")


# ----------------------------------------------------------------------
# Targeted (structure-aware) fault sets
# ----------------------------------------------------------------------
def targeted_fault_sets(
    graph: Graph,
    size: int,
    concentrator: Sequence[Node] = (),
    routing: Optional[AnyRouting] = None,
    per_target_limit: int = 64,
) -> Iterator[FaultSet]:
    """Yield fault sets aimed at the routing's weak points.

    Three families of candidates are produced (each capped at
    ``per_target_limit`` sets to keep the total manageable):

    1. subsets of the concentrator ``M`` — killing concentrator members
       stresses Properties CIRC 2 / T-CIRC / B-POL 4;
    2. subsets of a single node's neighbour set — killing a node's neighbours
       is how an adversary isolates it, the situation Lemma 1 defends against;
    3. for a given routing, subsets of the nodes appearing on some node's
       routes (excluding the node itself), which attacks its tree routing.
    """
    emitted = 0
    concentrator_list = [node for node in concentrator if graph.has_node(node)]
    if len(concentrator_list) >= size and size > 0:
        for combo in itertools.islice(
            itertools.combinations(sorted(concentrator_list, key=repr), size),
            per_target_limit,
        ):
            yield FaultSet(combo, description="targeted: concentrator subset")
            emitted += 1

    if size > 0:
        by_degree = sorted(graph.nodes(), key=lambda n: (-graph.degree(n), repr(n)))
        for victim in by_degree[:per_target_limit]:
            neighbors = sorted(graph.neighbors(victim), key=repr)
            if len(neighbors) < size:
                continue
            yield FaultSet(
                neighbors[:size], description=f"targeted: neighbours of {victim!r}"
            )

    if routing is not None and size > 0:
        pairs = routing.pairs()
        seen_sources: Set[Node] = set()
        for source, target in pairs:
            if source in seen_sources:
                continue
            seen_sources.add(source)
            if len(seen_sources) > per_target_limit:
                break
            on_routes: Set[Node] = set()
            if isinstance(routing, MultiRouting):
                for path in routing.get_routes(source, target):
                    on_routes.update(path)
            else:
                path = routing.get_route(source, target)
                if path:
                    on_routes.update(path)
            on_routes.discard(source)
            candidates = sorted(on_routes, key=repr)
            if len(candidates) >= size:
                yield FaultSet(
                    candidates[:size], description=f"targeted: routes of {source!r}"
                )


# ----------------------------------------------------------------------
# Greedy adversarial search
# ----------------------------------------------------------------------
def _select_round(candidates, trials, incumbent):
    """Fold exact ``(node, cursor, diameter)`` trials into the round's choice.

    This is the greedy selection rule both evaluation paths share: the
    first candidate realising the largest *finite* diameter wins while it
    strictly improves the incumbent (or when nothing disconnects); otherwise
    the first disconnecting candidate wins; otherwise the round is a dead
    end.  Returns ``(chosen node or None, cursor, incumbent)``.
    """
    inf = float("inf")
    best_node = best_cursor = None
    best_finite = -1.0
    inf_node = inf_cursor = None
    for node, (trial, diam) in zip(candidates, trials):
        if diam == inf:
            if inf_node is None:
                inf_node, inf_cursor = node, trial
        elif diam > best_finite:
            best_finite, best_node, best_cursor = diam, node, trial
    if best_node is not None and (best_finite > incumbent or inf_node is None):
        return best_node, best_cursor, best_finite
    if inf_node is not None:
        return inf_node, inf_cursor, inf
    return None, None, incumbent


def _sequential_round(cursor, candidates, incumbent):
    """Reference evaluation: one uncapped cursor evaluation per candidate."""
    trials = []
    for node in candidates:
        trial = cursor.with_added(node)
        trials.append((trial, trial.diameter()))
    return _select_round(candidates, trials, incumbent)


def _batched_round(cursor, candidates, incumbent):
    """Batched evaluation with incumbent-cap pruning.

    Phase 1 evaluates every candidate in one batch capped at the incumbent
    diameter: candidates proven unable to matter at this cap abort their
    BFS lanes early, and finite results are exact.  Phase 2 re-evaluates
    only the survivors (``inf`` at the cap: disconnected, or better than
    the incumbent) uncapped, again as one batch.  Every candidate therefore
    ends up with its *exact* uncapped diameter — a capped ``inf`` is either
    a true ``inf`` or a finite value strictly above the cap, and every
    value at or below the cap is returned exactly — so feeding the merged
    results through the shared selection rule provably reproduces the
    sequential choice (same first-max finite candidate, same first
    disconnecting candidate, byte-identical fault sets).

    The cap is only applied on the vectorised backend, where capped lanes
    abort as whole BFS levels.  The bitset loop gains nothing from a cap
    that most candidates sit below, and would pay twice for every capped
    survivor — so it batches uncapped (phase 2 then finds its answers
    already memoised).  Either way the selection sees the same exact
    values, so the choice of backend never changes the picked fault set.
    """
    inf = float("inf")
    cap = None if incumbent == inf else incumbent
    if cap is not None and cursor._index.eval_backend != EVAL_BACKEND_NUMPY:
        cap = None
    trials = cursor.batch_with_added(candidates, cap=cap)
    if cap is not None:
        survivors = [
            node
            for node, (_trial, value) in zip(candidates, trials)
            if value == inf
        ]
        if survivors:
            exact = dict(
                zip(survivors, cursor.batch_with_added(survivors, cap=None))
            )
            trials = [
                exact.get(node, trial)
                for node, trial in zip(candidates, trials)
            ]
    return _select_round(candidates, trials, incumbent)


def _greedy_rounds(
    index,
    node_order: Sequence[Node],
    size: int,
    candidate_limit: int,
    rng: _random.Random,
    batched: bool,
) -> Set[Node]:
    """Run the greedy growth loop over an index; returns the fault set."""
    faults: Set[Node] = set()
    cursor = index.cursor(())
    incumbent = cursor.diameter()
    for _ in range(size):
        remaining = [node for node in node_order if node not in faults]
        if not remaining:
            break
        if len(remaining) > candidate_limit:
            candidates = rng.sample(remaining, candidate_limit)
        else:
            candidates = remaining
        if batched:
            chosen, chosen_cursor, incumbent = _batched_round(
                cursor, candidates, incumbent
            )
        else:
            chosen, chosen_cursor, incumbent = _sequential_round(
                cursor, candidates, incumbent
            )
        if chosen is None:
            break
        cursor = chosen_cursor
        faults.add(chosen)
    return faults


def greedy_adversarial_fault_set(
    graph: Graph,
    routing: AnyRouting,
    size: int,
    candidate_limit: int = 40,
    seed: RandomLike = None,
    index=None,
    batched: bool = True,
) -> FaultSet:
    """Grow a fault set greedily, maximising the surviving diameter at each step.

    At every step the candidate nodes (a random subset of the non-faulty
    nodes, capped at ``candidate_limit`` for tractability) are evaluated by
    the surviving diameter they would produce if added; the best one is kept.
    A candidate with the largest *finite* diameter wins as long as it
    strictly improves on the incumbent diameter; when no finite candidate
    improves any more, a disconnecting candidate (infinite diameter) is
    preferred — for ``size`` above the connectivity, ``inf`` is the true
    worst case and the search must not settle for a finite plateau.

    This is a heuristic lower bound on the true worst case, useful for larger
    graphs where exhaustive enumeration is infeasible.  Candidates are
    evaluated through a delta-aware :class:`~repro.core.route_index
    .EvalCursor` over ``index`` (built here when not supplied): the cursor
    for the incumbent fault set is updated per candidate by touching only
    the rows indexed under that candidate, so the ``size * candidate_limit``
    prefix-sharing evaluations never rebuild the surviving graph from
    scratch.

    With ``batched`` (the default) each round is evaluated through
    :meth:`~repro.core.route_index.EvalCursor.batch_with_added` with
    incumbent-cap pruning — on the numpy backend the whole candidate round
    advances as one packed BFS tensor.  The result is provably
    byte-identical to ``batched=False`` (the sequential reference path, one
    uncapped evaluation per candidate), which the hypothesis equivalence
    suite enforces across backends, caps and seeds.
    """
    rng = _rng(seed)
    if index is None:
        from repro.core.route_index import RouteIndex

        index = RouteIndex(graph, routing)
    faults = _greedy_rounds(
        index, list(graph.nodes()), size, candidate_limit, rng, batched
    )
    return FaultSet(faults, description="greedy adversarial")


def greedy_fault_set_from_index(
    index,
    size: int,
    candidate_limit: int = 40,
    seed: RandomLike = None,
    batched: bool = True,
) -> FaultSet:
    """Greedy adversarial search driven by a :class:`RouteIndex` alone.

    Identical search to :func:`greedy_adversarial_fault_set` but drawing
    candidates from ``index.node_pool`` (the index's canonical sorted node
    pool) instead of a graph's insertion order — the entry point for engine
    and suite workers, whose slim indexes carry no graph object.  Because
    the pool and the shard seeds are deterministic, every worker grows the
    same fault set for the same ``(size, candidate_limit, seed)``.
    """
    rng = _rng(seed)
    faults = _greedy_rounds(
        index, list(index.node_pool), size, candidate_limit, rng, batched
    )
    return FaultSet(faults, description="greedy adversarial")


def combined_fault_sets(
    graph: Graph,
    routing: AnyRouting,
    size: int,
    concentrator: Sequence[Node] = (),
    random_count: int = 50,
    seed: RandomLike = None,
    include_greedy: bool = True,
    index=None,
    candidate_limit: int = 40,
    batched: bool = True,
) -> List[FaultSet]:
    """Return a deduplicated battery of fault sets mixing all strategies.

    This is the default adversary used by the benchmarks when exhaustive
    enumeration is too expensive: targeted sets, random sets, and one greedy
    adversarial set, all of exactly ``size`` faults (plus the empty set as a
    baseline).  ``candidate_limit`` and ``batched`` tune the greedy search
    (see :func:`greedy_adversarial_fault_set`).
    """
    battery: List[FaultSet] = [FaultSet((), description="no faults")]
    seen: Set[frozenset] = {frozenset()}

    def push(fault_set: FaultSet) -> None:
        key = fault_set.nodes()
        if key not in seen and len(key) <= size:
            seen.add(key)
            battery.append(fault_set)

    for fault_set in targeted_fault_sets(graph, size, concentrator, routing):
        push(fault_set)
    for fault_set in random_fault_sets(graph.nodes(), size, random_count, seed=seed):
        push(fault_set)
    if include_greedy and size > 0:
        push(
            greedy_adversarial_fault_set(
                graph,
                routing,
                size,
                candidate_limit=candidate_limit,
                seed=seed,
                index=index,
                batched=batched,
            )
        )
    return battery

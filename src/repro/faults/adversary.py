"""Fault-set generation strategies: exhaustive, random, targeted, greedy.

The tolerance theorems are worst-case statements over *all* fault sets of
bounded size.  Exhaustive enumeration is exact but only feasible for small
graphs and small ``f``; for larger instances the library combines

* random sampling (an unbiased but weak adversary),
* *targeted* fault sets aimed at the structures the constructions rely on —
  subsets of the concentrator, subsets of a single node's neighbourhood,
  subsets of the nodes on one node's tree routing — which in practice are the
  fault patterns that realise the worst surviving diameters, and
* a greedy adversarial search that grows a fault set one node at a time,
  always picking the node whose failure increases the surviving diameter the
  most.
"""

from __future__ import annotations

import itertools
import random as _random
from typing import Callable, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.core.routing import MultiRouting, Routing
from repro.faults.models import FaultSet
from repro.graphs.graph import Graph

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]
RandomLike = Union[int, _random.Random, None]


def _rng(seed: RandomLike) -> _random.Random:
    if isinstance(seed, _random.Random):
        return seed
    return _random.Random(seed)


# ----------------------------------------------------------------------
# Exhaustive enumeration
# ----------------------------------------------------------------------
def all_fault_sets(
    nodes: Iterable[Node], max_size: int, include_smaller: bool = True
) -> Iterator[FaultSet]:
    """Yield every fault set of size at most (or exactly) ``max_size``.

    The surviving diameter is *not* monotone in the fault set (removing an
    extra node may delete the very pair of nodes realising the worst
    distance), so a sound exhaustive check must consider all sizes up to the
    bound, which is the default.
    """
    node_list = sorted(nodes, key=repr)
    sizes = range(0, max_size + 1) if include_smaller else range(max_size, max_size + 1)
    for size in sizes:
        for combo in itertools.combinations(node_list, size):
            yield FaultSet(combo, description=f"exhaustive size {size}")


def count_fault_sets(n: int, max_size: int, include_smaller: bool = True) -> int:
    """Return how many fault sets :func:`all_fault_sets` would yield."""
    import math

    sizes = range(0, max_size + 1) if include_smaller else [max_size]
    return sum(math.comb(n, size) for size in sizes)


# ----------------------------------------------------------------------
# Random sampling
# ----------------------------------------------------------------------
def random_fault_sets(
    nodes: Iterable[Node],
    size: int,
    count: int,
    seed: RandomLike = None,
    exclude: Iterable[Node] = (),
) -> Iterator[FaultSet]:
    """Yield ``count`` uniformly random fault sets of exactly ``size`` nodes."""
    pool = [node for node in sorted(nodes, key=repr) if node not in set(exclude)]
    if size > len(pool):
        return
    rng = _rng(seed)
    for index in range(count):
        yield FaultSet(rng.sample(pool, size), description=f"random #{index}")


# ----------------------------------------------------------------------
# Targeted (structure-aware) fault sets
# ----------------------------------------------------------------------
def targeted_fault_sets(
    graph: Graph,
    size: int,
    concentrator: Sequence[Node] = (),
    routing: Optional[AnyRouting] = None,
    per_target_limit: int = 64,
) -> Iterator[FaultSet]:
    """Yield fault sets aimed at the routing's weak points.

    Three families of candidates are produced (each capped at
    ``per_target_limit`` sets to keep the total manageable):

    1. subsets of the concentrator ``M`` — killing concentrator members
       stresses Properties CIRC 2 / T-CIRC / B-POL 4;
    2. subsets of a single node's neighbour set — killing a node's neighbours
       is how an adversary isolates it, the situation Lemma 1 defends against;
    3. for a given routing, subsets of the nodes appearing on some node's
       routes (excluding the node itself), which attacks its tree routing.
    """
    emitted = 0
    concentrator_list = [node for node in concentrator if graph.has_node(node)]
    if len(concentrator_list) >= size and size > 0:
        for combo in itertools.islice(
            itertools.combinations(sorted(concentrator_list, key=repr), size),
            per_target_limit,
        ):
            yield FaultSet(combo, description="targeted: concentrator subset")
            emitted += 1

    if size > 0:
        by_degree = sorted(graph.nodes(), key=lambda n: (-graph.degree(n), repr(n)))
        for victim in by_degree[:per_target_limit]:
            neighbors = sorted(graph.neighbors(victim), key=repr)
            if len(neighbors) < size:
                continue
            yield FaultSet(
                neighbors[:size], description=f"targeted: neighbours of {victim!r}"
            )

    if routing is not None and size > 0:
        pairs = routing.pairs()
        seen_sources: Set[Node] = set()
        for source, target in pairs:
            if source in seen_sources:
                continue
            seen_sources.add(source)
            if len(seen_sources) > per_target_limit:
                break
            on_routes: Set[Node] = set()
            if isinstance(routing, MultiRouting):
                for path in routing.get_routes(source, target):
                    on_routes.update(path)
            else:
                path = routing.get_route(source, target)
                if path:
                    on_routes.update(path)
            on_routes.discard(source)
            candidates = sorted(on_routes, key=repr)
            if len(candidates) >= size:
                yield FaultSet(
                    candidates[:size], description=f"targeted: routes of {source!r}"
                )


# ----------------------------------------------------------------------
# Greedy adversarial search
# ----------------------------------------------------------------------
def greedy_adversarial_fault_set(
    graph: Graph,
    routing: AnyRouting,
    size: int,
    candidate_limit: int = 40,
    seed: RandomLike = None,
    index=None,
) -> FaultSet:
    """Grow a fault set greedily, maximising the surviving diameter at each step.

    At every step the candidate nodes (a random subset of the non-faulty
    nodes, capped at ``candidate_limit`` for tractability) are evaluated by
    the surviving diameter they would produce if added; the best one is kept.
    A candidate with the largest *finite* diameter wins as long as it
    strictly improves on the incumbent diameter; when no finite candidate
    improves any more, a disconnecting candidate (infinite diameter) is
    preferred — for ``size`` above the connectivity, ``inf`` is the true
    worst case and the search must not settle for a finite plateau.

    This is a heuristic lower bound on the true worst case, useful for larger
    graphs where exhaustive enumeration is infeasible.  Candidates are
    evaluated through a delta-aware :class:`~repro.core.route_index
    .EvalCursor` over ``index`` (built here when not supplied): the cursor
    for the incumbent fault set is updated per candidate by touching only
    the rows indexed under that candidate, so the ``size * candidate_limit``
    prefix-sharing evaluations never rebuild the surviving graph from
    scratch.
    """
    rng = _rng(seed)
    if index is None:
        from repro.core.route_index import RouteIndex

        index = RouteIndex(graph, routing)
    faults: Set[Node] = set()
    cursor = index.cursor(())
    incumbent = cursor.diameter()
    for _ in range(size):
        remaining = [node for node in graph.nodes() if node not in faults]
        if not remaining:
            break
        if len(remaining) > candidate_limit:
            candidates = rng.sample(remaining, candidate_limit)
        else:
            candidates = remaining
        best_node = best_cursor = None
        best_finite = -1.0
        inf_node = inf_cursor = None
        for node in candidates:
            trial = cursor.with_added(node)
            diam = trial.diameter()
            if diam == float("inf"):
                if inf_node is None:
                    inf_node, inf_cursor = node, trial
            elif diam > best_finite:
                best_finite, best_node, best_cursor = diam, node, trial
        if best_node is not None and (best_finite > incumbent or inf_node is None):
            chosen, cursor, incumbent = best_node, best_cursor, best_finite
        elif inf_node is not None:
            chosen, cursor, incumbent = inf_node, inf_cursor, float("inf")
        else:
            break
        faults.add(chosen)
    return FaultSet(faults, description="greedy adversarial")


def combined_fault_sets(
    graph: Graph,
    routing: AnyRouting,
    size: int,
    concentrator: Sequence[Node] = (),
    random_count: int = 50,
    seed: RandomLike = None,
    include_greedy: bool = True,
    index=None,
) -> List[FaultSet]:
    """Return a deduplicated battery of fault sets mixing all strategies.

    This is the default adversary used by the benchmarks when exhaustive
    enumeration is too expensive: targeted sets, random sets, and one greedy
    adversarial set, all of exactly ``size`` faults (plus the empty set as a
    baseline).
    """
    battery: List[FaultSet] = [FaultSet((), description="no faults")]
    seen: Set[frozenset] = {frozenset()}

    def push(fault_set: FaultSet) -> None:
        key = fault_set.nodes()
        if key not in seen and len(key) <= size:
            seen.add(key)
            battery.append(fault_set)

    for fault_set in targeted_fault_sets(graph, size, concentrator, routing):
        push(fault_set)
    for fault_set in random_fault_sets(graph.nodes(), size, random_count, seed=seed):
        push(fault_set)
    if include_greedy and size > 0:
        push(greedy_adversarial_fault_set(graph, routing, size, seed=seed, index=index))
    return battery

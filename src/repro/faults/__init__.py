"""Fault models, adversarial fault-set generation and Monte-Carlo campaigns."""

from repro.faults.models import FaultSet, empty_fault_set
from repro.faults.adversary import (
    all_fault_sets,
    combined_fault_sets,
    count_fault_sets,
    greedy_adversarial_fault_set,
    random_fault_sets,
    targeted_fault_sets,
)
from repro.faults.simulation import (
    CampaignResult,
    DecisionCampaignResult,
    aggregate_decisions,
    aggregate_outcomes,
    run_campaign,
    sweep_fault_sizes,
)
from repro.faults.engine import CampaignEngine, shard_seed

__all__ = [
    "FaultSet",
    "empty_fault_set",
    "all_fault_sets",
    "combined_fault_sets",
    "count_fault_sets",
    "greedy_adversarial_fault_set",
    "random_fault_sets",
    "targeted_fault_sets",
    "CampaignResult",
    "DecisionCampaignResult",
    "aggregate_decisions",
    "aggregate_outcomes",
    "run_campaign",
    "sweep_fault_sizes",
    "CampaignEngine",
    "shard_seed",
]

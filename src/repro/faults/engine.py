"""The fault-campaign engine: indexed, sharded evaluation of fault batteries.

Every campaign, battery and sweep in the library reduces to the same loop —
"for each fault set, compute the surviving diameter" — and before this module
that loop re-walked every route of the routing for every fault set.
:class:`CampaignEngine` centralises the loop and makes it fast twice over:

* **incremental evaluation** — a
  :class:`~repro.core.route_index.RouteIndex` is built once per engine and
  every fault set is evaluated by subtracting its affected arcs from the
  cached base route graph instead of re-walking all ``n^2`` routes;
* **parallel batteries** — fault batteries are cut into fixed-size shards
  that a :mod:`multiprocessing` pool evaluates concurrently, streaming the
  outcomes back in battery order so aggregation is incremental (bounded
  memory) and byte-for-byte independent of the worker count.

Determinism is a hard requirement: the same integer seed must produce the
same campaign rows whether the battery runs in-process or across N workers.
Two design rules enforce it:

1. sharding is a pure function of the battery and ``chunk_size`` — never of
   the worker count — and outcomes are aggregated in shard order;
2. randomly generated batteries use *per-shard seeding*: shard ``i`` of a
   campaign draws its fault sets from ``random.Random(shard_seed(seed, tag,
   i))``, so a worker can regenerate its shard locally from a tiny
   descriptor (no fault sets cross the process boundary on the way in) and
   the battery is identical no matter which worker runs which shard.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import random as _random
import weakref
from typing import (
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.route_index import RouteIndex
from repro.core.routing import MultiRouting, Routing
from repro.faults.models import FaultSet
from repro.faults.simulation import (
    CampaignResult,
    DecisionCampaignResult,
    aggregate_decisions,
    aggregate_outcomes,
)
from repro.graphs.graph import Graph
from repro.runtime import Supervisor, SupervisorPolicy, chaos_point, shutdown_pool

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]
RandomLike = Union[int, _random.Random, None]
Outcome = Tuple[FaultSet, float]
CampaignRow = Union[CampaignResult, DecisionCampaignResult]

#: Default number of fault sets per shard.  Sharding depends only on this
#: value and the battery, never on the worker count, so results are
#: reproducible across pool sizes.
DEFAULT_CHUNK_SIZE = 32


def shard_seed(seed: int, tag: str, shard: int) -> int:
    """Derive a stable 64-bit seed for one shard of a campaign.

    The derivation hashes ``(seed, tag, shard)`` with SHA-256 rather than
    Python's ``hash`` so it is identical across processes and interpreter
    runs (``hash`` is salted by ``PYTHONHASHSEED``).
    """
    digest = hashlib.sha256(f"{seed}:{tag}:{shard}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclasses.dataclass(frozen=True)
class _Shard:
    """One unit of worker work: explicit fault sets or a generative spec.

    ``fault_sets`` carries an explicit battery slice.  When it is ``None``
    the shard is *generative* and regenerated locally by whichever worker
    receives it:

    * with ``exhaustive_size`` set, the shard covers the combinations of
      that size with (deterministic) :func:`itertools.combinations` offsets
      ``start .. start + count`` over the ``repr``-sorted node pool;
    * otherwise it describes ``count`` random fault sets of size
      ``fault_size`` drawn from ``random.Random(seed)``, with global sample
      indices starting at ``start`` (used only for the descriptions).
    """

    fault_sets: Optional[Tuple[FaultSet, ...]] = None
    fault_size: int = 0
    count: int = 0
    start: int = 0
    seed: int = 0
    exhaustive_size: Optional[int] = None

    def materialise(self, pool: Union[Graph, Sequence[Node]]) -> Tuple[FaultSet, ...]:
        """Return the shard's fault sets, generating them when needed.

        ``pool`` is the canonical repr-sorted node pool (see
        :attr:`RouteIndex.node_pool`); passing the pool rather than the graph
        lets workers regenerate shards from the slim, graph-free index.  A
        :class:`Graph` is also accepted and sorted on the fly.
        """
        if self.fault_sets is not None:
            return self.fault_sets
        if isinstance(pool, Graph):
            pool = sorted(pool.nodes(), key=repr)
        if self.exhaustive_size is not None:
            return tuple(
                FaultSet(combo, description=f"exhaustive size {self.exhaustive_size}")
                for combo in _combinations_slice(
                    pool, self.exhaustive_size, self.start, self.count
                )
            )
        if self.fault_size > len(pool):
            return ()
        rng = _random.Random(self.seed)
        return tuple(
            FaultSet(
                rng.sample(pool, self.fault_size),
                description=f"random #{self.start + offset}",
            )
            for offset in range(self.count)
        )


def _combinations_slice(pool, size: int, start: int, count: int):
    """Yield ``itertools.combinations(pool, size)[start : start + count]``.

    The first combination is *unranked* directly (combinatorial number
    system, ``O(size * n)``) and successors are stepped lexicographically,
    so a shard deep into a large enumeration does not re-generate and skip
    every earlier combination the way ``islice`` would.
    """
    import math

    n = len(pool)
    if size < 0 or size > n or count <= 0:
        return
    if size == 0:
        if start == 0:
            yield ()
        return
    total = math.comb(n, size)
    if start >= total:
        return
    # Unrank the first combination in lexicographic order.
    indices: List[int] = []
    rank = start
    position = 0
    for remaining in range(size, 0, -1):
        while math.comb(n - position - 1, remaining - 1) <= rank:
            rank -= math.comb(n - position - 1, remaining - 1)
            position += 1
        indices.append(position)
        position += 1
    emitted = 0
    limit = min(count, total - start)
    while True:
        yield tuple(pool[i] for i in indices)
        emitted += 1
        if emitted >= limit:
            return
        # Lexicographic successor of the index combination.
        pivot = size - 1
        while indices[pivot] == n - size + pivot:
            pivot -= 1
        indices[pivot] += 1
        for follow in range(pivot + 1, size):
            indices[follow] = indices[follow - 1] + 1


# ----------------------------------------------------------------------
# Worker-process plumbing
# ----------------------------------------------------------------------
# The engine builds its RouteIndex once in the parent and ships the *slim*
# form of the pre-built index (bitset rows + kill masks + node labels, no
# graph or routing objects — see :meth:`RouteIndex.slim`) to each worker
# through the pool initializer.  Only shard descriptors and outcome rows
# cross the process boundary afterwards; shards regenerate their fault sets
# from the index's canonical node pool.
_WORKER_INDEX: Optional[RouteIndex] = None


def _init_worker(index: RouteIndex) -> None:
    global _WORKER_INDEX
    _WORKER_INDEX = index


def _evaluate_shard(shard: _Shard) -> List[Outcome]:
    index = _WORKER_INDEX
    assert index is not None, "worker pool was not initialised"
    chaos_point("task", f"shard:start={shard.start},size={shard.fault_size}")
    fault_sets = shard.materialise(index.node_pool)
    # One batched call per shard: the numpy backend evaluates the whole
    # battery slice in a handful of vectorised level advances, and the
    # bitset backend degrades to the same per-set loop as before.
    return list(zip(fault_sets, index.surviving_diameters(fault_sets)))


def _evaluate_shard_capped(task: Tuple[_Shard, float]) -> List[Outcome]:
    """Evaluate one shard with an eccentricity cap (bounded decision path).

    Outcomes report the exact diameter when it is at most the cap and
    ``inf`` otherwise, which is all either consumer needs: the early-exit
    scan treats any outcome strictly above the cap as a violation witness,
    and the streaming decision campaign folds it into a failed row.
    """
    shard, bound = task
    index = _WORKER_INDEX
    assert index is not None, "worker pool was not initialised"
    chaos_point("task", f"shard:start={shard.start},size={shard.fault_size}")
    fault_sets = shard.materialise(index.node_pool)
    return list(zip(fault_sets, index.surviving_diameters(fault_sets, cap=bound)))


def _shutdown_pool(pool) -> None:
    # Hardened teardown: terminate, join each worker with a deadline, and
    # escalate to SIGKILL for workers that ignore SIGTERM (satellite of the
    # supervision layer — an interrupted run never leaves zombie workers).
    shutdown_pool(pool)


class CampaignEngine:
    """Indexed fault-campaign runner with an optional worker pool.

    Parameters
    ----------
    graph, routing:
        The network and routing under attack.
    workers:
        Number of worker processes.  ``1`` (the default) evaluates in-process
        with no :mod:`multiprocessing` involvement at all; any larger value
        shards batteries across a pool.  Results are identical either way.
    chunk_size:
        Fault sets per shard (streaming granularity).
    index:
        Optional pre-built :class:`RouteIndex` to reuse; must match
        ``(graph, routing)``.  Built lazily on first use otherwise.
    density_threshold, backend:
        Forwarded to the lazily built :class:`RouteIndex` (ignored when a
        pre-built ``index`` is supplied — that index's resolved tunables
        win).  Both are resolved **once**, in the parent process, and travel
        with the slim index to every worker: workers never consult their own
        environment, so a pool whose processes see divergent environment
        variables still evaluates every shard identically.
    policy:
        Optional :class:`~repro.runtime.SupervisorPolicy` tuning the
        supervised dispatch (task timeouts, retry budget, pool rebuilds).
        The engine always runs its supervisor **strict**: a campaign
        aggregate with missing outcomes would be silently wrong, so a shard
        that exhausts its retry budget raises
        :class:`~repro.runtime.TaskFailedError` rather than being
        quarantined (the suite layer quarantines whole campaigns instead).
    supervised:
        ``False`` restores the bare ``pool.imap`` dispatch with no
        timeouts, retries or crash recovery — the benchmark baseline for
        the supervisor's overhead gate.
    """

    def __init__(
        self,
        graph: Graph,
        routing: AnyRouting,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        index: Optional[RouteIndex] = None,
        density_threshold: Optional[Union[int, str]] = None,
        backend: Optional[str] = None,
        policy: Optional[SupervisorPolicy] = None,
        supervised: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if index is not None and not index.matches(graph, routing):
            raise ValueError(
                "the supplied RouteIndex was built for a different graph or routing"
            )
        self.graph = graph
        self.routing = routing
        self.workers = workers
        self.chunk_size = chunk_size
        self._index = index
        self._density_threshold = density_threshold
        self._backend = backend
        # Aggregates cannot tolerate holes: dispatch is always fail-fast at
        # the shard level, whatever the caller's quarantine preference.
        self._policy = dataclasses.replace(
            policy if policy is not None else SupervisorPolicy(), strict=True
        )
        self.supervised = supervised
        self._pool = None
        self._pool_finalizer = None

    # ------------------------------------------------------------------
    # Index access
    # ------------------------------------------------------------------
    @property
    def index(self) -> RouteIndex:
        """The engine's route index (built on first access)."""
        if self._index is None:
            self._index = RouteIndex(
                self.graph,
                self.routing,
                density_threshold=self._density_threshold,
                backend=self._backend,
            )
        return self._index

    # ------------------------------------------------------------------
    # Shard construction and evaluation
    # ------------------------------------------------------------------
    def _explicit_shards(self, fault_sets: Iterable[FaultSet]) -> Iterator[_Shard]:
        iterator = iter(fault_sets)
        while True:
            block = tuple(itertools.islice(iterator, self.chunk_size))
            if not block:
                return
            yield _Shard(fault_sets=block)

    def _random_shards(
        self, fault_size: int, samples: int, seed: int, tag: str
    ) -> Iterator[_Shard]:
        for shard_index, start in enumerate(range(0, samples, self.chunk_size)):
            count = min(self.chunk_size, samples - start)
            yield _Shard(
                fault_size=fault_size,
                count=count,
                start=start,
                seed=shard_seed(seed, tag, shard_index),
            )

    def _exhaustive_shards(
        self, max_faults: int, include_smaller: bool = True
    ) -> Iterator[_Shard]:
        """Generative shards covering every fault set of size <= ``max_faults``.

        Shard boundaries are deterministic :func:`itertools.combinations`
        offsets over the ``repr``-sorted node pool — a pure function of the
        graph, ``max_faults`` and ``chunk_size`` — so workers regenerate
        their slice locally and the enumeration order matches
        :func:`repro.faults.adversary.all_fault_sets` exactly.
        """
        import math

        n = self.graph.number_of_nodes()
        sizes = range(0, max_faults + 1) if include_smaller else [max_faults]
        for size in sizes:
            total = math.comb(n, size)
            for start in range(0, total, self.chunk_size):
                yield _Shard(
                    exhaustive_size=size,
                    start=start,
                    count=min(self.chunk_size, total - start),
                )

    def _ensure_pool(self):
        """Create (once) and return the engine's worker pool.

        The pool — and with it the slim form of the pre-built RouteIndex
        shipped to every worker — persists for the engine's lifetime, so a
        sweep over many fault sizes pays the pool start-up and the index
        serialisation exactly once (and the index itself is built exactly
        once, in the parent).  Shipping ``index.slim()`` keeps the payload to
        the bitset rows, kill masks and node labels: the graph and routing
        objects never cross the process boundary.
        """
        if self._pool is None:
            import multiprocessing

            self._pool = multiprocessing.Pool(
                self.workers,
                initializer=_init_worker,
                initargs=(self.index.slim(),),
            )
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._pool
            )
        return self._pool

    def _rebuild_pool(self):
        """Tear down a broken/wedged pool and start a fresh one.

        Called by the supervisor after a task timeout or a pool-machinery
        failure; the fresh pool re-ships the slim index through its
        initializer exactly like the first one did.
        """
        self.close()
        return self._ensure_pool()

    def _supervisor(self, worker_fn, local_fn) -> Supervisor:
        return Supervisor(
            worker_fn,
            ensure_pool=self._ensure_pool,
            rebuild_pool=self._rebuild_pool,
            local_fn=local_fn,
            policy=self._policy,
            workers=self.workers,
        )

    def _local_shard(self, shard: _Shard) -> List[Outcome]:
        """In-process equivalent of :func:`_evaluate_shard` (degraded mode)."""
        index = self.index
        fault_sets = shard.materialise(index.node_pool)
        return list(zip(fault_sets, index.surviving_diameters(fault_sets)))

    def _local_shard_capped(self, task: Tuple[_Shard, float]) -> List[Outcome]:
        """In-process equivalent of :func:`_evaluate_shard_capped`."""
        shard, bound = task
        index = self.index
        fault_sets = shard.materialise(index.node_pool)
        return list(
            zip(fault_sets, index.surviving_diameters(fault_sets, cap=bound))
        )

    def close(self) -> None:
        """Terminate the worker pool (no-op when none was started)."""
        if self._pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            _shutdown_pool(self._pool)
            self._pool = None

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _evaluate_shards(self, shards: Iterable[_Shard]) -> Iterator[Outcome]:
        if self.workers == 1:
            index = self.index
            pool = index.node_pool
            for shard in shards:
                fault_sets = shard.materialise(pool)
                yield from zip(fault_sets, index.surviving_diameters(fault_sets))
            return
        if not self.supervised:
            for outcomes in self._ensure_pool().imap(_evaluate_shard, shards):
                yield from outcomes
            return
        supervisor = self._supervisor(_evaluate_shard, self._local_shard)
        # Strict policy: the supervisor raises instead of yielding
        # FailedTask, so every result here is a real outcome list.
        for _shard, outcomes in supervisor.run(shards):
            yield from outcomes

    def _evaluate_shards_capped(
        self, shards: Iterable[_Shard], bound: float
    ) -> Iterator[Outcome]:
        """Yield ``(fault_set, capped_diameter)`` in battery order.

        Every fault set is evaluated with an eccentricity cap of ``bound``:
        the outcome is the exact diameter when it is at most the bound and
        ``inf`` otherwise.  This is the streaming-decision path — cheaper
        than exact evaluation because each source's BFS is abandoned the
        moment it exceeds the cap and the first violating source
        short-circuits its fault set's whole evaluation.
        """
        if self.workers == 1:
            index = self.index
            pool = index.node_pool
            for shard in shards:
                fault_sets = shard.materialise(pool)
                yield from zip(
                    fault_sets, index.surviving_diameters(fault_sets, cap=bound)
                )
            return
        tasks = ((shard, bound) for shard in shards)
        if not self.supervised:
            for outcomes in self._ensure_pool().imap(
                _evaluate_shard_capped, tasks
            ):
                yield from outcomes
            return
        supervisor = self._supervisor(
            _evaluate_shard_capped, self._local_shard_capped
        )
        for _task, outcomes in supervisor.run(tasks):
            yield from outcomes

    # ------------------------------------------------------------------
    # Public evaluation surface
    # ------------------------------------------------------------------
    def evaluate(self, fault_sets: Iterable[FaultSet]) -> Iterator[Outcome]:
        """Yield ``(fault_set, surviving_diameter)`` in battery order."""
        return self._evaluate_shards(self._explicit_shards(fault_sets))

    def worst_case(self, fault_sets: Iterable[FaultSet]) -> Tuple[float, Optional[FaultSet], int]:
        """Return ``(worst_diameter, worst_fault_set, evaluated_count)``.

        Matches :func:`repro.core.tolerance.worst_case_diameter`: the first
        fault set realising the strict maximum wins, and ``inf`` dominates.
        """
        worst = -1.0
        worst_set: Optional[FaultSet] = None
        evaluated = 0
        for fault_set, diameter in self.evaluate(fault_sets):
            evaluated += 1
            if diameter > worst:
                worst = diameter
                worst_set = fault_set
        return worst, worst_set, evaluated

    # ------------------------------------------------------------------
    # Bounded-diameter decision scans
    # ------------------------------------------------------------------
    def _bounded_scan(
        self, shards: Iterable[_Shard], bound: float
    ) -> Tuple[float, Optional[FaultSet], int, bool]:
        """Early-exit scan: is every fault set's surviving diameter <= ``bound``?

        Returns ``(worst_diameter, worst_fault_set, evaluated, holds)``.
        Every fault set is evaluated with an eccentricity cap of ``bound``
        (each source's BFS is abandoned the moment it exceeds the cap), and
        the scan stops at the *first* violating fault set in battery order:
        on a violation ``worst_diameter`` is the exact diameter of that
        witness and ``evaluated`` counts the sets inspected up to and
        including it.  When the bound holds, every set was evaluated and
        ``worst_diameter`` is the exact battery-wide maximum.

        The parallel path submits shards through a sliding window (a few
        shards per worker) and stops submitting on the first violation, so
        an early exit leaves at most one window of in-flight shards behind
        instead of the whole remaining enumeration.
        """
        worst = -1.0
        worst_set: Optional[FaultSet] = None
        evaluated = 0
        if self.workers == 1:
            index = self.index
            pool = index.node_pool
            for shard in shards:
                fault_sets = shard.materialise(pool)
                # Whole-shard batching mirrors the parallel path's shard
                # granularity: a violating shard costs at most one chunk of
                # extra evaluations, and the batched numpy path more than
                # pays that back.
                capped_values = index.surviving_diameters(fault_sets, cap=bound)
                for fault_set, capped in zip(fault_sets, capped_values):
                    evaluated += 1
                    if capped > bound:
                        return (
                            index.surviving_diameter(fault_set),
                            fault_set,
                            evaluated,
                            False,
                        )
                    if capped > worst:
                        worst = capped
                        worst_set = fault_set
            return worst, worst_set, evaluated, True

        if self.supervised:
            # The supervisor's sliding window matches the legacy dispatch
            # (workers * 4 shards in flight, results in submission order),
            # so abandoning the generator on the first violation leaves at
            # most one window of in-flight shards behind — exactly the old
            # early-exit cost — while gaining timeouts and crash recovery.
            supervisor = self._supervisor(
                _evaluate_shard_capped, self._local_shard_capped
            )
            tasks = ((shard, bound) for shard in shards)
            for _task, outcomes in supervisor.run(tasks):
                for fault_set, capped in outcomes:
                    evaluated += 1
                    if capped > bound:
                        return (
                            self.index.surviving_diameter(fault_set),
                            fault_set,
                            evaluated,
                            False,
                        )
                    if capped > worst:
                        worst = capped
                        worst_set = fault_set
            return worst, worst_set, evaluated, True

        import collections

        pool = self._ensure_pool()
        shard_iterator = iter(shards)
        window = self.workers * 4
        pending = collections.deque()

        def refill() -> None:
            while len(pending) < window:
                shard = next(shard_iterator, None)
                if shard is None:
                    return
                pending.append(
                    pool.apply_async(_evaluate_shard_capped, ((shard, bound),))
                )

        refill()
        while pending:
            for fault_set, capped in pending.popleft().get():
                evaluated += 1
                if capped > bound:
                    return (
                        self.index.surviving_diameter(fault_set),
                        fault_set,
                        evaluated,
                        False,
                    )
                if capped > worst:
                    worst = capped
                    worst_set = fault_set
            refill()
        return worst, worst_set, evaluated, True

    def bounded_worst_case(
        self, fault_sets: Iterable[FaultSet], bound: float
    ) -> Tuple[float, Optional[FaultSet], int, bool]:
        """Early-exit battery scan against ``bound`` (see :meth:`_bounded_scan`)."""
        return self._bounded_scan(self._explicit_shards(fault_sets), bound)

    def exhaustive_worst_case(
        self, max_faults: int, bound: float, include_smaller: bool = True
    ) -> Tuple[float, Optional[FaultSet], int, bool]:
        """Early-exit exhaustive scan over all fault sets of size <= ``max_faults``.

        The enumeration streams through the engine's generative shards
        (deterministic :func:`itertools.combinations` offsets), so exhaustive
        tolerance checks shard across the worker pool exactly like random
        batteries do — no fault sets cross the process boundary on the way
        in.
        """
        return self._bounded_scan(
            self._exhaustive_shards(max_faults, include_smaller=include_smaller), bound
        )

    def profile(self, fault_sets: Iterable[FaultSet]) -> List[Outcome]:
        """Return ``(fault_set, surviving_diameter)`` rows for the battery."""
        return list(self.evaluate(fault_sets))

    # ------------------------------------------------------------------
    # Greedy adversarial search
    # ------------------------------------------------------------------
    def adversarial_worst_case(
        self,
        fault_size: int,
        candidate_limit: int = 40,
        seed: RandomLike = None,
        batched: bool = True,
    ) -> Tuple[float, FaultSet]:
        """Greedy adversarial fault set of ``fault_size`` and its diameter.

        Runs :func:`repro.faults.adversary.greedy_fault_set_from_index`
        over the engine's pre-built index: each greedy round evaluates its
        candidate batch through ``EvalCursor.batch_with_added`` with
        incumbent-cap pruning (one packed BFS tensor per round on the numpy
        backend).  Returns ``(surviving_diameter, fault_set)`` — a heuristic
        lower bound on the true worst case at this size.
        """
        from repro.faults.adversary import greedy_fault_set_from_index

        fault_set = greedy_fault_set_from_index(
            self.index,
            fault_size,
            candidate_limit=candidate_limit,
            seed=seed,
            batched=batched,
        )
        return self.index.surviving_diameter(fault_set.nodes()), fault_set

    def run_campaign(
        self,
        fault_size: int,
        samples: int = 100,
        seed: RandomLike = None,
        fault_sets: Optional[Iterable[FaultSet]] = None,
        bound: Optional[float] = None,
        frame=None,
        greedy: bool = False,
        candidate_limit: int = 40,
    ) -> CampaignRow:
        """Run one campaign at ``fault_size`` and aggregate the outcomes.

        With an integer (or ``None``) seed the battery is generated with
        per-shard seeding, so the result is independent of the worker count.
        Passing a :class:`random.Random` instance falls back to drawing the
        whole battery from that stream in the parent (sequential legacy
        semantics); explicit ``fault_sets`` are evaluated as given.

        With ``bound`` given the campaign streams *decisions* instead of
        exact diameters: every fault set is evaluated with an eccentricity
        cap of ``bound`` (``surviving_diameter_at_most`` semantics) and the
        aggregate is a :class:`~repro.faults.simulation
        .DecisionCampaignResult` of pass/fail rows — much cheaper than exact
        evaluation when diameters exceed the bound, and all a tolerance
        table needs.

        With ``greedy`` the battery additionally includes one greedy
        adversarial fault set of ``fault_size`` (candidate rounds capped at
        ``candidate_limit``, evaluated through the batched candidate layer;
        deterministically seeded from the campaign seed), so the aggregate's
        worst-case columns reflect an adversarial probe and not just random
        sampling.  The tunables are stamped onto the result record
        (``backend`` always; ``candidate_limit`` when the greedy probe ran).

        ``frame`` may name a :class:`~repro.results.frame.ResultFrame` built
        over the unified record schema; the campaign's record is appended to
        it (the returned view and the frame row are interconvertible).
        """
        greedy_seed: RandomLike = seed
        if fault_sets is not None:
            shards = self._explicit_shards(fault_sets)
        elif isinstance(seed, _random.Random):
            from repro.faults.adversary import random_fault_sets

            shards = self._explicit_shards(
                random_fault_sets(self.graph.nodes(), fault_size, samples, seed=seed)
            )
        else:
            base = seed if seed is not None else _random.SystemRandom().getrandbits(64)
            shards = self._random_shards(
                fault_size, samples, base, tag=f"size={fault_size}"
            )
            greedy_seed = shard_seed(base, f"greedy:size={fault_size}", 0)
        run_greedy = greedy and fault_size > 0
        if run_greedy:
            from repro.faults.adversary import greedy_fault_set_from_index

            greedy_set = greedy_fault_set_from_index(
                self.index,
                fault_size,
                candidate_limit=candidate_limit,
                seed=greedy_seed,
            )
            shards = itertools.chain(shards, self._explicit_shards([greedy_set]))
        strategy = self.index.preferred_strategy()
        if bound is not None:
            result: CampaignRow = aggregate_decisions(
                fault_size, bound, self._evaluate_shards_capped(shards, bound)
            )
        else:
            result = aggregate_outcomes(fault_size, self._evaluate_shards(shards))
        result.bfs_strategy = strategy
        result.eval_backend = self.index.eval_backend
        result.candidate_limit = candidate_limit if run_greedy else None
        if frame is not None:
            frame.append(result.record())
        return result

    def sweep_fault_sizes(
        self,
        sizes: Sequence[int],
        samples: int = 50,
        seed: RandomLike = None,
        bound: Optional[float] = None,
        frame=None,
        greedy: bool = False,
        candidate_limit: int = 40,
    ) -> List[CampaignRow]:
        """Run one campaign per fault-set size and return the results in order.

        Integer seeds are re-derived per size with :func:`shard_seed`, so
        each size's battery is independent of the others (and of the worker
        count); a shared :class:`random.Random` instance is threaded through
        sequentially as before.  ``bound`` selects the streaming-decision
        path per campaign, and ``greedy``/``candidate_limit`` add a greedy
        adversarial probe per size (see :meth:`run_campaign`); ``frame``
        collects one unified record per campaign.
        """
        if isinstance(seed, _random.Random):
            return [
                self.run_campaign(
                    size,
                    samples=samples,
                    seed=seed,
                    bound=bound,
                    frame=frame,
                    greedy=greedy,
                    candidate_limit=candidate_limit,
                )
                for size in sizes
            ]
        base = seed if seed is not None else _random.SystemRandom().getrandbits(64)
        # The position enters the derivation so that a repeated size draws an
        # independent battery (doubling a size doubles the information).
        return [
            self.run_campaign(
                size,
                samples=samples,
                seed=shard_seed(base, f"sweep:{position}", size),
                bound=bound,
                frame=frame,
                greedy=greedy,
                candidate_limit=candidate_limit,
            )
            for position, size in enumerate(sizes)
        ]

"""Monte-Carlo fault-injection campaigns and summary statistics.

While the theorems are worst-case statements, a systems designer also cares
about the *typical* surviving diameter under random failures.  This module
runs randomised fault-injection campaigns over a constructed routing and
aggregates the results (mean / max diameter, fraction of disconnecting fault
sets, distribution over fault-set sizes), which the examples and a couple of
benchmarks report alongside the worst-case numbers.

The evaluation loop itself lives in :class:`repro.faults.engine
.CampaignEngine`: campaigns are evaluated through a precomputed
:class:`~repro.core.route_index.RouteIndex` (bitset subtraction and
level-mask BFS instead of re-walking every route) and can be sharded across
worker processes with ``workers=N`` — the engine ships its pre-built index
to the pool, and the aggregated rows are identical for any worker count.
"""

from __future__ import annotations

import dataclasses
import random as _random
import statistics
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.routing import MultiRouting, Routing
from repro.faults.models import FaultSet
from repro.graphs.graph import Graph

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]
RandomLike = Union[int, _random.Random, None]


@dataclasses.dataclass
class CampaignResult:
    """Aggregated outcome of a fault-injection campaign at one fault-set size.

    A thin view over one unified result record (see
    :mod:`repro.results.records`): :meth:`record` emits the row this view
    summarises and :meth:`from_record` reconstructs the view losslessly, so
    campaigns persist through :class:`~repro.results.store.ResultStore`
    without a shape of their own.
    """

    fault_size: int
    samples: int
    mean_diameter: float
    max_diameter: float
    min_diameter: float
    disconnected_fraction: float
    worst_fault_set: Optional[FaultSet] = None
    #: BFS strategy the evaluating index picks on the fault-free rows
    #: ("batched" / "per-source"); recorded by the engine so sweep tables can
    #: correlate throughput with the strategy actually exercised.
    bfs_strategy: Optional[str] = None
    #: Realised fault-set sizes across the battery.  These equal
    #: ``fault_size`` for fixed-size batteries but carry the real
    #: distribution for variable-size fault models (``random:p``, explicit
    #: batteries), whose nominal ``fault_size`` is 0.
    faults_min: Optional[int] = None
    faults_mean: Optional[float] = None
    faults_max: Optional[int] = None
    #: Resolved evaluation backend ("bitset" / "numpy") the campaign ran on,
    #: and the greedy adversary's candidate budget when a greedy probe was
    #: part of the battery (``None`` otherwise) — the adversary tunables,
    #: recorded so stored rows carry their evaluation provenance.
    eval_backend: Optional[str] = None
    candidate_limit: Optional[int] = None

    @property
    def variable_fault_sizes(self) -> bool:
        """``True`` when the battery's realised sizes differ from the nominal."""
        return (
            self.faults_min is not None
            and self.faults_max is not None
            and (
                self.faults_min != self.faults_max
                or self.faults_max != self.fault_size
            )
        )

    def as_row(self) -> Dict[str, object]:
        """Return the result as a flat dict (one table row)."""
        row: Dict[str, object] = {
            "faults": self.fault_size,
            "samples": self.samples,
            "mean_diam": round(self.mean_diameter, 3),
            "max_diam": self.max_diameter,
            "min_diam": self.min_diameter,
            "disconnected": round(self.disconnected_fraction, 3),
        }
        if self.variable_fault_sizes:
            # random:p batteries have no meaningful nominal size; show the
            # realised min..max and the mean instead of a misleading 0.
            row["faults"] = f"{self.faults_min}..{self.faults_max}"
            row["mean_faults"] = round(self.faults_mean, 2)
        if self.bfs_strategy is not None:
            row["bfs"] = self.bfs_strategy
        return row

    def record(self, **extra: object) -> Dict[str, object]:
        """Return the unified result record this view summarises."""
        from repro.results.records import encode_fault_set

        record: Dict[str, object] = {
            "source": "campaign",
            "kind": "exact",
            "faults": self.fault_size,
            "samples": self.samples,
            "faults_min": self.faults_min,
            "faults_mean": self.faults_mean,
            "faults_max": self.faults_max,
            "mean_diam": self.mean_diameter,
            "min_diam": self.min_diameter,
            "max_diam": self.max_diameter,
            "disconnected": self.disconnected_fraction,
            "worst_diam": (
                float("inf")
                if self.disconnected_fraction > 0
                else self.max_diameter
            ),
            "bfs": self.bfs_strategy,
            "backend": self.eval_backend,
            "candidate_limit": self.candidate_limit,
            "worst_faults": encode_fault_set(self.worst_fault_set),
        }
        record.update(extra)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "CampaignResult":
        """Rebuild the view from a unified result record."""
        from repro.results.records import decode_fault_set

        return cls(
            fault_size=record["faults"],
            samples=record["samples"],
            mean_diameter=record["mean_diam"],
            max_diameter=record["max_diam"],
            min_diameter=record["min_diam"],
            disconnected_fraction=record["disconnected"],
            worst_fault_set=decode_fault_set(
                record.get("worst_faults"), description="worst (from store)"
            ),
            bfs_strategy=record.get("bfs"),
            faults_min=record.get("faults_min"),
            faults_mean=record.get("faults_mean"),
            faults_max=record.get("faults_max"),
            eval_backend=record.get("backend"),
            candidate_limit=record.get("candidate_limit"),
        )


@dataclasses.dataclass
class DecisionCampaignResult:
    """Aggregated pass/fail outcome of a *bounded-decision* campaign.

    Produced by ``run_campaign(bound=...)``: every fault set of the battery
    is evaluated with an eccentricity cap of ``bound`` (the
    ``surviving_diameter_at_most`` decision) instead of an exact diameter, so
    the campaign only learns — and only pays for — which side of the bound
    each set falls on.  ``worst_diameter`` is the battery-wide maximum of the
    *capped* outcomes: exact while the bound holds, ``inf`` as soon as any
    set violates it.
    """

    fault_size: int
    samples: int
    bound: float
    violations: int
    worst_diameter: float
    first_violation: Optional[FaultSet] = None
    bfs_strategy: Optional[str] = None
    #: Realised fault-set sizes across the battery (see
    #: :attr:`CampaignResult.faults_min`).
    faults_min: Optional[int] = None
    faults_mean: Optional[float] = None
    faults_max: Optional[int] = None
    #: Adversary tunables (see :attr:`CampaignResult.eval_backend`).
    eval_backend: Optional[str] = None
    candidate_limit: Optional[int] = None

    @property
    def holds(self) -> bool:
        """``True`` when every evaluated fault set respected the bound."""
        return self.violations == 0

    @property
    def pass_fraction(self) -> float:
        """Fraction of fault sets whose surviving diameter was <= ``bound``."""
        if self.samples == 0:
            return 0.0
        return (self.samples - self.violations) / self.samples

    @property
    def variable_fault_sizes(self) -> bool:
        """``True`` when the battery's realised sizes differ from the nominal."""
        return (
            self.faults_min is not None
            and self.faults_max is not None
            and (
                self.faults_min != self.faults_max
                or self.faults_max != self.fault_size
            )
        )

    def as_row(self) -> Dict[str, object]:
        """Return the result as a flat dict (one table row)."""
        row: Dict[str, object] = {
            "faults": self.fault_size,
            "samples": self.samples,
            "bound": self.bound,
            "holds": "yes" if self.holds else "NO",
            "pass": round(self.pass_fraction, 3),
            "violations": self.violations,
        }
        if self.variable_fault_sizes:
            row["faults"] = f"{self.faults_min}..{self.faults_max}"
            row["mean_faults"] = round(self.faults_mean, 2)
        if self.bfs_strategy is not None:
            row["bfs"] = self.bfs_strategy
        return row

    def record(self, **extra: object) -> Dict[str, object]:
        """Return the unified result record this view summarises."""
        from repro.results.records import encode_fault_set

        record: Dict[str, object] = {
            "source": "campaign",
            "kind": "decision",
            "faults": self.fault_size,
            "samples": self.samples,
            "faults_min": self.faults_min,
            "faults_mean": self.faults_mean,
            "faults_max": self.faults_max,
            "bound": self.bound,
            "violations": self.violations,
            "pass_rate": self.pass_fraction,
            "worst_diam": self.worst_diameter,
            "bfs": self.bfs_strategy,
            "backend": self.eval_backend,
            "candidate_limit": self.candidate_limit,
            "worst_faults": encode_fault_set(self.first_violation),
        }
        record.update(extra)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "DecisionCampaignResult":
        """Rebuild the view from a unified result record."""
        from repro.results.records import decode_fault_set

        return cls(
            fault_size=record["faults"],
            samples=record["samples"],
            bound=record["bound"],
            violations=record["violations"],
            worst_diameter=record["worst_diam"],
            first_violation=decode_fault_set(
                record.get("worst_faults"),
                description="first violation (from store)",
            ),
            bfs_strategy=record.get("bfs"),
            faults_min=record.get("faults_min"),
            faults_mean=record.get("faults_mean"),
            faults_max=record.get("faults_max"),
            eval_backend=record.get("backend"),
            candidate_limit=record.get("candidate_limit"),
        )


@dataclasses.dataclass
class CampaignStatus:
    """A campaign that produced no aggregate, and why.

    Recorded as a ``kind="status"`` row so sweeps distinguish *not
    applicable* (the scenario cannot exist under these parameters and was
    dropped under ``--skip-inapplicable``), *failed* (the campaign's task
    exhausted its retry budget and was quarantined by the supervisor) and
    plain *not run* (no row at all).  ``holds`` is ``False`` so status rows
    never count as satisfied bounds, but they carry no statistics —
    reports annotate the corresponding cells instead of aggregating them.
    """

    disposition: str
    reason: str
    fault_size: int = 0
    samples: int = 0

    @property
    def holds(self) -> bool:
        """A campaign with no aggregate never certifies a bound."""
        return False

    def as_row(self) -> Dict[str, object]:
        """Return the status as a flat dict (one table row)."""
        return {
            "faults": self.fault_size,
            "samples": self.samples,
            "status": self.disposition,
            "reason": self.reason,
        }

    def record(self, **extra: object) -> Dict[str, object]:
        """Return the unified result record this view summarises."""
        record: Dict[str, object] = {
            "source": "suite",
            "kind": "status",
            "disposition": self.disposition,
            "reason": self.reason,
            "faults": self.fault_size,
            "samples": self.samples,
        }
        record.update(extra)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "CampaignStatus":
        """Rebuild the view from a unified result record."""
        return cls(
            disposition=record["disposition"],
            reason=record.get("reason") or "",
            fault_size=record.get("faults") or 0,
            samples=record.get("samples") or 0,
        )


def aggregate_outcomes(
    fault_size: int, outcomes: Iterable[Tuple[FaultSet, float]]
) -> CampaignResult:
    """Fold a stream of ``(fault_set, diameter)`` outcomes into a result.

    The stream is consumed incrementally (bounded memory for arbitrarily
    large batteries).  ``worst_fault_set`` is the first fault set realising
    the strict maximum diameter, with a *disconnecting* fault set (``inf``
    diameter) dominating every finite one — a campaign that observed a
    disconnection always reports a disconnecting set as its worst.
    """
    diameters: List[float] = []
    disconnected = 0
    evaluated = 0
    worst: Optional[FaultSet] = None
    worst_diameter = float("-inf")
    size_min: Optional[int] = None
    size_max: Optional[int] = None
    size_total = 0
    for fault_set, diam in outcomes:
        evaluated += 1
        realised = len(fault_set)
        size_min = realised if size_min is None else min(size_min, realised)
        size_max = realised if size_max is None else max(size_max, realised)
        size_total += realised
        if diam == float("inf"):
            disconnected += 1
        else:
            diameters.append(diam)
        if worst is None or diam > worst_diameter:
            worst_diameter = diam
            worst = fault_set
    if evaluated == 0:
        raise ValueError("no fault sets to evaluate")

    finite = diameters or [float("inf")]
    return CampaignResult(
        fault_size=fault_size,
        samples=evaluated,
        mean_diameter=statistics.fmean(finite) if diameters else float("inf"),
        max_diameter=max(finite),
        min_diameter=min(finite),
        disconnected_fraction=disconnected / evaluated,
        worst_fault_set=worst,
        faults_min=size_min,
        faults_mean=size_total / evaluated,
        faults_max=size_max,
    )


def aggregate_decisions(
    fault_size: int, bound: float, outcomes: Iterable[Tuple[FaultSet, float]]
) -> DecisionCampaignResult:
    """Fold a stream of *capped* outcomes into a decision-campaign result.

    Each outcome is ``(fault_set, capped_diameter)`` where the diameter was
    evaluated with an eccentricity cap of ``bound`` — exact when at most the
    bound, ``inf`` otherwise — so the fold only ever compares against the
    bound.  The stream is consumed incrementally (bounded memory) and
    ``first_violation`` records the first fault set in battery order whose
    surviving diameter exceeded the bound.
    """
    evaluated = 0
    violations = 0
    worst = float("-inf")
    first_violation: Optional[FaultSet] = None
    size_min: Optional[int] = None
    size_max: Optional[int] = None
    size_total = 0
    for fault_set, capped in outcomes:
        evaluated += 1
        realised = len(fault_set)
        size_min = realised if size_min is None else min(size_min, realised)
        size_max = realised if size_max is None else max(size_max, realised)
        size_total += realised
        if capped > bound:
            violations += 1
            if first_violation is None:
                first_violation = fault_set
        if capped > worst:
            worst = capped
    if evaluated == 0:
        raise ValueError("no fault sets to evaluate")
    return DecisionCampaignResult(
        fault_size=fault_size,
        samples=evaluated,
        bound=bound,
        violations=violations,
        worst_diameter=worst,
        first_violation=first_violation,
        faults_min=size_min,
        faults_mean=size_total / evaluated,
        faults_max=size_max,
    )


def run_campaign(
    graph: Graph,
    routing: AnyRouting,
    fault_size: int,
    samples: int = 100,
    seed: RandomLike = None,
    fault_sets: Optional[Iterable[FaultSet]] = None,
    workers: int = 1,
    index=None,
    bound: Optional[float] = None,
    frame=None,
    greedy: bool = False,
    candidate_limit: int = 40,
):
    """Inject ``samples`` random fault sets of the given size and summarise.

    Parameters
    ----------
    fault_sets:
        Optional explicit fault sets to evaluate instead of random sampling
        (e.g. the output of :func:`repro.faults.adversary.combined_fault_sets`).
    workers:
        Number of worker processes for the evaluation (default sequential).
        With an integer seed the result is identical for any worker count.
    index:
        Optional pre-built :class:`~repro.core.route_index.RouteIndex` for
        ``(graph, routing)`` to reuse across calls.
    bound:
        Optional diameter bound selecting the streaming-decision path: the
        campaign then evaluates every fault set with an eccentricity cap of
        ``bound`` and returns a :class:`DecisionCampaignResult` of pass/fail
        rows instead of exact-diameter statistics.
    """
    from repro.faults.engine import CampaignEngine

    engine = CampaignEngine(graph, routing, workers=workers, index=index)
    return engine.run_campaign(
        fault_size,
        samples=samples,
        seed=seed,
        fault_sets=fault_sets,
        bound=bound,
        frame=frame,
        greedy=greedy,
        candidate_limit=candidate_limit,
    )


def sweep_fault_sizes(
    graph: Graph,
    routing: AnyRouting,
    sizes: Sequence[int],
    samples: int = 50,
    seed: RandomLike = None,
    workers: int = 1,
    index=None,
    bound: Optional[float] = None,
    frame=None,
    greedy: bool = False,
    candidate_limit: int = 40,
) -> List:
    """Run one campaign per fault-set size and return the results in order.

    ``bound`` selects the streaming-decision path and ``greedy``/
    ``candidate_limit`` add a greedy adversarial probe per size (see
    :func:`run_campaign`); ``frame`` collects one unified record per
    campaign.
    """
    from repro.faults.engine import CampaignEngine

    engine = CampaignEngine(graph, routing, workers=workers, index=index)
    return engine.sweep_fault_sizes(
        sizes,
        samples=samples,
        seed=seed,
        bound=bound,
        frame=frame,
        greedy=greedy,
        candidate_limit=candidate_limit,
    )

"""Monte-Carlo fault-injection campaigns and summary statistics.

While the theorems are worst-case statements, a systems designer also cares
about the *typical* surviving diameter under random failures.  This module
runs randomised fault-injection campaigns over a constructed routing and
aggregates the results (mean / max diameter, fraction of disconnecting fault
sets, distribution over fault-set sizes), which the examples and a couple of
benchmarks report alongside the worst-case numbers.
"""

from __future__ import annotations

import dataclasses
import random as _random
import statistics
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Union

from repro.core.routing import MultiRouting, Routing
from repro.core.surviving import surviving_diameter
from repro.faults.adversary import random_fault_sets
from repro.faults.models import FaultSet
from repro.graphs.graph import Graph

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]
RandomLike = Union[int, _random.Random, None]


@dataclasses.dataclass
class CampaignResult:
    """Aggregated outcome of a fault-injection campaign at one fault-set size."""

    fault_size: int
    samples: int
    mean_diameter: float
    max_diameter: float
    min_diameter: float
    disconnected_fraction: float
    worst_fault_set: Optional[FaultSet] = None

    def as_row(self) -> Dict[str, object]:
        """Return the result as a flat dict (one table row)."""
        return {
            "faults": self.fault_size,
            "samples": self.samples,
            "mean_diam": round(self.mean_diameter, 3),
            "max_diam": self.max_diameter,
            "min_diam": self.min_diameter,
            "disconnected": round(self.disconnected_fraction, 3),
        }


def run_campaign(
    graph: Graph,
    routing: AnyRouting,
    fault_size: int,
    samples: int = 100,
    seed: RandomLike = None,
    fault_sets: Optional[Iterable[FaultSet]] = None,
) -> CampaignResult:
    """Inject ``samples`` random fault sets of the given size and summarise.

    Parameters
    ----------
    fault_sets:
        Optional explicit fault sets to evaluate instead of random sampling
        (e.g. the output of :func:`repro.faults.adversary.combined_fault_sets`).
    """
    if fault_sets is None:
        fault_sets = list(
            random_fault_sets(graph.nodes(), fault_size, samples, seed=seed)
        )
    else:
        fault_sets = list(fault_sets)
    if not fault_sets:
        raise ValueError("no fault sets to evaluate")

    diameters: List[float] = []
    disconnected = 0
    worst: Optional[FaultSet] = None
    worst_diameter = -1.0
    for fault_set in fault_sets:
        diam = surviving_diameter(graph, routing, fault_set)
        if diam == float("inf"):
            disconnected += 1
        else:
            diameters.append(diam)
        key = float("inf") if diam == float("inf") else diam
        if key > worst_diameter or worst is None:
            worst_diameter = key if key != float("inf") else worst_diameter
            worst = fault_set if diam != float("inf") or worst is None else worst

    finite = diameters or [float("inf")]
    return CampaignResult(
        fault_size=fault_size,
        samples=len(fault_sets),
        mean_diameter=statistics.fmean(finite) if diameters else float("inf"),
        max_diameter=max(finite),
        min_diameter=min(finite),
        disconnected_fraction=disconnected / len(fault_sets),
        worst_fault_set=worst,
    )


def sweep_fault_sizes(
    graph: Graph,
    routing: AnyRouting,
    sizes: Sequence[int],
    samples: int = 50,
    seed: RandomLike = None,
) -> List[CampaignResult]:
    """Run one campaign per fault-set size and return the results in order."""
    rng = _rng_instance(seed)
    return [
        run_campaign(graph, routing, size, samples=samples, seed=rng)
        for size in sizes
    ]


def _rng_instance(seed: RandomLike) -> _random.Random:
    if isinstance(seed, _random.Random):
        return seed
    return _random.Random(seed)

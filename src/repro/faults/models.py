"""Fault models: fault sets and the edge-fault-to-node-fault convention.

The paper considers node faults only and handles a faulty edge "by assuming
that one of the endpoints of the faulty edge is a faulty node" (a pessimistic
but safe convention).  :class:`FaultSet` is a thin immutable wrapper around a
frozen set of faulty nodes that keeps a human-readable description of how the
set was produced (exhaustive enumeration, random sampling, adversarial
search, converted edge faults ...), which makes experiment reports and test
failure messages much easier to interpret.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.exceptions import FaultModelError
from repro.graphs.graph import Graph

Node = Hashable
Edge = Tuple[Node, Node]


class FaultSet:
    """An immutable set of faulty nodes with provenance metadata."""

    __slots__ = ("_nodes", "description")

    def __init__(self, nodes: Iterable[Node] = (), description: str = "") -> None:
        self._nodes: FrozenSet[Node] = frozenset(nodes)
        self.description = description

    # ------------------------------------------------------------------
    # Set-like behaviour
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FaultSet):
            return self._nodes == other._nodes
        if isinstance(other, (set, frozenset)):
            return self._nodes == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._nodes)

    def nodes(self) -> FrozenSet[Node]:
        """Return the underlying frozen set of faulty nodes."""
        return self._nodes

    def union(self, other: Iterable[Node]) -> "FaultSet":
        """Return a new fault set with the extra nodes added."""
        return FaultSet(self._nodes | set(other), description=self.description)

    def __repr__(self) -> str:
        label = f" {self.description!r}" if self.description else ""
        preview = sorted(map(repr, self._nodes))[:6]
        suffix = ", ..." if len(self._nodes) > 6 else ""
        return f"<FaultSet{label} size={len(self._nodes)} nodes=[{', '.join(preview)}{suffix}]>"

    # ------------------------------------------------------------------
    # Validation / construction helpers
    # ------------------------------------------------------------------
    def validate(self, graph: Graph) -> None:
        """Raise :class:`FaultModelError` if a faulty node is not in ``graph``."""
        for node in self._nodes:
            if not graph.has_node(node):
                raise FaultModelError(f"faulty node {node!r} is not a node of the graph")

    def leaves_connected(self, graph: Graph) -> bool:
        """Return ``True`` if removing the faults leaves ``graph`` connected.

        The theorems only bound the surviving diameter for fault sets that do
        not disconnect the underlying graph (otherwise it is trivially
        infinite); fault sets smaller than the connectivity never disconnect
        it, but experiment code uses this predicate for larger, exploratory
        fault sets.
        """
        from repro.graphs.traversal import is_connected

        remaining = graph.without_nodes(self._nodes)
        if remaining.number_of_nodes() == 0:
            return False
        return is_connected(remaining)

    @classmethod
    def from_edge_faults(
        cls, graph: Graph, edges: Iterable[Edge], prefer_lower_degree: bool = True
    ) -> "FaultSet":
        """Convert edge faults into node faults per the paper's convention.

        For each faulty edge one endpoint is declared faulty.  By default the
        endpoint of lower degree is chosen (failing the "smaller" node weakens
        the network the least, giving the most favourable — but still sound —
        interpretation of the convention); pass ``prefer_lower_degree=False``
        to pick the higher-degree endpoint instead for a pessimistic model.
        """
        chosen: Set[Node] = set()
        for u, v in edges:
            if not graph.has_edge(u, v):
                raise FaultModelError(f"edge ({u!r}, {v!r}) is not in the graph")
            if u in chosen or v in chosen:
                continue  # the edge is already covered by an earlier choice
            du, dv = graph.degree(u), graph.degree(v)
            if prefer_lower_degree:
                chosen.add(u if du <= dv else v)
            else:
                chosen.add(u if du >= dv else v)
        return cls(chosen, description="edge faults (endpoint convention)")


def empty_fault_set() -> FaultSet:
    """Return the empty fault set (the no-failures baseline)."""
    return FaultSet((), description="no faults")

"""Common result container for the routing constructions.

Every construction in the library (kernel, circular, tri-circular, bipolar,
multirouting, augmented) returns a :class:`ConstructionResult`: the routing
itself together with the structural data the construction was built from (the
concentrator, the fault-tolerance parameter ``t``) and the paper's proven
``(d, f)`` guarantee, so that experiment code can check measured worst-case
diameters against the right bound without re-deriving it.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

from repro.core.routing import MultiRouting, Routing

Node = Hashable


@dataclasses.dataclass
class Guarantee:
    """A proven ``(d, f)``-tolerance guarantee.

    ``diameter_bound`` is the constant ``d`` (worst surviving diameter) and
    ``max_faults`` the number of faults ``f`` up to which it holds.  The
    ``source`` string records which theorem / lemma of the paper proves it.
    """

    diameter_bound: int
    max_faults: int
    source: str = ""

    def __str__(self) -> str:
        suffix = f" [{self.source}]" if self.source else ""
        return f"({self.diameter_bound}, {self.max_faults})-tolerant{suffix}"


@dataclasses.dataclass
class ConstructionResult:
    """A constructed routing plus the data needed to audit and benchmark it.

    Attributes
    ----------
    routing:
        The constructed :class:`Routing` (or :class:`MultiRouting` for the
        Section 6 variants).
    scheme:
        Construction name, e.g. ``"kernel"``, ``"circular"``, ``"bipolar-uni"``.
    t:
        The fault parameter the construction was built for (the underlying
        graph is assumed ``(t+1)``-connected).
    guarantee:
        The paper's proven tolerance for this construction and ``t``.
    concentrator:
        The concentrator node list ``M`` (ordering is meaningful for the
        circular family).
    details:
        Construction-specific extras: the ``Gamma_i`` sets, the two-trees
        roots, the partition into three circular components, added edges for
        the augmented construction, and so on.
    """

    routing: Union[Routing, MultiRouting]
    scheme: str
    t: int
    guarantee: Guarantee
    concentrator: List[Node] = dataclasses.field(default_factory=list)
    details: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def graph(self):
        """The underlying graph the routing was built on."""
        return self.routing.graph

    def fingerprint(self) -> str:
        """Return (and record) the routing's canonical SHA-256 fingerprint.

        Delegates to :meth:`repro.core.routing.Routing.fingerprint` and caches
        the digest under ``details["fingerprint"]``, so serialised results and
        scenario-campaign rows carry it.  Because the digest hashes the route
        table in repr-sorted order, two interpreter runs (any
        ``PYTHONHASHSEED``) built the same routing iff their fingerprints
        match — the construction-determinism regression tests compare exactly
        this value across subprocesses.
        """
        cached = self.details.get("fingerprint")
        if cached is None:
            cached = self.routing.fingerprint()
            self.details["fingerprint"] = cached
        return cached

    def describe(self) -> str:
        """Return a short human-readable summary of the construction."""
        lines = [
            f"scheme        : {self.scheme}",
            f"graph         : {self.graph!r}",
            f"t (faults)    : {self.t}",
            f"guarantee     : {self.guarantee}",
            f"concentrator  : {len(self.concentrator)} nodes",
            f"routed pairs  : {len(self.routing)}",
        ]
        for key in sorted(self.details):
            value = self.details[key]
            rendering = value if isinstance(value, (int, float, str)) else type(value).__name__
            lines.append(f"{key:<14}: {rendering}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<ConstructionResult scheme={self.scheme!r} t={self.t} "
            f"guarantee={self.guarantee} routes={len(self.routing)}>"
        )

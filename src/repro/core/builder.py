"""High-level facade: pick and build the best applicable routing for a graph.

``build_routing(G)`` inspects the graph and applies the strongest construction
whose structural requirement the graph satisfies, in the order the paper's
results would suggest:

1. **tri-circular** (Theorem 13, surviving diameter 4) if a neighbourhood set
   of ``6t + 9`` nodes exists;
2. **unidirectional / bidirectional bipolar** (Theorems 20 / 23, diameters
   4 / 5) if the graph has the two-trees property;
3. **small tri-circular** (Remark 14, diameter 5) if a neighbourhood set of
   ``3t + 3`` / ``3t + 6`` nodes exists;
4. **circular** (Theorem 10, diameter 6) if a neighbourhood set of ``t + 1``
   / ``t + 2`` nodes exists;
5. **kernel** (Theorems 3 / 4) as the universal fallback — it applies to any
   ``(t + 1)``-connected non-complete graph.

Callers who know what they want can request a specific strategy by name.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.augmentation import clique_augmented_kernel_routing
from repro.core.bipolar import bidirectional_bipolar_routing, unidirectional_bipolar_routing
from repro.core.circular import circular_routing
from repro.core.concentrators import (
    neighborhood_set,
    required_neighborhood_set_size,
)
from repro.core.construction import ConstructionResult
from repro.core.kernel import kernel_routing
from repro.core.multirouting import (
    full_multirouting,
    kernel_multirouting,
    single_tree_multirouting,
)
from repro.core.tricircular import tricircular_routing
from repro.exceptions import ConstructionError, PropertyNotSatisfiedError, ReproError
from repro.graphs.connectivity import connectivity_parameter
from repro.graphs.graph import Graph
from repro.graphs.properties import has_two_trees_property

Node = Hashable

#: Strategy names accepted by :func:`build_routing`.
STRATEGIES: Dict[str, Callable[..., ConstructionResult]] = {
    "kernel": kernel_routing,
    "circular": circular_routing,
    "tricircular": tricircular_routing,
    "tricircular-small": lambda graph, t=None, **kwargs: tricircular_routing(
        graph, t=t, small=True, **kwargs
    ),
    "bipolar-uni": unidirectional_bipolar_routing,
    "bipolar-bi": bidirectional_bipolar_routing,
    "multi-full": full_multirouting,
    "multi-kernel": kernel_multirouting,
    "multi-single-tree": single_tree_multirouting,
    "kernel+clique": clique_augmented_kernel_routing,
}

#: Preference order used by the automatic strategy (strongest bound first).
AUTO_ORDER: List[str] = [
    "tricircular",
    "bipolar-uni",
    "tricircular-small",
    "bipolar-bi",
    "circular",
    "kernel",
]


def available_strategies() -> List[str]:
    """Return the names accepted by :func:`build_routing`'s ``strategy`` argument.

    The list is fully sorted (``auto`` included) so every layer that renders
    it — CLI help, scenario-parser errors — shows the same stable listing.
    """
    return sorted([*STRATEGIES, "auto"])


def applicable_strategies(graph: Graph, t: Optional[int] = None) -> List[str]:
    """Return the single-routing strategies applicable to ``graph`` (best first).

    The check is structural only (neighbourhood-set size / two-trees
    property); it does not build the routings.
    """
    if t is None:
        t = connectivity_parameter(graph)
    result: List[str] = []
    two_trees = has_two_trees_property(graph)
    for name in AUTO_ORDER:
        if name in ("bipolar-uni", "bipolar-bi"):
            if two_trees:
                result.append(name)
            continue
        if name == "kernel":
            result.append(name)
            continue
        variant = {
            "tricircular": "tricircular",
            "tricircular-small": "tricircular-small",
            "circular": "circular",
        }[name]
        needed = required_neighborhood_set_size(t, variant)
        try:
            neighborhood_set(graph, needed)
        except PropertyNotSatisfiedError:
            continue
        result.append(name)
    return result


def build_routing(
    graph: Graph, strategy: str = "auto", t: Optional[int] = None, **kwargs
) -> ConstructionResult:
    """Build a fault-tolerant routing for ``graph``.

    Parameters
    ----------
    graph:
        The underlying network; must be connected (and at least
        2-connected for any non-trivial tolerance).
    strategy:
        ``"auto"`` (default) tries the constructions in order of decreasing
        strength and returns the first that applies, or one of
        :data:`STRATEGIES`.
    t:
        Optional fault parameter override (defaults to ``kappa(G) - 1``).
    kwargs:
        Passed through to the selected construction (e.g. ``concentrator=``,
        ``roots=``, ``separating_set=``).

    Raises
    ------
    ConstructionError
        If the requested strategy (or, for ``"auto"``, every strategy) cannot
        be applied to the graph.
    """
    if strategy != "auto":
        try:
            factory = STRATEGIES[strategy]
        except KeyError:
            raise ConstructionError(
                f"unknown strategy {strategy!r}; available: {available_strategies()}"
            ) from None
        return factory(graph, t=t, **kwargs)

    if t is None:
        t = connectivity_parameter(graph)
    errors: List[Tuple[str, str]] = []
    for name in AUTO_ORDER:
        factory = STRATEGIES[name]
        try:
            return factory(graph, t=t, **kwargs)
        except (ReproError, ValueError) as exc:
            # ValueError covers substrate-level refusals such as "complete
            # graphs have no separating set".
            errors.append((name, str(exc)))
    summary = "; ".join(f"{name}: {message}" for name, message in errors)
    raise ConstructionError(f"no construction applies to this graph ({summary})")

"""Numpy packed-bitset evaluation kernel for :class:`RouteIndex`.

The big-int bitset kernel evaluates one fault set at a time: each BFS level
advance is a Python loop of ``|=`` over big-int adjacency rows.  This module
re-expresses the same batched all-sources propagation over a **packed uint64
matrix** so a whole battery of fault sets advances in a handful of vectorised
numpy calls:

* the fault-free route graph is packed once into an ``(n, ceil(n/64))``
  uint64 matrix (one row per node, one bit per target), and each evaluation
  works on an ``(n + 1, B, w)`` *reach* tensor — ``B`` fault sets ("battery
  entries") progressing together, with row ``n`` a phantom always-zero row
  that padding arcs point at;
* one BFS level advance is a single ``np.take`` of every arc's target row
  followed by ``bitwise_or.reduce`` per source — no per-node Python loop;
* fault masking is one ``&=`` against an *expected* tensor that zeroes both
  the faulty rows and the faulty target columns of every entry;
* "entry complete" and "entry stuck" are ``xor`` + ``or``-reduce checks over
  the whole tensor.

Arcs are split bimodally: rows with at most ``dmax`` targets (the 90th
degree percentile) live in a rectangular padded table reduced with one
``bitwise_or.reduce`` over a fixed axis, while the few hub rows above the
cut are reduced with ``bitwise_or.reduceat`` over their concatenated
targets.  Killed arcs — arcs whose endpoints survive but whose route(s) die
— are zeroed out of the gathered target rows by ``(slot, entry)`` fancy
indexing each level, and patched out of the level-1 reach with per-fault
negated kill masks.

Scratch tensors are preallocated per battery width and reused across calls:
on the dense batteries this kernel targets, fresh multi-megabyte
allocations (page faults) would otherwise dominate the vectorised work.

The kernel is a **performance backend only**: it returns exactly the values
of :func:`repro.core.route_index._rows_diameter_witness` (the hypothesis
equivalence suites enforce this four ways against the sets, bitset and
naive kernels).  It is built lazily by :class:`RouteIndex` when the
``numpy`` backend is selected and is never pickled — worker processes
rebuild it from the shipped bitset rows on first use.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graphs.traversal import INFINITY

try:  # gated dependency: the library must work without numpy installed
    import numpy as np
except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY runs
    np = None


def numpy_available() -> bool:
    """True when the numpy backend can be used.

    Requires an importable ``numpy`` and an unset ``REPRO_NO_NUMPY``
    environment variable (the kill switch that forces the pure-Python
    bitset kernel even where numpy is installed).
    """
    return np is not None and not os.environ.get("REPRO_NO_NUMPY")


def _pack_ints(values: Sequence[int], width: int) -> "np.ndarray":
    """Pack big-int bitmasks into a ``(len(values), width)`` uint64 matrix."""
    buf = b"".join(v.to_bytes(width * 8, "little") for v in values)
    return np.frombuffer(buf, dtype="<u8").reshape(len(values), width).copy()


_U1 = None  # set lazily: np.uint64(1) — numpy may be absent at import time


class NumpyKernel:
    """Batched packed-bitset diameter kernel over one :class:`RouteIndex`.

    Built from the index's bitset structures only (base rows, kill masks,
    multirouting pair tables), so a slim, graph-free index can build it in a
    worker process.  All public entry points take fault sets as sorted lists
    of *node ids* (the index's internal ``0..n-1`` labels).
    """

    def __init__(self, index) -> None:
        global _U1
        if np is None:  # pragma: no cover - guarded by numpy_available()
            raise RuntimeError("numpy is not available")
        if _U1 is None:
            _U1 = np.uint64(1)
        self.index = index
        n = index._n
        self.n = n
        self.w = w = (n + 63) // 64
        self.base = _pack_ints(index._base_rows, w)
        self.full_arr = _pack_ints([index._full_mask], w)[0]
        bits = np.unpackbits(
            self.base.view(np.uint8), axis=1, bitorder="little"
        )[:, :n]
        src_all, tgt_all = np.nonzero(bits)
        self.arcs = src_all.size
        counts = np.bincount(src_all, minlength=n)
        nz = counts[counts > 0]
        # Bimodal row split: rows at or below the 90th degree percentile are
        # padded to a rectangle (vectorised or-reduce), the hub rows above
        # it are reduced segment-wise (reduceat handles long segments well).
        cut = max(4, int(np.percentile(nz, 90))) if nz.size else 4
        small = np.nonzero((counts > 0) & (counts <= cut))[0]
        hubs = np.nonzero(counts > cut)[0]
        self.small, self.hubs, self.dmax = small, hubs, cut
        pad = np.full((small.size, cut), n, dtype=np.int64)  # phantom row n
        arc_slot = np.empty(self.arcs, dtype=np.int64)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        for i, s in enumerate(small):
            lo, hi = offsets[s], offsets[s + 1]
            pad[i, : hi - lo] = tgt_all[lo:hi]
            arc_slot[lo:hi] = i * cut + np.arange(hi - lo)
        hub_parts, hub_starts, acc = [], [], 0
        for s in hubs:
            lo, hi = offsets[s], offsets[s + 1]
            hub_parts.append(tgt_all[lo:hi])
            hub_starts.append(acc)
            # Hub arcs are encoded as negative slots: -(flat position) - 1.
            arc_slot[lo:hi] = -(acc + np.arange(hi - lo)) - 1
            acc += hi - lo
        self.hub_tgt = (
            np.concatenate(hub_parts) if hub_parts else np.empty(0, np.int64)
        )
        self.hub_starts = np.asarray(hub_starts, dtype=np.int64)
        pad_flat = pad.reshape(-1)
        # One combined gather table: padded small slots, then hub arcs, so a
        # level advance is a single np.take into one scratch buffer.
        self.gather_tgt = np.concatenate([pad_flat, self.hub_tgt])
        self.hub_off = pad_flat.size
        self.src_all, self.tgt_all = src_all, tgt_all
        self.arc_slot = arc_slot
        diag = np.zeros((n, w), dtype=np.uint64)
        ids = np.arange(n)
        if n:
            diag[ids, ids >> 6] = _U1 << (ids & 63).astype(np.uint64)
        self.base_self = self.base | diag
        # Per-fault kill data.  Single routings: kill_rows_np[v] = (source
        # ids, negated kill-mask matrix) patches the level-1 reach with one
        # fancy AND per (entry, fault); kill_arcs[v] lists the killed arc
        # indices for the per-level gather zeroing.  Multiroutings resolve
        # killed arcs per fault set (an arc survives while any of its pair's
        # routes avoids the fault mask), so only the arc lookup is cached.
        self.kill_rows_np = {}
        self.kill_arcs = {}
        if not index._multi:
            for v in range(n):
                kr = index._kill_rows[v]
                if not kr:
                    continue
                sids = np.fromiter(kr.keys(), dtype=np.int64, count=len(kr))
                neg = _pack_ints(
                    [index._full_mask & ~m for m in kr.values()], w
                )
                self.kill_rows_np[v] = (sids, neg)
                out = []
                for s, mask in kr.items():
                    lo, hi = offsets[s], offsets[s + 1]
                    tg = tgt_all[lo:hi]
                    marr = _pack_ints([mask], w)[0]
                    sel = (
                        (marr[tg >> 6] >> (tg & 63).astype(np.uint64)) & _U1
                    ).astype(bool)
                    out.append(np.arange(lo, hi, dtype=np.int64)[sel])
                ka = np.concatenate(out) if out else np.empty(0, np.int64)
                if ka.size:
                    self.kill_arcs[v] = ka
        else:
            self.arc_of = {
                (int(src_all[a]), int(tgt_all[a])): a for a in range(self.arcs)
            }
        self._scratch_cache = {}
        self._scratch_bytes = 0
        self._last_level = 0

    # ------------------------------------------------------------------
    # Scratch management
    # ------------------------------------------------------------------

    #: Total bytes of cached scratch tensors kept co-resident.  Candidate
    #: rounds alternate a handful of widths (full chunks, the remainder
    #: chunk, the phase-2 survivor batch, single probes): reallocating the
    #: tensors on every width change re-faults megabytes of fresh pages per
    #: kernel call, so widths are cached side by side up to this budget.
    #: One oversize battery width (large ``n``) flushes the cache and lives
    #: alone, reproducing the old single-slot behaviour.
    _SCRATCH_CACHE_BYTES = 32 * 1024 * 1024

    def _scratch(self, B: int):
        """Preallocated work tensors for a battery of width ``B``."""
        tensors = self._scratch_cache.get(B)
        if tensors is None:
            n, w = self.n, self.w
            tensors = (
                np.zeros((n + 1, B, w), dtype=np.uint64),
                np.zeros((n + 1, B, w), dtype=np.uint64),
                np.zeros((n + 1, B, w), dtype=np.uint64),
                np.zeros((self.gather_tgt.size, B, w), dtype=np.uint64),
                np.zeros((self.small.size, B, w), dtype=np.uint64),
                np.zeros((n + 1, B, w), dtype=np.uint64),
                np.zeros((B, w), dtype=np.uint64),
            )
            size = sum(t.nbytes for t in tensors)
            if self._scratch_bytes + size > self._SCRATCH_CACHE_BYTES:
                self._scratch_cache.clear()
                self._scratch_bytes = 0
            self._scratch_cache[B] = tensors
            self._scratch_bytes += size
        # Witness extraction reads the evaluation's tensors back through
        # these attributes (and ``_bfs`` re-binds reach/upd after swaps).
        (
            self._reach, self._upd, self._expected, self._G,
            self._contrib_s, self._X, self._red,
        ) = tensors
        return tensors

    # ------------------------------------------------------------------
    # Killed-arc resolution
    # ------------------------------------------------------------------
    def _dead_slots(self, fault_lists, alive):
        """Killed-arc ``(gather slot, entry)`` pairs with both endpoints alive."""
        index = self.index
        ka_list, kb_list, sizes = [], [], []
        if not index._multi:
            for b, ids in enumerate(fault_lists):
                for v in ids:
                    ka = self.kill_arcs.get(v)
                    if ka is not None:
                        ka_list.append(ka)
                        kb_list.append(b)
                        sizes.append(ka.size)
        else:
            pairs_through = index._pairs_through
            pair_routes = index._pair_routes
            for b, ids in enumerate(fault_lists):
                if not ids:
                    continue
                fmask = 0
                for v in ids:
                    fmask |= 1 << v
                affected = set()
                for v in ids:
                    pairs = pairs_through.get(v)
                    if pairs:
                        affected |= pairs
                dead = []
                for sid, tid in affected:
                    if (fmask >> sid) & 1 or (fmask >> tid) & 1:
                        continue
                    if any(m & fmask == 0 for m in pair_routes[(sid, tid)]):
                        continue
                    dead.append(self.arc_of[(sid, tid)])
                if dead:
                    ka_list.append(np.asarray(dead, dtype=np.int64))
                    kb_list.append(b)
                    sizes.append(len(dead))
        if not ka_list:
            empty = np.empty(0, np.int64)
            return empty, empty
        dead_a = np.concatenate(ka_list)
        dead_b = np.repeat(
            np.asarray(kb_list, np.int64), np.asarray(sizes, np.int64)
        )
        sel = (
            alive[dead_b, self.src_all[dead_a]]
            & alive[dead_b, self.tgt_all[dead_a]]
        )
        dead_a, dead_b = dead_a[sel], dead_b[sel]
        slot = self.arc_slot[dead_a]
        # Map to combined-gather slots (hub arcs live after the pad block).
        slot = np.where(slot >= 0, slot, self.hub_off + (-slot - 1))
        return slot, dead_b

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def diameters(
        self,
        fault_lists: Sequence[Sequence[int]],
        cap: Optional[float] = None,
    ) -> List[float]:
        """Surviving diameters for a battery of fault id lists.

        Matches :meth:`RouteIndex.surviving_diameter` exactly: ``inf`` for a
        disconnected (or empty) surviving graph, and — with ``cap`` — ``inf``
        as soon as an entry's diameter is proven to exceed the cap (finite
        values are always exact).
        """
        values, _stuck = self._evaluate(fault_lists, cap)
        return values

    def diameter_witness(
        self, fault_ids: Sequence[int], cap: Optional[float] = None
    ) -> Tuple[float, Optional[Tuple[int, int]], Optional[Tuple[int, int, int]]]:
        """Single evaluation returning ``(value, witness, capped witness)``.

        The witnesses mirror :func:`_rows_diameter_witness`: the first is
        ``(source bit, unreached mask)`` when the evaluation proved a
        disconnection; the second is ``(source bit, unreached mask, lb)``
        when a cap was exceeded instead — every node of the mask is at
        distance at least ``lb`` from the source.  Both are ``None`` when
        the graph is connected within the cap.
        """
        values, stuck = self._evaluate([list(fault_ids)], cap)
        return self._witness_triple(values[0], stuck, 0, cap)

    def batch_witnesses(
        self,
        fault_lists: Sequence[Sequence[int]],
        cap: Optional[float] = None,
    ) -> List[Tuple[float, Optional[Tuple[int, int]], Optional[Tuple[int, int, int]]]]:
        """Batched evaluation returning a witness triple **per entry**.

        Same contract as :meth:`diameter_witness`, but the whole battery
        advances through one packed reach tensor — this is the entry point
        ``EvalCursor.batch_with_added`` evaluates candidate fault sets
        through.  Witnesses are extracted immediately, before any later call
        reuses the scratch tensors.
        """
        values, stuck = self._evaluate(fault_lists, cap)
        return [
            self._witness_triple(value, stuck, entry, cap)
            for entry, value in enumerate(values)
        ]

    def candidate_witnesses(
        self,
        base_ids: Sequence[int],
        cand_ids: Sequence[int],
        cap: Optional[float] = None,
    ) -> List[Tuple[float, Optional[Tuple[int, int]], Optional[Tuple[int, int, int]]]]:
        """Witness triples for ``base | {c}``, one lane per candidate ``c``.

        Semantically identical to :meth:`batch_witnesses` over the expanded
        fault lists (``-1`` marks a lane evaluating the bare base set), but
        the per-lane setup — alive masks, expected tensor, level-1 reach,
        killed-arc slots — is derived once from the shared base instead of
        rebuilt per lane.  This is the greedy adversary's candidate-round
        entry point, where every lane differs from the base by one node.

        Multiroutings fall back to the generic path: their killed arcs
        depend on the whole fault mask, so there is no base/candidate
        factorisation to exploit.
        """
        base = sorted(base_ids)
        if self.index._multi:
            return self.batch_witnesses(
                [sorted(base + [c]) if c >= 0 else list(base) for c in cand_ids],
                cap,
            )
        B = len(cand_ids)
        if B == 0:
            return []
        n, w = self.n, self.w
        reach, upd, expected, G, contrib_s, X, red = self._scratch(B)
        cand = np.asarray(cand_ids, dtype=np.int64)
        lanes = np.arange(B, dtype=np.int64)
        has = cand >= 0
        # Alive masks: the base row once, candidate bits cleared per lane.
        base_alive = np.ones(n, dtype=bool)
        if base:
            base_alive[base] = False
        alive = np.repeat(base_alive[None, :], B, axis=0)
        alive[lanes[has], cand[has]] = False
        base_arr = self.full_arr.copy()
        for v in base:
            base_arr[v >> 6] &= ~(_U1 << np.uint64(v & 63))
        cand_arr = np.broadcast_to(base_arr, (B, w)).copy()
        np.bitwise_and.at(
            cand_arr,
            (lanes[has], cand[has] >> 6),
            ~(_U1 << (cand[has] & 63).astype(np.uint64)),
        )
        np.copyto(expected[:n], cand_arr[None, :, :])
        expected[n] = 0
        if base:
            expected[base] = 0
        expected[cand[has], lanes[has]] = 0
        # Level-1 template: base self-rows with the base faults' kill masks
        # applied once; the expected AND below re-applies the row/column
        # masking per lane, so the template never needs per-lane copies.
        tmpl = self.base_self
        if base:
            tmpl = tmpl.copy()
            for v in base:
                k = self.kill_rows_np.get(v)
                if k is not None:
                    tmpl[k[0]] &= k[1]
        np.copyto(reach[:n], tmpl[:, None, :])
        reach[n] = 0
        np.bitwise_and(reach, expected, out=reach)
        # Per-lane delta: only the candidate's own kill masks.
        for b, c in enumerate(cand_ids):
            if c >= 0:
                k = self.kill_rows_np.get(c)
                if k is not None:
                    reach[k[0], b] &= k[1]
        dead_all, dead_s, dead_b = self._candidate_dead_slots(
            base, cand_ids, base_alive, alive
        )
        values, stuck = self._bfs(
            B, cap, alive.sum(axis=1), dead_s, dead_b,
            reach, upd, expected, G, contrib_s, X, red,
            dead_all=dead_all,
        )
        return [
            self._witness_triple(value, stuck, entry, cap)
            for entry, value in enumerate(values)
        ]

    def _candidate_dead_slots(self, base, cand_ids, base_alive, alive):
        """:meth:`_dead_slots` factorised for candidate lanes.

        Base-killed arcs are dead in *every* lane, so they come back as an
        unpaired slot array (``dead_all``, zeroed across the whole batch in
        one assignment) instead of being tiled per lane; only each
        candidate's own arcs need ``(slot, lane)`` pairs.  Extra slots the
        generic per-lane aliveness filter would have dropped (an endpoint
        that happens to be some lane's candidate, or a candidate arc
        touching a base fault) are harmless: their source or target rows
        are zero in those lanes, so zeroing the gather slot is a no-op.
        """
        base_ka = [
            self.kill_arcs[v] for v in base if v in self.kill_arcs
        ]
        empty = np.empty(0, np.int64)
        dead_all = empty
        if base_ka:
            bka = np.concatenate(base_ka)
            sel = base_alive[self.src_all[bka]] & base_alive[self.tgt_all[bka]]
            dead_all = bka[sel]
        parts_a, parts_b = [], []
        for b, c in enumerate(cand_ids):
            if c >= 0:
                ka = self.kill_arcs.get(c)
                if ka is not None:
                    parts_a.append(ka)
                    parts_b.append(np.full(ka.size, b, dtype=np.int64))
        if parts_a:
            dead_a = np.concatenate(parts_a)
            dead_b = np.concatenate(parts_b)
            sel = (
                alive[dead_b, self.src_all[dead_a]]
                & alive[dead_b, self.tgt_all[dead_a]]
            )
            dead_a, dead_b = dead_a[sel], dead_b[sel]
        else:
            dead_a = dead_b = empty
        def to_slot(arcs):
            slot = self.arc_slot[arcs]
            # Hub arcs live after the pad block (negative encoding).
            return np.where(slot >= 0, slot, self.hub_off + (-slot - 1))

        return to_slot(dead_all), to_slot(dead_a), dead_b

    def _witness_triple(
        self, value: float, stuck, entry: int, cap: Optional[float]
    ) -> Tuple[float, Optional[Tuple[int, int]], Optional[Tuple[int, int, int]]]:
        """Classify one evaluated entry into ``(value, witness, capped)``."""
        if value != INFINITY:
            return value, None, None
        extracted = self._extract_unreached(entry)
        if extracted is None:  # pragma: no cover - inf implies a witness
            return value, None, None
        source_bit, unreached = extracted
        if stuck[entry]:
            return value, (source_bit, unreached), None
        if cap is None:  # pragma: no cover - no cap means stuck or finite
            return value, None, None
        # Cap break: the reach tensor holds "within `_last_level` levels",
        # so every unreached node sits at distance >= _last_level + 1.
        return value, None, (source_bit, unreached, self._last_level + 1)

    def _extract_unreached(self, entry: int = 0) -> Optional[Tuple[int, int]]:
        """First alive source of ``entry`` that has not reached everything."""
        reach, _upd, expected = self._reach, self._upd, self._expected
        for row in range(self.n):
            if (reach[row, entry] != expected[row, entry]).any():
                have = int.from_bytes(reach[row, entry].tobytes(), "little")
                want = int.from_bytes(expected[row, entry].tobytes(), "little")
                if have == 0:
                    continue  # faulty row (expected is zero too)
                return 1 << row, want & ~have
        return None

    def _evaluate(self, fault_lists, cap):
        B = len(fault_lists)
        if B == 0:
            return [], np.zeros(0, dtype=bool)
        n, w = self.n, self.w
        reach, upd, expected, G, contrib_s, X, red = self._scratch(B)
        alive = np.ones((B, n), dtype=bool)
        for b, ids in enumerate(fault_lists):
            if ids:
                alive[b, ids] = False
        fb, ff = np.nonzero(~alive)
        alive_arr = np.broadcast_to(self.full_arr, (B, w)).copy()
        if fb.size:
            np.bitwise_and.at(
                alive_arr, (fb, ff >> 6), ~(_U1 << (ff & 63).astype(np.uint64))
            )
        # expected = alive columns on alive rows, zero on faulty rows: one
        # tensor does the row and column masking of every entry at once.
        np.copyto(expected[:n], alive_arr[None, :, :])
        expected[n] = 0
        if fb.size:
            expected[ff, fb] = 0
        # Level-1 reach: (row | self) restricted to the expected support.
        np.copyto(reach[:n], self.base_self[:, None, :])
        reach[n] = 0
        np.bitwise_and(reach, expected, out=reach)
        if not self.index._multi:
            # Patch killed arcs out of the level-1 reach: one fancy AND per
            # (entry, fault) via the per-fault negated kill masks.
            for b, ids in enumerate(fault_lists):
                for v in ids:
                    k = self.kill_rows_np.get(v)
                    if k is not None:
                        reach[k[0], b] &= k[1]
        dead_s, dead_b = self._dead_slots(fault_lists, alive)
        if self.index._multi and dead_s.size:
            # Multiroutings have no per-fault kill masks; clear the killed
            # target bits directly.  ufunc.at, not fancy `&=`: one source row
            # can carry several killed arcs of the same entry, and buffered
            # fancy assignment would apply only one of the clears.
            tgts = self.gather_tgt[dead_s]
            in_pad = dead_s < self.hub_off
            src = np.empty(dead_s.size, dtype=np.int64)
            src[in_pad] = self.small[dead_s[in_pad] // self.dmax]
            if self.hubs.size:
                hs = dead_s[~in_pad] - self.hub_off
                src[~in_pad] = self.hubs[
                    np.searchsorted(self.hub_starts, hs, side="right") - 1
                ]
            np.bitwise_and.at(
                reach,
                (src, dead_b, (tgts >> 6).astype(np.int64)),
                ~(_U1 << (tgts & 63).astype(np.uint64)),
            )
        return self._bfs(
            B, cap, alive.sum(axis=1), dead_s, dead_b,
            reach, upd, expected, G, contrib_s, X, red,
        )

    def _bfs(
        self, B, cap, n_alive, dead_s, dead_b,
        reach, upd, expected, G, contrib_s, X, red,
        dead_all=None,
    ):
        """Advance prepared reach tensors level by level.

        The shared back half of :meth:`_evaluate` and
        :meth:`candidate_witnesses`: both build the level-1 state (their
        setup differs), then run this loop.  Returns ``(values, was_stuck)``
        with the same contract as the monolithic evaluation always had.
        """
        w = self.w
        out = np.full(B, INFINITY, dtype=float)
        # Entries with one alive node have diameter 0, empty entries inf;
        # both are fixed points the loop below never re-touches.
        settled = n_alive <= 1
        was_stuck = np.zeros(B, dtype=bool)
        out[n_alive == 1] = 0.0
        ns, nh = self.small.size, self.hubs.size
        dmax = self.dmax
        level = 1
        while True:
            np.bitwise_xor(reach, expected, out=X)
            np.bitwise_or.reduce(X, axis=0, out=red)
            done = ~red.any(axis=1) & ~settled
            if done.any():
                out[done] = level
                settled |= done
            if settled.all():
                break
            if cap is not None and level >= cap:
                break
            Gv = np.take(reach, self.gather_tgt, axis=0, out=G)
            if dead_all is not None and dead_all.size:
                # Slots killed in every lane (a candidate batch's shared
                # base faults): one unpaired assignment for the batch.
                Gv[dead_all] = 0
            if dead_s.size:
                Gv[dead_s, dead_b] = 0
            np.bitwise_or.reduce(
                Gv[: self.hub_off].reshape(ns, dmax, B, w),
                axis=1,
                out=contrib_s,
            )
            np.copyto(upd, reach)
            upd[self.small] |= contrib_s
            if nh:
                contrib_h = np.bitwise_or.reduceat(
                    Gv[self.hub_off:].reshape(self.hub_tgt.size, -1),
                    self.hub_starts,
                    axis=0,
                ).reshape(nh, B, w)
                upd[self.hubs] |= contrib_h
            np.bitwise_and(upd, expected, out=upd)
            np.bitwise_xor(upd, reach, out=X)
            np.bitwise_or.reduce(X, axis=0, out=red)
            stuck = ~red.any(axis=1) & ~settled
            if stuck.any():
                # No change and not complete: disconnected, stays inf.
                settled |= stuck
                was_stuck |= stuck
                if settled.all():
                    # Keep `reach` as the final state (witness extraction
                    # reads it); `upd` equals it for the stuck entries.
                    break
            reach, upd = upd, reach
            level += 1
        # After the loop `reach` covers distance <= level: a cap break leaves
        # every unreached node at distance >= level + 1 (capped witness).
        self._last_level = level
        if reach is not self._reach:
            # The loop may end on a swapped buffer; witness extraction and
            # the next call's scratch hand-out expect the canonical order.
            self._reach, self._upd = reach, upd
        # Plain Python values only: int for finite diameters, the float inf
        # constant otherwise, exactly like the bitset kernel (serialisation
        # byte-compares depend on it).
        return [INFINITY if v == INFINITY else int(v) for v in out], was_stuck

"""Independent verifiers for the structural properties the proofs rely on.

Each theorem in the paper is proved by establishing a small set of named
properties of the surviving route graph (CIRC 1 / CIRC 2, T-CIRC, B-POL 1–4,
2B-POL 1–3) and then a short case analysis.  The functions here check those
properties *directly* on a concrete surviving graph for a concrete fault set.
They serve two purposes: they give much sharper diagnostics than a bare
"diameter exceeded the bound" failure, and they provide an independent
implementation against which the property-based tests cross-validate the
constructions.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.construction import ConstructionResult
from repro.core.routing import Routing
from repro.core.surviving import surviving_route_graph
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Node = Hashable


def _distance(surviving: DiGraph, source: Node, target: Node) -> float:
    return bfs_distances(surviving, source).get(target, float("inf"))


def _surviving(
    result: ConstructionResult, faults: Iterable[Node], index=None
) -> Tuple[DiGraph, Set[Node]]:
    fault_set = set(faults)
    surviving = surviving_route_graph(
        result.graph, result.routing, fault_set, index=index
    )
    return surviving, fault_set


# ----------------------------------------------------------------------
# Circular routing properties (Lemmas 6-9)
# ----------------------------------------------------------------------
def check_circ_properties(
    result: ConstructionResult, faults: Iterable[Node], index=None
) -> List[str]:
    """Check Properties CIRC 1 and CIRC 2 for a circular construction.

    Property CIRC 1: every surviving node outside ``M`` is within distance 2
    of some surviving ``M`` node.  Property CIRC 2: every two surviving ``M``
    nodes are within distance 2 of each other.  Returns a list of violation
    descriptions (empty when both properties hold).  ``index`` — an optional
    :class:`~repro.core.route_index.RouteIndex` for this construction —
    derives the surviving graph incrementally when the same construction is
    checked against many fault sets.
    """
    surviving, fault_set = _surviving(result, faults, index=index)
    members = [m for m in result.concentrator if m not in fault_set]
    problems: List[str] = []
    member_set = set(result.concentrator)

    for node in surviving.nodes():
        if node in member_set:
            continue
        distances = bfs_distances(surviving, node)
        if not any(distances.get(m, float("inf")) <= 2 for m in members):
            problems.append(
                f"CIRC 1 violated: {node!r} has no surviving concentrator node "
                f"within distance 2 (faults: {sorted(map(repr, fault_set))})"
            )
    for i, first in enumerate(members):
        distances = bfs_distances(surviving, first)
        for second in members[i + 1 :]:
            if distances.get(second, float("inf")) > 2:
                problems.append(
                    f"CIRC 2 violated: dist({first!r}, {second!r}) > 2 in the surviving graph"
                )
    return problems


def check_tcirc_property(
    result: ConstructionResult, faults: Iterable[Node], radius: int = 2, index=None
) -> List[str]:
    """Check Property T-CIRC (or Property CIRC with ``radius=3``).

    Every two surviving nodes must share some surviving concentrator member
    within distance ``radius`` of both (2 for the tri-circular routing of
    Theorem 13, 3 for the ``K = t+1 / t+2`` circular routing of Lemma 9).
    """
    surviving, fault_set = _surviving(result, faults, index=index)
    members = [m for m in result.concentrator if m not in fault_set]
    distances_from_member: Dict[Node, Dict[Node, int]] = {
        m: bfs_distances(surviving, m) for m in members
    }
    nodes = surviving.nodes()
    problems: List[str] = []
    for i, x in enumerate(nodes):
        for y in nodes[i + 1 :]:
            ok = False
            for m in members:
                dist_map = distances_from_member[m]
                if dist_map.get(x, float("inf")) <= radius and dist_map.get(y, float("inf")) <= radius:
                    ok = True
                    break
            if not ok:
                problems.append(
                    f"T-CIRC violated (radius {radius}): {x!r} and {y!r} share no "
                    "surviving concentrator member"
                )
    return problems


# ----------------------------------------------------------------------
# Bipolar routing properties (Lemmas 18-22)
# ----------------------------------------------------------------------
def check_bipolar_properties(
    result: ConstructionResult, faults: Iterable[Node], index=None
) -> List[str]:
    """Check Properties B-POL 1–4 for a unidirectional bipolar construction."""
    surviving, fault_set = _surviving(result, faults, index=index)
    m1 = [m for m in result.details["m1"] if m not in fault_set]
    m2 = [m for m in result.details["m2"] if m not in fault_set]
    m_all = set(result.details["m1"]) | set(result.details["m2"])
    problems: List[str] = []

    for node in surviving.nodes():
        successors = surviving.successors(node)
        predecessors = surviving.predecessors(node)
        if node not in set(result.details["m1"]):
            if not any(m in successors for m in m1):
                problems.append(f"B-POL 1 violated for {node!r}: no surviving M1 out-neighbour")
        if node not in set(result.details["m2"]):
            if not any(m in successors for m in m2):
                problems.append(f"B-POL 2 violated for {node!r}: no surviving M2 out-neighbour")
        if node not in m_all:
            if not any(m in predecessors for m in m1 + m2):
                problems.append(f"B-POL 3 violated for {node!r}: no surviving M in-neighbour")

    problems.extend(_check_pairwise(surviving, m1, 2, "B-POL 4 (M1)"))
    problems.extend(_check_pairwise(surviving, m2, 2, "B-POL 4 (M2)"))
    return problems


def check_bidirectional_bipolar_properties(
    result: ConstructionResult, faults: Iterable[Node], index=None
) -> List[str]:
    """Check Properties 2B-POL 1–3 for a bidirectional bipolar construction."""
    surviving, fault_set = _surviving(result, faults, index=index)
    m1 = [m for m in result.details["m1"] if m not in fault_set]
    m2 = [m for m in result.details["m2"] if m not in fault_set]
    m_all = set(result.details["m1"]) | set(result.details["m2"])
    problems: List[str] = []

    for node in surviving.nodes():
        if node in m_all:
            continue
        successors = surviving.successors(node)
        if not any(m in successors for m in m1 + m2):
            problems.append(f"2B-POL 1 violated for {node!r}: no surviving M neighbour")

    problems.extend(_check_pairwise(surviving, m1, 2, "2B-POL 2 (M1)"))
    problems.extend(_check_pairwise(surviving, m2, 2, "2B-POL 2 (M2)"))

    for node in m1:
        successors = surviving.successors(node)
        if not any(m in successors for m in m2):
            problems.append(f"2B-POL 3 violated for {node!r}: no surviving M2 neighbour")
    return problems


def _check_pairwise(
    surviving: DiGraph, members: Sequence[Node], bound: int, label: str
) -> List[str]:
    problems: List[str] = []
    for i, first in enumerate(members):
        distances = bfs_distances(surviving, first)
        for second in members[i + 1 :]:
            if distances.get(second, float("inf")) > bound:
                problems.append(
                    f"{label} violated: dist({first!r}, {second!r}) > {bound}"
                )
    return problems


# ----------------------------------------------------------------------
# Routing sanity checks (model invariants)
# ----------------------------------------------------------------------
def check_routing_model(routing: Routing) -> List[str]:
    """Check the basic model invariants of a routing.

    1. every route is a simple path of the underlying graph with matching
       endpoints (enforced on insertion, re-checked here for safety);
    2. for bidirectional routings, ``rho(x, y)`` is the reverse of
       ``rho(y, x)`` wherever both exist;
    3. adjacent pairs that carry a route carry the direct edge whenever the
       route's endpoints are adjacent *and* some component required it —
       we check the weaker universal invariant that a route between adjacent
       nodes defined by the paper's constructions is the direct edge.
    """
    from repro.graphs.traversal import is_simple_path

    problems: List[str] = []
    for (source, target), path in routing.items():
        if path[0] != source or path[-1] != target:
            problems.append(f"route for ({source!r}, {target!r}) has wrong endpoints")
        if not is_simple_path(routing.graph, path):
            problems.append(f"route for ({source!r}, {target!r}) is not a simple path")
        if routing.graph.has_edge(source, target) and len(path) != 2:
            problems.append(
                f"route for adjacent pair ({source!r}, {target!r}) is not the direct edge"
            )
    if routing.bidirectional and not routing.is_symmetric():
        problems.append("bidirectional routing is not symmetric")
    return problems

"""The surviving route graph ``R(G, rho)/F`` and its diameter.

Given a routing ``rho`` on a graph ``G`` and a set of faulty nodes ``F``, the
surviving route graph has the non-faulty nodes of ``G`` as its vertices and a
directed edge ``x -> y`` precisely when ``rho(x, y)`` exists and none of its
nodes is faulty.  Its diameter measures the worst-case number of route
traversals needed to deliver a message after the faults, which is the quantity
every theorem in the paper bounds.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple, Union

from repro.core.routing import MultiRouting, Routing
from repro.exceptions import FaultModelError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.traversal import INFINITY, bfs_distances, diameter as graph_diameter

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]


def _check_faults(graph: Graph, faults: Iterable[Node]) -> Set[Node]:
    fault_set = set(faults)
    for node in fault_set:
        if not graph.has_node(node):
            raise FaultModelError(f"faulty node {node!r} is not a node of the graph")
    return fault_set


def route_survives(path: Iterable[Node], faults: Set[Node]) -> bool:
    """Return ``True`` if no node of ``path`` is faulty.

    The paper says a route is *affected* by a fault if the fault is contained
    in it; edge faults are modelled by letting one endpoint of the edge be
    faulty, so node faults are the only fault type we need.
    """
    return not any(node in faults for node in path)


def _check_index(graph: Graph, routing: AnyRouting, index) -> None:
    if not index.matches(graph, routing):
        raise ValueError(
            "the supplied RouteIndex was built for a different graph or routing"
        )


def surviving_route_graph(
    graph: Graph, routing: AnyRouting, faults: Iterable[Node], index=None
) -> DiGraph:
    """Build the surviving route graph ``R(G, rho)/F``.

    The result is always represented as a :class:`DiGraph`; for a
    bidirectional routing the arc set is symmetric, so the directed diameter
    coincides with the undirected one and no information is lost.

    Parameters
    ----------
    graph:
        The underlying network ``G``.
    routing:
        Either a :class:`Routing` (the miserly model) or a
        :class:`MultiRouting` (Section 6); for the latter an arc appears when
        *any* of the parallel routes survives.
    faults:
        The set ``F`` of faulty nodes (must all belong to ``G``).
    index:
        Optional :class:`~repro.core.route_index.RouteIndex` built for this
        exact ``(graph, routing)`` pair; when given, the graph is derived by
        subtraction from the cached base instead of re-walking every route.
        The result is identical to the naive construction.
    """
    if index is not None:
        _check_index(graph, routing, index)
        return index.surviving_route_graph(faults)
    fault_set = _check_faults(graph, faults)
    surviving = DiGraph(name=f"R({graph.name or 'G'})/F")
    for node in graph.nodes():
        if node not in fault_set:
            surviving.add_node(node)

    if isinstance(routing, MultiRouting):
        for (source, target) in routing.pairs():
            if source in fault_set or target in fault_set:
                continue
            for path in routing.get_routes(source, target):
                if route_survives(path, fault_set):
                    surviving.add_edge(source, target)
                    break
        return surviving

    for (source, target), path in routing.items():
        if source in fault_set or target in fault_set:
            continue
        if route_survives(path, fault_set):
            surviving.add_edge(source, target)
    return surviving


def surviving_diameter(
    graph: Graph, routing: AnyRouting, faults: Iterable[Node], index=None
) -> float:
    """Return the diameter of the surviving route graph (``inf`` if disconnected).

    When ``index`` (a :class:`~repro.core.route_index.RouteIndex` for this
    ``(graph, routing)`` pair) is supplied, the fast incremental path is used;
    it returns exactly the value of the naive computation.
    """
    if index is not None:
        _check_index(graph, routing, index)
        return index.surviving_diameter(faults)
    return graph_diameter(surviving_route_graph(graph, routing, faults))


def surviving_diameter_at_most(
    graph: Graph,
    routing: AnyRouting,
    faults: Iterable[Node],
    bound: float,
    index=None,
) -> bool:
    """Decide ``surviving_diameter(graph, routing, faults) <= bound``.

    With ``index`` supplied this is the fast decision path: the bitset BFS of
    each source is abandoned as soon as its eccentricity exceeds ``bound``,
    and the first violating source short-circuits the whole evaluation —
    much cheaper than the exact diameter when the bound is violated.  Without
    an index the exact diameter is computed and compared (identical answer).
    """
    if index is not None:
        _check_index(graph, routing, index)
        return index.surviving_diameter_at_most(faults, bound)
    if bound != bound:  # NaN
        return False
    return surviving_diameter(graph, routing, faults) <= bound


def surviving_distance(
    graph: Graph,
    routing: AnyRouting,
    faults: Iterable[Node],
    source: Node,
    target: Node,
) -> float:
    """Return ``dist(source, target)`` in the surviving route graph."""
    surviving = surviving_route_graph(graph, routing, faults)
    if not surviving.has_node(source) or not surviving.has_node(target):
        raise FaultModelError("distance endpoints must be non-faulty nodes of G")
    distances = bfs_distances(surviving, source)
    return distances.get(target, INFINITY)


def surviving_eccentricities(
    graph: Graph, routing: AnyRouting, faults: Iterable[Node]
) -> Dict[Node, float]:
    """Return the eccentricity of every surviving node in ``R(G, rho)/F``."""
    surviving = surviving_route_graph(graph, routing, faults)
    total = surviving.number_of_nodes()
    result: Dict[Node, float] = {}
    for node in surviving.nodes():
        distances = bfs_distances(surviving, node)
        if len(distances) != total:
            result[node] = INFINITY
        else:
            result[node] = max(distances.values()) if total > 1 else 0
    return result


def routes_affected_by(routing: Routing, faults: Iterable[Node]) -> List[Tuple[Node, Node]]:
    """Return the ordered pairs whose route is affected (destroyed) by ``faults``.

    Pairs whose endpoints themselves are faulty are included: those routes are
    unusable too, although their endpoints also drop out of the surviving
    graph.  Mainly a diagnostic / reporting helper.
    """
    fault_set = set(faults)
    affected: List[Tuple[Node, Node]] = []
    for (source, target), path in routing.items():
        if any(node in fault_set for node in path):
            affected.append((source, target))
    return affected


def broadcast_round_bound(
    graph: Graph, routing: AnyRouting, faults: Iterable[Node]
) -> float:
    """Return the paper's bound on broadcast rounds for route-table recomputation.

    Section 1 observes that a node can broadcast to all others by attaching a
    "route counter" to the message and discarding it once the counter exceeds
    the diameter of the surviving route graph, so the number of broadcast
    rounds is bounded by that diameter.  This helper simply exposes the bound
    under the name used in the systems discussion; the actual protocol is
    implemented (and compared against this bound) in
    :mod:`repro.network.broadcast`.
    """
    return surviving_diameter(graph, routing, faults)

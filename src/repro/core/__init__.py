"""Core library: the paper's routing constructions and their analysis tools."""

from repro.core.routing import MultiRouting, Routing
from repro.core.construction import ConstructionResult, Guarantee
from repro.core.tree_routing import (
    tree_routing,
    tree_routing_to_neighborhood,
    verify_tree_routing,
)
from repro.core.concentrators import (
    greedy_neighborhood_set,
    lemma15_lower_bound,
    neighborhood_set,
    required_neighborhood_set_size,
    two_trees_concentrator,
    two_trees_concentrator_for_roots,
)
from repro.core.route_index import EvalCursor, RouteIndex
from repro.core.surviving import (
    broadcast_round_bound,
    route_survives,
    routes_affected_by,
    surviving_diameter,
    surviving_diameter_at_most,
    surviving_distance,
    surviving_eccentricities,
    surviving_route_graph,
)
from repro.core.kernel import kernel_guarantees, kernel_routing
from repro.core.circular import circular_component_range, circular_routing
from repro.core.tricircular import tricircular_routing
from repro.core.bipolar import bidirectional_bipolar_routing, unidirectional_bipolar_routing
from repro.core.multirouting import (
    full_multirouting,
    kernel_multirouting,
    single_tree_multirouting,
)
from repro.core.augmentation import added_edge_cost, clique_augmented_kernel_routing
from repro.core.tolerance import (
    ToleranceReport,
    check_tolerance,
    diameter_profile,
    verify_construction,
    worst_case_diameter,
)
from repro.core.verification import (
    check_bidirectional_bipolar_properties,
    check_bipolar_properties,
    check_circ_properties,
    check_routing_model,
    check_tcirc_property,
)
from repro.core.builder import (
    AUTO_ORDER,
    STRATEGIES,
    applicable_strategies,
    available_strategies,
    build_routing,
)
from repro.core.statistics import (
    RoutingStatistics,
    concentrator_load_share,
    node_loads,
    per_node_table_sizes,
    route_lengths,
    route_stretches,
    routing_statistics,
)
from repro.core.components import (
    DegradationPoint,
    component_diameters,
    graceful_degradation_profile,
    surviving_components,
    worst_component_diameter,
)

__all__ = [
    "MultiRouting",
    "Routing",
    "ConstructionResult",
    "Guarantee",
    "tree_routing",
    "tree_routing_to_neighborhood",
    "verify_tree_routing",
    "greedy_neighborhood_set",
    "lemma15_lower_bound",
    "neighborhood_set",
    "required_neighborhood_set_size",
    "two_trees_concentrator",
    "two_trees_concentrator_for_roots",
    "EvalCursor",
    "RouteIndex",
    "broadcast_round_bound",
    "route_survives",
    "routes_affected_by",
    "surviving_diameter",
    "surviving_diameter_at_most",
    "surviving_distance",
    "surviving_eccentricities",
    "surviving_route_graph",
    "kernel_guarantees",
    "kernel_routing",
    "circular_component_range",
    "circular_routing",
    "tricircular_routing",
    "bidirectional_bipolar_routing",
    "unidirectional_bipolar_routing",
    "full_multirouting",
    "kernel_multirouting",
    "single_tree_multirouting",
    "added_edge_cost",
    "clique_augmented_kernel_routing",
    "ToleranceReport",
    "check_tolerance",
    "diameter_profile",
    "verify_construction",
    "worst_case_diameter",
    "check_bidirectional_bipolar_properties",
    "check_bipolar_properties",
    "check_circ_properties",
    "check_routing_model",
    "check_tcirc_property",
    "AUTO_ORDER",
    "STRATEGIES",
    "applicable_strategies",
    "available_strategies",
    "build_routing",
    "RoutingStatistics",
    "concentrator_load_share",
    "node_loads",
    "per_node_table_sizes",
    "route_lengths",
    "route_stretches",
    "routing_statistics",
    "DegradationPoint",
    "component_diameters",
    "graceful_degradation_profile",
    "surviving_components",
    "worst_component_diameter",
]

"""The bipolar constructions (Section 5, Theorems 20 and 23).

A graph has the *two-trees property* when there are two roots ``r1, r2``
whose depth-2 neighbourhoods form two disjoint trees: the sets
``M1 = Gamma(r1)``, ``M2 = Gamma(r2)``, ``Gamma(x) - {r1}`` for ``x`` in
``M1`` and ``Gamma(x) - {r2}`` for ``x`` in ``M2`` are all pairwise disjoint.
The concentrator is ``M = M1 | M2``; ``Gamma_1`` / ``Gamma_2`` denote the
unions of the neighbour sets of the ``M1`` / ``M2`` nodes.

Two routings are defined:

* the **unidirectional bipolar routing** (Theorem 20, ``(4, t)``-tolerant) —
  components B-POL 1–6: tree routings from every node outside ``M1`` to
  ``M1`` and outside ``M2`` to ``M2`` (directed towards the concentrator),
  tree routings from each ``M1`` / ``M2`` node to each ``Gamma^1_j`` /
  ``Gamma^2_j`` set (directed away from the concentrator), reverse routes
  filled in along the same paths where only one direction was specified, and
  direct edge routes;
* the **bidirectional bipolar routing** (Theorem 23, ``(5, t)``-tolerant) —
  components 2B-POL 1–5, which restrict the tree routings towards ``M1`` /
  ``M2`` to nodes outside ``Gamma_1`` / ``Gamma_2`` so that the symmetric
  closure never assigns two different paths to the same pair.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.concentrators import (
    two_trees_concentrator,
    two_trees_concentrator_for_roots,
)
from repro.core.construction import ConstructionResult, Guarantee
from repro.core.routing import Routing
from repro.core.tree_routing import tree_routing, tree_routing_to_neighborhood
from repro.exceptions import ConstructionError
from repro.graphs.connectivity import connectivity_parameter
from repro.graphs.graph import Graph

Node = Hashable


def _bipolar_structure(
    graph: Graph, roots: Optional[Tuple[Node, Node]]
) -> Tuple[Node, Node, List[Node], List[Node], Set[Node], Set[Node]]:
    """Resolve roots, concentrator halves and the ``Gamma_1`` / ``Gamma_2`` unions."""
    if roots is None:
        r1, r2, m1, m2 = two_trees_concentrator(graph)
    else:
        r1, r2, m1, m2 = two_trees_concentrator_for_roots(graph, roots[0], roots[1])
    gamma1: Set[Node] = set()
    for member in m1:
        gamma1 |= graph.neighbors(member)
    gamma2: Set[Node] = set()
    for member in m2:
        gamma2 |= graph.neighbors(member)
    return r1, r2, m1, m2, gamma1, gamma2


def unidirectional_bipolar_routing(
    graph: Graph,
    t: Optional[int] = None,
    roots: Optional[Tuple[Node, Node]] = None,
) -> ConstructionResult:
    """Construct the unidirectional bipolar routing (Theorem 20, ``(4, t)``-tolerant).

    Parameters
    ----------
    graph:
        The underlying ``(t + 1)``-connected network with the two-trees
        property.
    t:
        Fault parameter; defaults to ``kappa(G) - 1``.
    roots:
        Optional explicit pair of roots; verified against the two-trees
        property.  When omitted a pair is searched for automatically.
    """
    if t is None:
        t = connectivity_parameter(graph)
    if t < 0:
        raise ConstructionError("t must be non-negative")
    width = t + 1
    r1, r2, m1, m2, gamma1, gamma2 = _bipolar_structure(graph, roots)
    m1_set, m2_set = set(m1), set(m2)
    if len(m1_set) < width or len(m2_set) < width:
        raise ConstructionError(
            "two-trees roots must have degree at least t + 1 for the bipolar routing"
        )

    routing = Routing(graph, bidirectional=False, name="bipolar-uni")

    # Component B-POL 1: tree routing from each node outside M1 to M1
    # (direction: towards the concentrator).
    for node in graph.nodes():
        if node in m1_set:
            continue
        routes = tree_routing(graph, node, m1_set, width, anchor=r1 if node != r1 else None)
        for endpoint, path in routes.items():
            routing.set_route(node, endpoint, path)

    # Component B-POL 2: likewise towards M2.
    for node in graph.nodes():
        if node in m2_set:
            continue
        routes = tree_routing(graph, node, m2_set, width, anchor=r2 if node != r2 else None)
        for endpoint, path in routes.items():
            routing.set_route(node, endpoint, path)

    # Components B-POL 3 and B-POL 4: tree routings from each concentrator
    # node towards every neighbourhood set on its own side (direction: away
    # from the concentrator).
    for member in m1:
        for center in m1:
            routes = tree_routing_to_neighborhood(graph, member, center, width)
            for endpoint, path in routes.items():
                routing.set_route(member, endpoint, path)
    for member in m2:
        for center in m2:
            routes = tree_routing_to_neighborhood(graph, member, center, width)
            for endpoint, path in routes.items():
                routing.set_route(member, endpoint, path)

    # Component B-POL 5: wherever only one direction is defined, define the
    # other direction along the same path.
    for (source, target), path in list(routing.items()):
        if not routing.has_route(target, source):
            routing.set_route(target, source, tuple(reversed(path)))

    # Component B-POL 6: direct edge routes (both directions).
    routing.add_all_edge_routes()

    guarantee = Guarantee(diameter_bound=4, max_faults=t, source="Theorem 20")
    return ConstructionResult(
        routing=routing,
        scheme="bipolar-uni",
        t=t,
        guarantee=guarantee,
        concentrator=list(m1) + list(m2),
        details=_details(r1, r2, m1, m2, gamma1, gamma2),
    )


def bidirectional_bipolar_routing(
    graph: Graph,
    t: Optional[int] = None,
    roots: Optional[Tuple[Node, Node]] = None,
) -> ConstructionResult:
    """Construct the bidirectional bipolar routing (Theorem 23, ``(5, t)``-tolerant).

    The components mirror the unidirectional construction but exclude the
    nodes of ``Gamma_1`` (resp. ``Gamma_2``) from the tree routings towards
    ``M1`` (resp. ``M2``): under the symmetric closure those nodes would
    otherwise receive a second, conflicting route from the concentrator-side
    tree routings of components 2B-POL 3 / 2B-POL 4.
    """
    if t is None:
        t = connectivity_parameter(graph)
    if t < 0:
        raise ConstructionError("t must be non-negative")
    width = t + 1
    r1, r2, m1, m2, gamma1, gamma2 = _bipolar_structure(graph, roots)
    m1_set, m2_set = set(m1), set(m2)
    m_union = m1_set | m2_set
    if len(m1_set) < width or len(m2_set) < width:
        raise ConstructionError(
            "two-trees roots must have degree at least t + 1 for the bipolar routing"
        )

    routing = Routing(graph, bidirectional=True, name="bipolar-bi")
    routing.add_all_edge_routes()

    # Component 2B-POL 1: tree routing to M1 from every node outside M and
    # outside Gamma_1.
    for node in graph.nodes():
        if node in m_union or node in gamma1:
            continue
        routes = tree_routing(graph, node, m1_set, width, anchor=r1 if node != r1 else None)
        for endpoint, path in routes.items():
            routing.set_route(node, endpoint, path)

    # Component 2B-POL 2: tree routing to M2 from every node outside M2 and
    # outside Gamma_2 (this covers the M1 nodes, giving Property 2B-POL 3).
    for node in graph.nodes():
        if node in m2_set or node in gamma2:
            continue
        routes = tree_routing(graph, node, m2_set, width, anchor=r2 if node != r2 else None)
        for endpoint, path in routes.items():
            routing.set_route(node, endpoint, path)

    # Components 2B-POL 3 and 2B-POL 4: concentrator-side tree routings.
    for member in m1:
        for center in m1:
            routes = tree_routing_to_neighborhood(graph, member, center, width)
            for endpoint, path in routes.items():
                routing.set_route(member, endpoint, path)
    for member in m2:
        for center in m2:
            routes = tree_routing_to_neighborhood(graph, member, center, width)
            for endpoint, path in routes.items():
                routing.set_route(member, endpoint, path)

    guarantee = Guarantee(diameter_bound=5, max_faults=t, source="Theorem 23")
    return ConstructionResult(
        routing=routing,
        scheme="bipolar-bi",
        t=t,
        guarantee=guarantee,
        concentrator=list(m1) + list(m2),
        details=_details(r1, r2, m1, m2, gamma1, gamma2),
    )


def _details(
    r1: Node,
    r2: Node,
    m1: Sequence[Node],
    m2: Sequence[Node],
    gamma1: Set[Node],
    gamma2: Set[Node],
) -> Dict[str, object]:
    return {
        "root1": r1,
        "root2": r2,
        "m1": list(m1),
        "m2": list(m2),
        "gamma1_size": len(gamma1),
        "gamma2_size": len(gamma2),
    }

"""Behaviour beyond the connectivity budget (Open Problem 3).

The theorems only speak about fault sets smaller than the connectivity: larger
fault sets may disconnect the underlying graph, making the surviving route
graph's diameter infinite.  Open Problem 3 of the paper asks for routings that
remain "well behaved" in that regime: the diameter should stay small *inside
each connected component* of the surviving network.

This module provides the measurement tools for exploring that question:

* :func:`surviving_components` — the connected components of the underlying
  graph after removing the faults (the best any routing could hope to serve);
* :func:`component_diameters` — for each such component, the diameter of the
  surviving route graph restricted to it (``inf`` if the routing fails to keep
  the component internally connected even though the underlying graph does);
* :func:`graceful_degradation_profile` — a sweep over increasing fault counts
  reporting how the per-component diameters grow, which the ablation benchmark
  uses to compare how gracefully the different constructions degrade.
"""

from __future__ import annotations

import dataclasses
import random as _random
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Union

from repro.core.routing import MultiRouting, Routing
from repro.core.surviving import surviving_route_graph
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, connected_components

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]
RandomLike = Union[int, _random.Random, None]


def surviving_components(graph: Graph, faults: Iterable[Node]) -> List[List[Node]]:
    """Return the connected components of ``G - F`` (each as a sorted node list)."""
    remaining = graph.without_nodes(set(faults))
    return [sorted(component, key=repr) for component in connected_components(remaining)]


def component_diameters(
    graph: Graph, routing: AnyRouting, faults: Iterable[Node], index=None
) -> List[Dict[str, object]]:
    """Return per-component diameters of the surviving route graph.

    For every connected component ``C`` of the underlying graph minus the
    faults, the entry records the component size and the diameter of the
    surviving route graph *restricted to C* — the quantity Open Problem 3 asks
    to keep small.  A diameter of ``inf`` means the routing leaves two nodes
    of the component unable to communicate even though the underlying network
    still connects them (routes may leave the component and hit faults).
    ``index`` — an optional :class:`~repro.core.route_index.RouteIndex` for
    ``(graph, routing)`` — derives the surviving graph incrementally, which
    a degradation sweep over many fault sets exploits.
    """
    fault_set = set(faults)
    surviving = surviving_route_graph(graph, routing, fault_set, index=index)
    results: List[Dict[str, object]] = []
    for component in surviving_components(graph, fault_set):
        restricted = surviving.subgraph(component)
        worst = 0.0
        for node in component:
            distances = bfs_distances(restricted, node)
            if len(distances) != len(component):
                worst = float("inf")
                break
            if len(component) > 1:
                worst = max(worst, max(distances.values()))
        results.append({"size": len(component), "diameter": worst, "nodes": component})
    return results


def worst_component_diameter(
    graph: Graph, routing: AnyRouting, faults: Iterable[Node], index=None
) -> float:
    """Return the largest per-component surviving diameter (0 for no components)."""
    entries = component_diameters(graph, routing, faults, index=index)
    if not entries:
        return 0.0
    return max(entry["diameter"] for entry in entries)


@dataclasses.dataclass
class DegradationPoint:
    """One point of a graceful-degradation sweep."""

    faults: int
    samples: int
    disconnected_fraction: float
    mean_worst_component_diameter: float
    max_worst_component_diameter: float

    def as_row(self) -> Dict[str, object]:
        """Return the point as a table row."""
        return {
            "faults": self.faults,
            "samples": self.samples,
            "disconnected": round(self.disconnected_fraction, 2),
            "mean_comp_diam": self.mean_worst_component_diameter
            if self.mean_worst_component_diameter == float("inf")
            else round(self.mean_worst_component_diameter, 2),
            "max_comp_diam": self.max_worst_component_diameter,
        }


def graceful_degradation_profile(
    graph: Graph,
    routing: AnyRouting,
    fault_counts: Sequence[int],
    samples: int = 10,
    seed: RandomLike = 0,
) -> List[DegradationPoint]:
    """Sweep fault counts (possibly beyond the connectivity) and measure degradation.

    For each fault count the sweep samples random fault sets, splits the
    remaining network into components, and records the worst per-component
    surviving diameter — finite values mean the routing still serves every
    surviving component internally, which is exactly the "well behaved"
    property Open Problem 3 asks about.

    The surviving route graphs are derived through one shared
    :class:`~repro.core.route_index.RouteIndex` built up front, so the sweep
    pays the route walk once instead of once per sampled fault set.
    """
    from repro.core.route_index import RouteIndex

    rng = _random.Random(seed) if not isinstance(seed, _random.Random) else seed
    nodes = graph.nodes()
    index = RouteIndex(graph, routing)
    points: List[DegradationPoint] = []
    for count in fault_counts:
        worst_values: List[float] = []
        disconnected = 0
        for _ in range(samples):
            if count > len(nodes):
                break
            faults = set(rng.sample(nodes, count))
            components = surviving_components(graph, faults)
            if len(components) > 1:
                disconnected += 1
            worst_values.append(
                worst_component_diameter(graph, routing, faults, index=index)
            )
        finite = [value for value in worst_values if value != float("inf")]
        mean_value = (
            sum(finite) / len(finite) if finite else float("inf")
        )
        points.append(
            DegradationPoint(
                faults=count,
                samples=len(worst_values),
                disconnected_fraction=(disconnected / len(worst_values)) if worst_values else 0.0,
                mean_worst_component_diameter=mean_value,
                max_worst_component_diameter=max(worst_values) if worst_values else 0.0,
            )
        )
    return points

"""The circular construction (Section 4, Theorem 10).

The circular routing is defined on any ``(t + 1)``-connected graph possessing
a *neighbourhood set* ``M = {m_0, ..., m_{K-1}}`` (independent nodes with
pairwise disjoint neighbour sets).  Writing ``Gamma_i`` for the neighbour set
of ``m_i`` and ``Gamma`` for their union, the routing's components are

* CIRC 1 — tree routings from every node ``x`` outside ``Gamma`` to every set
  ``Gamma_i``;
* CIRC 2 — tree routings from every node ``x`` in ``Gamma_i`` to the sets
  ``Gamma_{(i+j) mod K}`` for ``1 <= j <= ceil(K/2) - 1`` (the range
  restriction prevents two nodes of ``Gamma`` from acquiring conflicting
  routes);
* CIRC 3 — direct edge routes between all adjacent pairs.

With ``K >= t + 1`` (``t`` even) or ``K >= t + 2`` (``t`` odd) the routing is
``(6, t)``-tolerant (Theorem 10); the same holds for the ``K = 2t + 1``
variant analysed through Properties CIRC 1 / CIRC 2 (Lemmas 6 and 7).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

from repro.core.concentrators import neighborhood_set, required_neighborhood_set_size
from repro.core.construction import ConstructionResult, Guarantee
from repro.core.routing import Routing
from repro.core.tree_routing import tree_routing_to_neighborhood
from repro.exceptions import ConstructionError, PropertyNotSatisfiedError
from repro.graphs.connectivity import connectivity_parameter
from repro.graphs.graph import Graph
from repro.graphs.properties import is_neighborhood_set

Node = Hashable


def circular_component_range(k: int) -> range:
    """Return the CIRC 2 offset range ``1 .. ceil(K/2) - 1`` for concentrator size ``k``.

    The upper limit guarantees that for no pair of indices ``i != i'`` both
    ``i' - i`` and ``i - i'`` (mod ``K``) fall in the range, which is what
    rules out conflicting route assignments between two ``Gamma`` nodes.
    """
    if k < 1:
        raise ValueError("concentrator size must be positive")
    return range(1, math.ceil(k / 2))


def circular_routing(
    graph: Graph,
    t: Optional[int] = None,
    k: Optional[int] = None,
    concentrator: Optional[Sequence[Node]] = None,
    wide: bool = False,
) -> ConstructionResult:
    """Construct the bidirectional circular routing on ``graph``.

    Parameters
    ----------
    graph:
        The underlying ``(t + 1)``-connected network.
    t:
        Fault parameter; defaults to ``kappa(G) - 1``.
    k:
        Concentrator size ``K``.  Defaults to Theorem 10's requirement
        (``t + 1`` for even ``t``, ``t + 2`` for odd ``t``), or to ``2t + 1``
        when ``wide`` is set (the Lemma 7 variant).
    concentrator:
        Optional explicit neighbourhood set (its order fixes the circular
        order ``m_0, ..., m_{K-1}``).  When omitted one is constructed with
        the greedy algorithm of Lemma 15.
    wide:
        Select the ``K = 2t + 1`` variant when ``k`` is not given explicitly.

    Raises
    ------
    PropertyNotSatisfiedError
        If no neighbourhood set of the required size exists / can be found.
    ConstructionError
        If the connectivity assumption fails while building tree routings.
    """
    if t is None:
        t = connectivity_parameter(graph)
    if t < 0:
        raise ConstructionError("t must be non-negative")
    if k is None:
        variant = "circular-wide" if wide else "circular"
        k = required_neighborhood_set_size(t, variant)
    if k < 2:
        raise ConstructionError("the circular routing needs a concentrator of size >= 2")

    members = _resolve_concentrator(graph, k, concentrator)
    gammas = [graph.neighbors(member) for member in members]
    gamma_union: Set[Node] = set()
    for gamma in gammas:
        gamma_union |= gamma
    index_of = _gamma_index(members, gammas)

    width = t + 1
    routing = Routing(graph, bidirectional=True, name="circular")
    routing.add_all_edge_routes()

    # Component CIRC 1: nodes outside Gamma route to every Gamma_i.
    for node in graph.nodes():
        if node in gamma_union:
            continue
        for center in members:
            routes = tree_routing_to_neighborhood(graph, node, center, width)
            for endpoint, path in routes.items():
                routing.set_route(node, endpoint, path)

    # Component CIRC 2: nodes of Gamma_i route "forward" around the circle.
    offsets = circular_component_range(k)
    for node in sorted(gamma_union, key=repr):
        i = index_of[node]
        for offset in offsets:
            center = members[(i + offset) % k]
            routes = tree_routing_to_neighborhood(graph, node, center, width)
            for endpoint, path in routes.items():
                routing.set_route(node, endpoint, path)

    guarantee = Guarantee(diameter_bound=6, max_faults=t, source="Theorem 10")
    return ConstructionResult(
        routing=routing,
        scheme="circular",
        t=t,
        guarantee=guarantee,
        concentrator=list(members),
        details={
            "k": k,
            "wide": wide,
            "gamma_sizes": [len(gamma) for gamma in gammas],
            "gamma_union_size": len(gamma_union),
            "circ2_offsets": list(offsets),
        },
    )


def _resolve_concentrator(
    graph: Graph, k: int, concentrator: Optional[Sequence[Node]]
) -> List[Node]:
    """Validate a supplied concentrator or construct one of size ``k``."""
    if concentrator is not None:
        members = list(concentrator)
        if len(members) < k:
            raise ConstructionError(
                f"concentrator has {len(members)} nodes; {k} are required"
            )
        members = members[:k]
        if len(set(members)) != len(members):
            raise ConstructionError("concentrator contains repeated nodes")
        if not is_neighborhood_set(graph, members):
            raise PropertyNotSatisfiedError(
                "the supplied concentrator is not a neighbourhood set "
                "(nodes must be independent with pairwise disjoint neighbourhoods)"
            )
        return members
    return list(neighborhood_set(graph, k))[:k]


def _gamma_index(members: Sequence[Node], gammas: Sequence[Set[Node]]) -> Dict[Node, int]:
    """Map every node of ``Gamma`` to the index of the (unique) set containing it."""
    index_of: Dict[Node, int] = {}
    for i, gamma in enumerate(gammas):
        for node in gamma:
            if node in index_of:
                raise PropertyNotSatisfiedError(
                    f"node {node!r} belongs to two Gamma sets; the concentrator "
                    "is not a neighbourhood set"
                )
            index_of[node] = i
    for member in members:
        if member in index_of:
            raise PropertyNotSatisfiedError(
                f"concentrator node {member!r} lies in another member's "
                "neighbourhood; the concentrator is not independent"
            )
    return index_of

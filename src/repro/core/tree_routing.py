"""Tree routings (Lemma 2): node-disjoint routes from a node into a separating set.

A *(unidirectional) tree routing* from ``x`` to a separating set ``M`` is a
collection of routes connecting ``x`` to precisely ``t + 1`` nodes of ``M`` by
internally node-disjoint paths, with the additional requirement that whenever
``x`` is adjacent to one of those ``t + 1`` nodes the corresponding path is
the direct edge.  Lemma 1 then guarantees that as long as ``|F| <= t`` and
``x`` survives, at least one of the routes survives — the fundamental step of
every construction in the paper.

Lemma 2 proves existence constructively: pick a node ``y`` separated from
``x`` by ``M``, take ``t + 1`` internally disjoint ``x``–``y`` paths (Menger),
and truncate each at its first ``M``-node.  :func:`tree_routing` implements
exactly that, with the important practical specialisation that when ``M`` is
the neighbour set ``Gamma(m)`` of a concentrator node ``m`` the anchor ``y``
can simply be ``m`` itself.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConstructionError
from repro.graphs.disjoint_paths import (
    are_internally_disjoint,
    truncate_paths_at_set,
    vertex_disjoint_paths,
)
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Node = Hashable
Path = List[Node]


def _pick_anchor(graph: Graph, source: Node, separating_set: Set[Node]) -> Node:
    """Choose a node separated from ``source`` by ``separating_set``.

    Lemma 2 needs "some node y disconnected from x by M".  We remove ``M`` and
    return any node outside the component containing ``source``.
    """
    remaining = graph.without_nodes(separating_set)
    if not remaining.has_node(source):
        raise ConstructionError(
            f"tree routing source {source!r} must not belong to the separating set"
        )
    reachable = set(bfs_distances(remaining, source))
    for node in remaining.nodes():
        if node not in reachable:
            return node
    raise ConstructionError(
        f"set {sorted(map(repr, separating_set))} does not separate {source!r} "
        "from any node; it is not a separating set for this source"
    )


def tree_routing(
    graph: Graph,
    source: Node,
    separating_set: Iterable[Node],
    width: int,
    anchor: Optional[Node] = None,
) -> Dict[Node, Path]:
    """Build a tree routing from ``source`` to ``width`` nodes of ``separating_set``.

    Parameters
    ----------
    graph:
        The underlying graph.
    source:
        The routing's root ``x``; must not belong to the separating set.
    separating_set:
        The target set ``M``.  It must contain at least ``width`` nodes and
        must either separate the graph with respect to ``source`` or be the
        neighbourhood of the supplied ``anchor``.
    width:
        The number of node-disjoint routes required — ``t + 1`` in the paper.
    anchor:
        Optional node known to be separated from ``source`` by ``M``.  For the
        circular-family constructions ``M = Gamma(m)`` and ``anchor = m``; for
        the kernel construction the anchor is found automatically.

    Returns
    -------
    dict
        A mapping ``m -> path`` with exactly ``width`` entries; each path is a
        simple path from ``source`` to ``m``, the paths are internally
        disjoint, and whenever ``source`` is adjacent to ``m`` the path is the
        direct edge ``[source, m]``.

    Raises
    ------
    ConstructionError
        If the graph does not contain ``width`` disjoint paths into the set
        (i.e. the connectivity assumption of the construction is violated).
    """
    targets = set(separating_set)
    if source in targets:
        raise ConstructionError(
            f"tree routing source {source!r} must not belong to the separating set"
        )
    if width < 1:
        raise ConstructionError("tree routing width must be at least 1")
    if len(targets) < width:
        raise ConstructionError(
            f"separating set has {len(targets)} nodes but width {width} was requested"
        )

    # Shortcut: if the source is adjacent to at least `width` members of the
    # set, `width` direct edges already form a valid tree routing (trivially
    # disjoint, distinct endpoints, shortcut rule satisfied).
    direct_neighbors = graph.neighbors(source) & targets
    if anchor is not None and anchor == source:
        raise ConstructionError("anchor must differ from the source")
    if len(direct_neighbors) >= width:
        chosen = _stable_sample(direct_neighbors, width)
        return {m: [source, m] for m in chosen}

    if anchor is None:
        anchor = _pick_anchor(graph, source, targets)
    if anchor in targets:
        raise ConstructionError(f"anchor {anchor!r} must lie outside the separating set")

    paths = vertex_disjoint_paths(graph, source, anchor, k=None)
    truncated = truncate_paths_at_set(paths, targets)
    if len(truncated) < width:
        raise ConstructionError(
            f"only {len(truncated)} disjoint routes from {source!r} into the set "
            f"were found, but {width} are required; the graph does not meet the "
            "connectivity assumption of the construction"
        )

    # Prefer direct edges: Lemma 2's shortcut rule — whenever the source is
    # adjacent to the endpoint, the path must be the single edge.
    selected = _select_routes(graph, source, truncated, width)
    result: Dict[Node, Path] = {}
    for path in selected:
        endpoint = path[-1]
        if graph.has_edge(source, endpoint):
            result[endpoint] = [source, endpoint]
        else:
            result[endpoint] = list(path)
    assert are_internally_disjoint(list(result.values()))
    return result


def _stable_sample(nodes: Iterable[Node], count: int) -> List[Node]:
    """Return ``count`` nodes in a deterministic (repr-sorted) order."""
    ordered = sorted(nodes, key=repr)
    return ordered[:count]


def _select_routes(
    graph: Graph, source: Node, paths: Sequence[Path], width: int
) -> List[Path]:
    """Pick ``width`` routes, preferring short ones and direct edges.

    Keeping the shortest routes keeps the surviving-graph analysis identical
    (the proofs only use disjointness) while producing routes a real network
    would prefer.
    """
    ordered = sorted(
        paths,
        key=lambda path: (0 if graph.has_edge(source, path[-1]) else 1, len(path), repr(path[-1])),
    )
    return [list(path) for path in ordered[:width]]


def tree_routing_to_neighborhood(
    graph: Graph, source: Node, center: Node, width: int
) -> Dict[Node, Path]:
    """Tree routing from ``source`` into ``Gamma(center)`` anchored at ``center``.

    This is the form used by the circular, tri-circular and bipolar
    constructions, where each concentrator node's neighbour set acts as a
    separating set (it separates the concentrator node from the rest of the
    graph).  When ``source`` *is* the center, the routing degenerates to
    ``width`` direct edges to the center's neighbours.
    """
    neighborhood = graph.neighbors(center)
    if source == center:
        if len(neighborhood) < width:
            raise ConstructionError(
                f"node {center!r} has degree {len(neighborhood)} < required width {width}"
            )
        chosen = _stable_sample(neighborhood, width)
        return {m: [source, m] for m in chosen}
    if source in neighborhood:
        # The source itself belongs to the separating set Gamma(center); the
        # constructions never ask for this (the Gamma sets are disjoint from
        # the sources that route to them), so treat it as a usage error.
        raise ConstructionError(
            f"source {source!r} lies inside Gamma({center!r}); tree routing is undefined"
        )
    return tree_routing(graph, source, neighborhood, width, anchor=center)


def verify_tree_routing(
    graph: Graph,
    source: Node,
    separating_set: Iterable[Node],
    routes: Dict[Node, Path],
    width: int,
) -> List[str]:
    """Return a list of violations of the tree-routing definition (empty if valid).

    Checked conditions:

    1. exactly ``width`` routes, each ending at a distinct member of ``M``;
    2. every route is a simple path of ``G`` starting at ``source``;
    3. the routes are internally node-disjoint;
    4. whenever ``source`` is adjacent to an endpoint, the route is the edge.
    """
    from repro.graphs.traversal import is_simple_path

    targets = set(separating_set)
    problems: List[str] = []
    if len(routes) != width:
        problems.append(f"expected {width} routes, found {len(routes)}")
    for endpoint, path in routes.items():
        if endpoint not in targets:
            problems.append(f"endpoint {endpoint!r} is not in the separating set")
        if path[0] != source or path[-1] != endpoint:
            problems.append(f"route to {endpoint!r} has wrong endpoints: {path!r}")
        if not is_simple_path(graph, path):
            problems.append(f"route to {endpoint!r} is not a simple path: {path!r}")
        if graph.has_edge(source, endpoint) and list(path) != [source, endpoint]:
            problems.append(
                f"source is adjacent to {endpoint!r} but the route is not the direct edge"
            )
    if not are_internally_disjoint(list(routes.values())):
        problems.append("routes are not internally node-disjoint")
    return problems

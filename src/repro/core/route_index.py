"""Precomputed route index for incremental surviving-route-graph evaluation.

Evaluating a fault set the naive way (:func:`repro.core.surviving
.surviving_route_graph`) re-walks every route of the routing — ``O(n^2 *
route-length)`` work per fault set — even though a typical fault set touches
only a small fraction of the routes.  :class:`RouteIndex` amortises that work
across a whole campaign: it is built **once** per ``(graph, routing)`` pair
and precomputes

* the *base route graph* — the surviving route graph of the empty fault set
  (an arc per routed pair), stored as plain successor sets;
* an inverted index ``node -> {(x, y) pairs whose route(s) pass through it}``;
* for multiroutings, the node sets of every parallel route, so that an
  affected pair can be re-checked against only its own routes.

A fault set ``F`` is then evaluated by *subtraction*: copy the base successor
sets minus the faulty nodes (one C-level set difference per node) and delete
the arcs of the pairs indexed under each fault.  The result is exactly the
graph the naive path builds — same nodes, same arcs, same diameter — but the
per-fault-set cost is ``O(n^2 + |F| * affected)`` instead of
``O(n^2 * route-length)``, independent of route lengths.

:meth:`RouteIndex.surviving_diameter` additionally computes the diameter with
a frontier-set BFS that advances whole BFS levels with C-level set unions,
which on the dense surviving route graphs of total routings (diameter 2-4) is
several times faster than the per-neighbour BFS in
:mod:`repro.graphs.traversal` while returning the identical value.

The index is read-only with respect to the graph and routing: mutating either
after building the index invalidates it (build a fresh one instead).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Set, Tuple, Union

from repro.core.routing import MultiRouting, Routing
from repro.exceptions import FaultModelError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.traversal import INFINITY

Node = Hashable
Pair = Tuple[Node, Node]
AnyRouting = Union[Routing, MultiRouting]

_NO_PAIRS: FrozenSet[Pair] = frozenset()


class RouteIndex:
    """Inverted route index over a fixed ``(graph, routing)`` pair.

    Parameters
    ----------
    graph:
        The underlying network ``G``.
    routing:
        A :class:`Routing` or :class:`MultiRouting` over ``graph``.

    Notes
    -----
    Building the index costs one pass over every route (the same work as a
    single naive fault-set evaluation); every subsequent evaluation through
    the index is incremental.  The index holds only node/pair references, so
    it is cheap to pickle and ship to worker processes.
    """

    def __init__(self, graph: Graph, routing: AnyRouting) -> None:
        self.graph = graph
        self.routing = routing
        self._nodes: Tuple[Node, ...] = tuple(graph.nodes())
        self._node_set: FrozenSet[Node] = frozenset(self._nodes)
        self._base_succ: Dict[Node, Set[Node]] = {node: set() for node in self._nodes}
        self._pairs_through: Dict[Node, Set[Pair]] = {}
        # Only populated for multiroutings: pair -> node sets of its routes.
        self._pair_routes: Dict[Pair, Tuple[FrozenSet[Node], ...]] = {}
        self._multi = isinstance(routing, MultiRouting)
        if self._multi:
            for pair in routing.pairs():
                routes = tuple(frozenset(path) for path in routing.get_routes(*pair))
                if not routes:
                    continue
                self._pair_routes[pair] = routes
                self._base_succ[pair[0]].add(pair[1])
                for node in frozenset().union(*routes):
                    self._pairs_through.setdefault(node, set()).add(pair)
        else:
            for pair, path in routing.items():
                self._base_succ[pair[0]].add(pair[1])
                for node in path:
                    self._pairs_through.setdefault(node, set()).add(pair)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pairs_through(self, node: Node) -> FrozenSet[Pair]:
        """Return the ordered pairs whose route(s) traverse ``node``."""
        return frozenset(self._pairs_through.get(node, _NO_PAIRS))

    def base_route_graph(self) -> DiGraph:
        """Return a copy of the cached fault-free route graph."""
        return self._build_digraph(self._surviving_succ(frozenset()))

    def matches(self, graph: Graph, routing: AnyRouting) -> bool:
        """Return ``True`` when the index was built for exactly these objects."""
        return graph is self.graph and routing is self.routing

    # ------------------------------------------------------------------
    # Incremental evaluation
    # ------------------------------------------------------------------
    def _check_faults(self, faults: Iterable[Node]) -> FrozenSet[Node]:
        fault_set = frozenset(faults)
        if not fault_set <= self._node_set:
            missing = next(iter(fault_set - self._node_set))
            raise FaultModelError(
                f"faulty node {missing!r} is not a node of the graph"
            )
        return fault_set

    def _surviving_succ(self, fault_set: FrozenSet[Node]) -> Dict[Node, Set[Node]]:
        """Successor sets of ``R(G, rho)/F`` by subtraction from the base."""
        succ: Dict[Node, Set[Node]] = {}
        if fault_set:
            for node, base in self._base_succ.items():
                if node not in fault_set:
                    succ[node] = base - fault_set
        else:
            for node, base in self._base_succ.items():
                succ[node] = set(base)
            return succ

        affected: Set[Pair] = set()
        for fault in fault_set:
            affected |= self._pairs_through.get(fault, _NO_PAIRS)
        for source, target in affected:
            if source in fault_set or target in fault_set:
                continue
            if self._multi and any(
                routes.isdisjoint(fault_set)
                for routes in self._pair_routes[(source, target)]
            ):
                continue
            succ[source].discard(target)
        return succ

    def _build_digraph(self, succ: Dict[Node, Set[Node]]) -> DiGraph:
        surviving = DiGraph(name=f"R({self.graph.name or 'G'})/F")
        for node in succ:
            surviving.add_node(node)
        for source, targets in succ.items():
            for target in targets:
                surviving.add_edge(source, target)
        return surviving

    def surviving_route_graph(self, faults: Iterable[Node]) -> DiGraph:
        """Return ``R(G, rho)/F`` — identical to the naive construction."""
        return self._build_digraph(self._surviving_succ(self._check_faults(faults)))

    def surviving_diameter(self, faults: Iterable[Node]) -> float:
        """Return the diameter of ``R(G, rho)/F`` (``inf`` if disconnected)."""
        succ = self._surviving_succ(self._check_faults(faults))
        return _succ_diameter(succ)


def _succ_diameter(succ: Dict[Node, Set[Node]]) -> float:
    """Diameter of the digraph given by successor sets, via level-set BFS.

    Matches the conventions of :func:`repro.graphs.traversal.diameter`:
    ``inf`` for the empty or non-strongly-connected graph, ``0`` for a single
    node.  Each BFS level is advanced with whole-set unions, so the inner
    loop runs in C; on the dense, small-diameter surviving route graphs this
    dominates the per-node BFS by a large constant factor.
    """
    total = len(succ)
    if total == 0:
        return INFINITY
    worst = 0
    for source in succ:
        visited = {source}
        frontier = {source}
        eccentricity = 0
        while frontier and len(visited) < total:
            level: Set[Node] = set()
            for node in frontier:
                level |= succ[node]
            level -= visited
            if not level:
                break
            eccentricity += 1
            visited |= level
            frontier = level
        if len(visited) != total:
            return INFINITY
        if eccentricity > worst:
            worst = eccentricity
    return worst

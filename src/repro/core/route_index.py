"""Precomputed route index with a bitset surviving-diameter kernel.

Evaluating a fault set the naive way (:func:`repro.core.surviving
.surviving_route_graph`) re-walks every route of the routing — ``O(n^2 *
route-length)`` work per fault set — even though a typical fault set touches
only a small fraction of the routes.  :class:`RouteIndex` amortises that work
across a whole campaign: it is built **once** per ``(graph, routing)`` pair
and evaluates every fault set incrementally.

Bitset representation
---------------------
At build time the nodes are relabelled to ``0 .. n-1`` (in ``graph.nodes()``
order) and the fault-free *base route graph* is stored as one Python big-int
**adjacency row per node**: bit ``t`` of ``row[s]`` is set exactly when the
routing carries a surviving arc ``s -> t`` of the empty fault set.  Sets of
nodes (fault sets, BFS frontiers, reachability) are likewise single integers
with one bit per node.  The payoff is that the whole evaluation pipeline runs
on machine words inside CPython's long-integer kernels:

* masking out faulty nodes is one ``row & ~fault_mask`` per row instead of a
  per-node set difference;
* a BFS level advance is one ``next |= row[u]`` per frontier node and a
  single ``next & ~visited`` — no hashing, no per-neighbour Python loop;
* "every node reached" is an integer equality against the alive mask.

Alongside the rows the index keeps an inverted index ``node id -> {(s, t)
pairs whose route(s) pass through it}`` so a fault set only re-checks the
pairs it can actually affect, and — for multiroutings — one bitmask per
parallel route so "does some route survive" is a ``route_mask & fault_mask``
test per route.

Decision API
------------
:meth:`RouteIndex.surviving_diameter_at_most` answers the question callers
like ``check_tolerance`` actually ask — "is the surviving diameter at most
``bound``?" — without always paying for the exact value: each source's BFS is
abandoned as soon as its eccentricity exceeds the bound, and the first
violating source short-circuits the whole evaluation.
:meth:`RouteIndex.surviving_diameter` accepts the same optimisation through
its ``cap`` parameter (it returns ``inf`` as soon as the cap is exceeded) and
a ``kernel`` parameter selecting between the bitset kernel (default) and the
historical set-based kernel, which is kept for equivalence testing and
benchmarking.

Evaluation cursors
------------------
:meth:`RouteIndex.cursor` returns an :class:`EvalCursor` — a snapshot of the
masked adjacency rows for one fault set ``F``.  ``cursor.with_added(v)``
derives the cursor for ``F | {v}`` by touching only the rows that index ``v``
(its surviving predecessors, via a precomputed predecessor mask, plus the
pairs routed through ``v``) instead of re-masking all ``n`` rows.  Prefix
sharing callers — the greedy adversary evaluates ``F | {v}`` for hundreds of
``v`` per step — therefore pay ``O(degree + routes-through-v)`` per candidate
instead of ``O(n^2)``.  Cursors also memoise their diameter and the witness
of a disconnection: once a cursor is known to be disconnected by a missing
target other than ``v``, ``with_added(v)`` propagates the infinite diameter
without running a single BFS.

The index is read-only with respect to the graph and routing: mutating either
after building the index invalidates it (build a fresh one instead).  It is
picklable (plain ints, tuples and dicts), so a pre-built index can be shipped
to :class:`~repro.faults.engine.CampaignEngine` worker processes instead of
being rebuilt per worker.
"""

from __future__ import annotations

import math
import os
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple, Union

from repro.core.routing import MultiRouting, Routing
from repro.exceptions import FaultModelError
from repro.graphs.digraph import DiGraph
from repro.graphs.graph import Graph
from repro.graphs.traversal import INFINITY

Node = Hashable
Pair = Tuple[Node, Node]
IdPair = Tuple[int, int]
AnyRouting = Union[Routing, MultiRouting]

_NO_PAIRS: FrozenSet[IdPair] = frozenset()

#: Default density factor ``k`` in the strategy switch ``k * arcs <= n^2``:
#: batched all-sources propagation below the threshold, per-source frontier
#: BFS above it.  Override per index via the ``density_threshold`` constructor
#: argument or globally via the ``REPRO_BFS_DENSITY_THRESHOLD`` environment
#: variable (the constructor argument wins).  The value ``"auto"`` (either
#: place) calibrates the factor from observed per-strategy timings at build
#: time — see :meth:`RouteIndex.calibrate_density_threshold`.
DEFAULT_DENSITY_THRESHOLD = 8

#: Sentinel selecting timing-based calibration of the density factor.
DENSITY_THRESHOLD_AUTO = "auto"

#: Strategy labels reported by :meth:`RouteIndex.preferred_strategy`.
STRATEGY_BATCHED = "batched"
STRATEGY_PER_SOURCE = "per-source"

#: Evaluation backends: ``"bitset"`` is the pure-Python big-int kernel,
#: ``"numpy"`` the packed-uint64 batched kernel (requires numpy; silently
#: falls back to bitset where it is absent), ``"auto"`` picks numpy when it
#: is importable.  Select per index via the ``backend`` constructor argument
#: or globally via the ``REPRO_EVAL_BACKEND`` environment variable (the
#: constructor argument wins; ``REPRO_NO_NUMPY=1`` force-disables numpy
#: everywhere).  Every backend returns identical values.
EVAL_BACKEND_BITSET = "bitset"
EVAL_BACKEND_NUMPY = "numpy"
EVAL_BACKEND_AUTO = "auto"
_EVAL_BACKENDS = (EVAL_BACKEND_BITSET, EVAL_BACKEND_NUMPY, EVAL_BACKEND_AUTO)


def _resolve_density_threshold(
    value: Optional[Union[int, str]],
) -> Union[int, str]:
    """Resolve the density factor: explicit arg > env override > default.

    Returns either a validated integer factor or the ``"auto"`` sentinel
    (timing-based calibration, applied by the constructor after the bitset
    structures exist).  Resolution happens **once**, at index construction:
    the resolved value travels with the index (including its pickled and
    :meth:`RouteIndex.slim` forms), so worker processes evaluate with the
    parent's factor no matter what their own environment says.
    """
    if value is not None:
        if isinstance(value, str):
            if value != DENSITY_THRESHOLD_AUTO:
                raise ValueError(
                    f"density_threshold must be an integer or 'auto', got {value!r}"
                )
            return value
        if value < 1:
            raise ValueError("density_threshold must be at least 1")
        return value
    env = os.environ.get("REPRO_BFS_DENSITY_THRESHOLD")
    if env:
        if env.strip().lower() == DENSITY_THRESHOLD_AUTO:
            return DENSITY_THRESHOLD_AUTO
        try:
            parsed = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_BFS_DENSITY_THRESHOLD must be an integer or 'auto', "
                f"got {env!r}"
            ) from None
        if parsed < 1:
            raise ValueError("REPRO_BFS_DENSITY_THRESHOLD must be at least 1")
        return parsed
    return DEFAULT_DENSITY_THRESHOLD


def _resolve_eval_backend(value: Optional[str]) -> str:
    """Resolve the evaluation backend: explicit arg > env override > default.

    ``"auto"`` resolves to ``"numpy"`` when numpy is importable (and not
    disabled via ``REPRO_NO_NUMPY``), else ``"bitset"``.  An explicit
    ``"numpy"`` is kept as-is even where numpy is absent: evaluation falls
    back to the bitset kernel per process (see
    :attr:`RouteIndex.eval_backend`), so an index built and shipped with the
    numpy backend still evaluates correctly on a worker without numpy.
    """
    if value is None:
        value = os.environ.get("REPRO_EVAL_BACKEND") or EVAL_BACKEND_BITSET
    value = value.strip().lower()
    if value not in _EVAL_BACKENDS:
        raise ValueError(
            f"unknown eval backend {value!r}; expected one of {_EVAL_BACKENDS}"
        )
    if value == EVAL_BACKEND_AUTO:
        from repro.core.np_kernel import numpy_available

        return EVAL_BACKEND_NUMPY if numpy_available() else EVAL_BACKEND_BITSET
    return value


def _mask_ids(mask: int) -> List[int]:
    """The set bits of ``mask`` as an ascending id list."""
    ids: List[int] = []
    while mask:
        bit = mask & -mask
        ids.append(bit.bit_length() - 1)
        mask ^= bit
    return ids


class RouteIndex:
    """Inverted route index over a fixed ``(graph, routing)`` pair.

    Parameters
    ----------
    graph:
        The underlying network ``G``.
    routing:
        A :class:`Routing` or :class:`MultiRouting` over ``graph``.

    Notes
    -----
    Building the index costs one pass over every route (the same work as a
    single naive fault-set evaluation); every subsequent evaluation through
    the index is incremental.  See the module docstring for the bitset
    representation and the cursor API.
    """

    def __init__(
        self,
        graph: Graph,
        routing: AnyRouting,
        density_threshold: Optional[Union[int, str]] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.routing = routing
        # Factor k of the "k * arcs <= n^2" batched-vs-per-source BFS switch.
        # Resolved exactly once, here in the constructing process; "auto"
        # defers to a timing calibration after the bitset structures exist.
        resolved_threshold = _resolve_density_threshold(density_threshold)
        self._density_threshold = (
            DEFAULT_DENSITY_THRESHOLD
            if resolved_threshold == DENSITY_THRESHOLD_AUTO
            else resolved_threshold
        )
        # Evaluation backend ("bitset" or "numpy"), resolved once likewise.
        self._backend = _resolve_eval_backend(backend)
        # Lazily built numpy kernel; never pickled (workers rebuild it from
        # the shipped bitset rows on first use).
        self._np_kernel = None
        self._nodes: Tuple[Node, ...] = tuple(graph.nodes())
        self._node_set: FrozenSet[Node] = frozenset(self._nodes)
        self._id_of: Dict[Node, int] = {
            node: position for position, node in enumerate(self._nodes)
        }
        n = len(self._nodes)
        self._n = n
        self._full_mask = (1 << n) - 1
        # Bit t of _base_rows[s] <=> arc s -> t in the fault-free route graph;
        # _base_preds is the transpose (bit s of _base_preds[t] <=> s -> t).
        self._base_rows: List[int] = [0] * n
        self._base_preds: List[int] = [0] * n
        # Single routings: per-node *kill masks* — ``_kill_rows[v][s]`` is the
        # bitmask of targets t whose route ``rho(s, t)`` passes through v, so
        # failing v is ``rows[s] &= ~mask`` per indexed source (no per-pair
        # loop; endpoint arcs are covered because v is on its own routes).
        self._kill_rows: List[Dict[int, int]] = []
        # Multiroutings: node id -> ordered (source id, target id) pairs
        # routed through it, plus one node bitmask per parallel route (an arc
        # survives while any of its route masks avoids the fault mask).
        self._pairs_through: Dict[int, Set[IdPair]] = {}
        self._pair_routes: Dict[IdPair, Tuple[int, ...]] = {}
        self._multi = isinstance(routing, MultiRouting)
        # Set-based kernel structures (PR-1 path), built lazily on first use:
        # (base successor sets, node -> affected pairs, pair -> route node sets).
        self._set_kernel = None

        id_of = self._id_of
        if self._multi:
            for source, target in routing.pairs():
                sid, tid = id_of[source], id_of[target]
                masks = []
                through: Set[int] = set()
                for path in routing.get_routes(source, target):
                    mask = 0
                    for node in path:
                        mask |= 1 << id_of[node]
                    masks.append(mask)
                    through.update(id_of[node] for node in path)
                if not masks:
                    continue
                pair = (sid, tid)
                self._pair_routes[pair] = tuple(masks)
                self._base_rows[sid] |= 1 << tid
                self._base_preds[tid] |= 1 << sid
                for nid in through:
                    self._pairs_through.setdefault(nid, set()).add(pair)
        else:
            self._kill_rows = [{} for _ in range(n)]
            kill_rows = self._kill_rows
            for (source, target), path in routing.items():
                sid, tid = id_of[source], id_of[target]
                target_bit = 1 << tid
                self._base_rows[sid] |= target_bit
                self._base_preds[tid] |= 1 << sid
                for node in path:
                    kill = kill_rows[id_of[node]]
                    kill[sid] = kill.get(sid, 0) | target_bit

        if resolved_threshold == DENSITY_THRESHOLD_AUTO:
            self.calibrate_density_threshold()

    # ------------------------------------------------------------------
    # Pickling (worker shipping)
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        # The lazy set-kernel cache is redundant with the routing; dropping it
        # keeps the pickled payload small when shipping the index to workers.
        state["_set_kernel"] = None
        # The numpy kernel holds process-local scratch tensors and is cheap
        # to rebuild from the bitset rows; receivers rebuild it lazily.
        state["_np_kernel"] = None
        return state

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pairs_through(self, node: Node) -> FrozenSet[Pair]:
        """Return the ordered pairs whose route(s) traverse ``node``."""
        nid = self._id_of.get(node)
        if nid is None:
            return frozenset()
        nodes = self._nodes
        if self._multi:
            return frozenset(
                (nodes[sid], nodes[tid])
                for sid, tid in self._pairs_through.get(nid, _NO_PAIRS)
            )
        pairs = set()
        for sid, mask in self._kill_rows[nid].items():
            source = nodes[sid]
            while mask:
                bit = mask & -mask
                pairs.add((source, nodes[bit.bit_length() - 1]))
                mask ^= bit
        return frozenset(pairs)

    def base_route_graph(self) -> DiGraph:
        """Return a copy of the cached fault-free route graph."""
        return self._build_digraph(self._base_rows, self._full_mask)

    def matches(self, graph: Graph, routing: AnyRouting) -> bool:
        """Return ``True`` when the index was built for exactly these objects."""
        return graph is self.graph and routing is self.routing

    @property
    def density_threshold(self) -> int:
        """The factor ``k`` of the ``k * arcs <= n^2`` BFS strategy switch."""
        return self._density_threshold

    @property
    def backend(self) -> str:
        """The backend resolved at construction (``"bitset"`` or ``"numpy"``)."""
        return self._backend

    @property
    def eval_backend(self) -> str:
        """The backend evaluations actually use **in this process**.

        Equals :attr:`backend` except when the numpy backend was selected
        but numpy is unavailable here (not installed, or disabled via
        ``REPRO_NO_NUMPY``) — then evaluations silently fall back to the
        pure-Python bitset kernel.  Values are identical either way.
        """
        if self._backend == EVAL_BACKEND_NUMPY:
            from repro.core.np_kernel import numpy_available

            if numpy_available():
                return EVAL_BACKEND_NUMPY
        return EVAL_BACKEND_BITSET

    def _ensure_np_kernel(self):
        """Build (once per process) and return the numpy kernel, or ``None``."""
        kernel = self._np_kernel
        if kernel is None:
            from repro.core.np_kernel import NumpyKernel, numpy_available

            if not numpy_available():
                return None
            kernel = self._np_kernel = NumpyKernel(self)
        return kernel

    def calibrate_density_threshold(
        self, faults: Iterable[Node] = (), repeats: int = 3
    ) -> int:
        """Set the density factor from observed per-strategy timings.

        Runs both BFS strategies ``repeats`` times on the surviving rows of
        ``faults`` (best-of timing, to shrug off scheduler noise) and sets
        the factor to the break-even point ``k* = (total^2 / arcs) * (T_b /
        T_p)``: with it, the ``k * arcs <= total^2`` switch picks the
        batched strategy exactly when it was observed to be the faster one
        on this workload.  The result is clamped to ``[1, 1024]`` and
        returned.  Calibration is a performance knob only — every strategy
        returns identical values — but it is timing-based and therefore
        machine-dependent, so it runs only when explicitly requested
        (``density_threshold="auto"`` or this method).
        """
        import time as _time

        fault_mask = self._fault_mask(self._check_faults(faults))
        rows = self._surviving_rows(fault_mask)
        alive = self._full_mask & ~fault_mask
        total = alive.bit_count()
        arcs = 0
        for row in rows:
            arcs += row.bit_count()
        if total < 2 or arcs == 0:
            return self._density_threshold
        best_batched = best_per_source = float("inf")
        for _ in range(max(1, repeats)):
            start = _time.perf_counter()
            _batched_diameter(rows, alive, total, None)
            best_batched = min(best_batched, _time.perf_counter() - start)
            start = _time.perf_counter()
            _per_source_diameter(rows, alive, None)
            best_per_source = min(
                best_per_source, _time.perf_counter() - start
            )
        if best_per_source <= 0 or best_batched <= 0:
            return self._density_threshold
        ratio = (total * total) / arcs
        factor = round(ratio * (best_batched / best_per_source))
        self._density_threshold = max(1, min(1024, factor))
        return self._density_threshold

    @property
    def node_pool(self) -> Tuple[Node, ...]:
        """The graph's nodes in canonical (repr-sorted) order.

        This is the pool random and exhaustive fault batteries draw from;
        exposing it on the index lets campaign workers regenerate their
        shards without holding the graph object (see :meth:`slim`).
        """
        pool = getattr(self, "_node_pool", None)
        if pool is None:
            pool = self._node_pool = tuple(sorted(self._nodes, key=repr))
        return pool

    def preferred_strategy(self, faults: Iterable[Node] = ()) -> str:
        """Return which BFS strategy a diameter evaluation of ``faults`` picks.

        ``"batched"`` (all-sources propagation) when ``density_threshold *
        arcs <= n^2`` on the surviving rows, ``"per-source"`` (frontier BFS
        with early completion exit) otherwise.  Campaign rows record this so
        sweeps over workload families can correlate throughput with the
        strategy actually exercised.
        """
        fault_mask = self._fault_mask(self._check_faults(faults))
        rows = self._surviving_rows(fault_mask)
        alive = self._full_mask & ~fault_mask
        total = alive.bit_count()
        arcs = 0
        for row in rows:
            arcs += row.bit_count()
        if arcs * self._density_threshold <= total * total:
            return STRATEGY_BATCHED
        return STRATEGY_PER_SOURCE

    # ------------------------------------------------------------------
    # Artifact export (serving layer)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Return the index's evaluation state as plain Python structures.

        The export hook behind :mod:`repro.serving.artifact`: everything the
        evaluation surface needs — node labels in id order, the base
        adjacency/predecessor rows, the per-node kill masks (or the
        multirouting pair tables) and the resolved tunables — as ints,
        tuples, lists and dicts only, so a compiler can lay the state out in
        any on-disk format without touching the graph or routing objects.
        :meth:`from_state` reconstructs an evaluation-equivalent index from
        the returned mapping.
        """
        state: Dict[str, object] = {
            "nodes": tuple(self._nodes),
            "multi": self._multi,
            "base_rows": list(self._base_rows),
            "base_preds": list(self._base_preds),
            "density_threshold": self._density_threshold,
            "backend": self._backend,
        }
        if self._multi:
            # Insertion order of ``_pair_routes`` is part of the identity
            # (parallel routes are tried in stored order); keep it.
            state["pair_routes"] = {
                pair: tuple(masks) for pair, masks in self._pair_routes.items()
            }
        else:
            state["kill_rows"] = [dict(kill) for kill in self._kill_rows]
        return state

    @classmethod
    def from_state(
        cls, state: Dict[str, object], backend: Optional[str] = None
    ) -> "RouteIndex":
        """Rebuild an evaluation-only index from :meth:`export_state` output.

        The result is equivalent to :meth:`slim`'s graph-free form: the whole
        evaluation surface works (diameters, cursors, batches, every
        backend), while :meth:`matches` is always ``False`` and the lazy set
        kernel is unavailable.  ``backend`` overrides the exported backend
        (resolved in *this* process, e.g. to honour a server's
        ``--eval-backend`` flag against an artifact compiled elsewhere).
        """
        index = object.__new__(cls)
        index.graph = None
        index.routing = None
        index._density_threshold = int(state["density_threshold"])
        index._backend = (
            _resolve_eval_backend(backend)
            if backend is not None
            else str(state["backend"])
        )
        index._np_kernel = None
        index._set_kernel = None
        nodes = tuple(state["nodes"])
        index._nodes = nodes
        index._node_set = frozenset(nodes)
        index._id_of = {node: position for position, node in enumerate(nodes)}
        n = len(nodes)
        index._n = n
        index._full_mask = (1 << n) - 1
        index._base_rows = [int(row) for row in state["base_rows"]]
        index._base_preds = [int(row) for row in state["base_preds"]]
        index._multi = bool(state["multi"])
        if index._multi:
            index._kill_rows = []
            index._pair_routes = {
                (int(sid), int(tid)): tuple(int(mask) for mask in masks)
                for (sid, tid), masks in state["pair_routes"].items()
            }
            pairs_through: Dict[int, Set[IdPair]] = {}
            for pair, masks in index._pair_routes.items():
                through = 0
                for mask in masks:
                    through |= mask
                for nid in _mask_ids(through):
                    pairs_through.setdefault(nid, set()).add(pair)
            index._pairs_through = pairs_through
        else:
            index._kill_rows = [
                {int(sid): int(mask) for sid, mask in kill.items()}
                for kill in state["kill_rows"]
            ]
            index._pairs_through = {}
            index._pair_routes = {}
        return index

    def slim(self) -> "RouteIndex":
        """Return an evaluation-only copy without the graph and routing.

        The copy shares every bitset structure with ``self`` but replaces the
        ``graph`` / ``routing`` references with ``None``, which shrinks the
        pickled payload shipped to campaign workers to the adjacency rows,
        kill masks and node labels.  The slim index supports the whole
        evaluation surface (``surviving_diameter`` / ``..._at_most``,
        cursors, ``surviving_route_graph``, ``node_pool``); only
        :meth:`matches` (always ``False``) and the lazy set kernel (which
        needs the routing) are unavailable.
        """
        clone = object.__new__(RouteIndex)
        clone.__dict__.update(self.__dict__)
        clone.graph = None
        clone.routing = None
        clone._set_kernel = None
        clone._np_kernel = None  # rebuilt lazily in the receiving process
        clone._node_pool = self.node_pool  # materialise before shipping
        return clone

    # ------------------------------------------------------------------
    # Fault-set plumbing
    # ------------------------------------------------------------------
    def _check_faults(self, faults: Iterable[Node]) -> FrozenSet[Node]:
        fault_set = frozenset(faults)
        if not fault_set <= self._node_set:
            missing = next(iter(fault_set - self._node_set))
            raise FaultModelError(
                f"faulty node {missing!r} is not a node of the graph"
            )
        return fault_set

    def _fault_mask(self, fault_set: Iterable[Node]) -> int:
        id_of = self._id_of
        mask = 0
        for node in fault_set:
            mask |= 1 << id_of[node]
        return mask

    def _surviving_rows(self, fault_mask: int) -> List[int]:
        """Masked adjacency rows of ``R(G, rho)/F`` (faulty rows zeroed)."""
        alive = self._full_mask & ~fault_mask
        rows = [row & alive for row in self._base_rows]
        remaining = fault_mask
        while remaining:
            bit = remaining & -remaining
            rows[bit.bit_length() - 1] = 0
            remaining ^= bit
        if not fault_mask:
            return rows

        if not self._multi:
            kill_rows = self._kill_rows
            remaining = fault_mask
            while remaining:
                bit = remaining & -remaining
                for sid, mask in kill_rows[bit.bit_length() - 1].items():
                    rows[sid] &= ~mask
                remaining ^= bit
            return rows

        affected: Set[IdPair] = set()
        pairs_through = self._pairs_through
        remaining = fault_mask
        while remaining:
            bit = remaining & -remaining
            pairs = pairs_through.get(bit.bit_length() - 1)
            if pairs:
                affected |= pairs
            remaining ^= bit
        multi_routes = self._pair_routes
        for sid, tid in affected:
            if (fault_mask >> sid) & 1 or (fault_mask >> tid) & 1:
                continue
            if any(mask & fault_mask == 0 for mask in multi_routes[(sid, tid)]):
                continue
            rows[sid] &= ~(1 << tid)
        return rows

    # ------------------------------------------------------------------
    # Graph materialisation
    # ------------------------------------------------------------------
    def _build_digraph(self, rows: List[int], alive: int) -> DiGraph:
        base_name = (self.graph.name if self.graph is not None else "") or "G"
        surviving = DiGraph(name=f"R({base_name})/F")
        nodes = self._nodes
        remaining = alive
        while remaining:
            bit = remaining & -remaining
            surviving.add_node(nodes[bit.bit_length() - 1])
            remaining ^= bit
        remaining = alive
        while remaining:
            bit = remaining & -remaining
            sid = bit.bit_length() - 1
            source = nodes[sid]
            targets = rows[sid]
            while targets:
                tbit = targets & -targets
                surviving.add_edge(source, nodes[tbit.bit_length() - 1])
                targets ^= tbit
            remaining ^= bit
        return surviving

    def surviving_route_graph(self, faults: Iterable[Node]) -> DiGraph:
        """Return ``R(G, rho)/F`` — identical to the naive construction."""
        fault_mask = self._fault_mask(self._check_faults(faults))
        rows = self._surviving_rows(fault_mask)
        return self._build_digraph(rows, self._full_mask & ~fault_mask)

    # ------------------------------------------------------------------
    # Diameter evaluation
    # ------------------------------------------------------------------
    def surviving_diameter(
        self,
        faults: Iterable[Node],
        cap: Optional[float] = None,
        kernel: Optional[str] = None,
    ) -> float:
        """Return the diameter of ``R(G, rho)/F`` (``inf`` if disconnected).

        Parameters
        ----------
        cap:
            Optional eccentricity cap: when given, the evaluation returns
            ``inf`` as soon as some source's eccentricity is proven to exceed
            ``cap`` (so a finite return value is always the exact diameter,
            and any return value compares against ``cap`` exactly like the
            true diameter does).
        kernel:
            ``None`` (default) follows the index's resolved backend
            (:attr:`eval_backend`).  An explicit ``"bitset"`` forces the
            big-int kernel, ``"numpy"`` the packed-uint64 kernel (raising
            where numpy is unavailable), and ``"sets"`` the historical PR-1
            set-based kernel, kept for equivalence testing and
            benchmarking.  All kernels return identical values.
        """
        fault_set = self._check_faults(faults)
        if kernel == "sets":
            if cap is not None:
                raise ValueError("cap is only supported by the bitset kernel")
            return _succ_diameter(self._set_surviving_succ(fault_set))
        if kernel is None:
            kernel = self.eval_backend
        if kernel == EVAL_BACKEND_NUMPY:
            np_kernel = self._ensure_np_kernel()
            if np_kernel is None:
                raise ValueError(
                    "the numpy kernel was requested but numpy is unavailable "
                    "(not installed, or disabled via REPRO_NO_NUMPY)"
                )
            ids = sorted(self._id_of[node] for node in fault_set)
            return np_kernel.diameters([ids], cap=cap)[0]
        if kernel != EVAL_BACKEND_BITSET:
            raise ValueError(f"unknown kernel {kernel!r}")
        fault_mask = self._fault_mask(fault_set)
        rows = self._surviving_rows(fault_mask)
        return _rows_diameter(
            rows, self._full_mask & ~fault_mask, cap, self._density_threshold
        )

    #: Battery entries evaluated per numpy-kernel call: bounds the scratch
    #: tensors to a fixed width so arbitrarily large batteries stream through
    #: the same preallocated buffers.
    _NP_BATCH = 64

    #: Candidate-batch width for :meth:`EvalCursor.batch_with_added` (the
    #: greedy adversary's rounds).  Narrower than :attr:`_NP_BATCH`: a
    #: candidate round's gather tensor is hot for only 2-3 BFS levels, so
    #: keeping it cache-resident beats amortising Python overhead further —
    #: 16 lanes × 4 words is the measured sweet spot on dense ~200-node
    #: instances.
    _NP_CANDIDATE_BATCH = 16

    def surviving_diameters(
        self,
        fault_sets: Iterable[Iterable[Node]],
        cap: Optional[float] = None,
    ) -> List[float]:
        """Surviving diameters for a whole battery of fault sets, in order.

        The batch entry point the campaign engine and the suite workers
        evaluate their shards through.  On the numpy backend the battery
        advances **together** — one packed reach tensor, one vectorised BFS
        level advance for all entries — which is where the backend's speedup
        comes from; on the bitset backend this is exactly a loop of
        :meth:`surviving_diameter` calls.  ``cap`` applies to every entry
        (same semantics as in :meth:`surviving_diameter`).
        """
        batch = list(fault_sets)
        if self.eval_backend == EVAL_BACKEND_NUMPY:
            np_kernel = self._ensure_np_kernel()
            if np_kernel is not None:
                id_of = self._id_of
                id_lists = [
                    sorted(id_of[node] for node in self._check_faults(fs))
                    for fs in batch
                ]
                out: List[float] = []
                for start in range(0, len(id_lists), self._NP_BATCH):
                    out.extend(
                        np_kernel.diameters(
                            id_lists[start : start + self._NP_BATCH], cap=cap
                        )
                    )
                return out
        return [self.surviving_diameter(fs, cap=cap) for fs in batch]

    def surviving_diameter_at_most(
        self, faults: Iterable[Node], bound: float
    ) -> bool:
        """Decide ``surviving_diameter(faults) <= bound`` with early exit.

        Equivalent to computing the diameter and comparing, but each source's
        BFS is abandoned as soon as its eccentricity exceeds ``bound`` and the
        first violating source short-circuits the whole evaluation.
        """
        if bound != bound:  # NaN: no diameter satisfies the comparison
            return False
        if bound == INFINITY:
            return True
        return self.surviving_diameter(faults, cap=bound) <= bound

    # ------------------------------------------------------------------
    # Evaluation cursors
    # ------------------------------------------------------------------
    def cursor(self, faults: Iterable[Node] = ()) -> "EvalCursor":
        """Return an :class:`EvalCursor` caching the evaluation state of ``F``.

        The cursor snapshots the masked adjacency rows for ``faults`` so
        derived fault sets (``cursor.with_added(v)``) are evaluated by a
        delta update touching only the rows indexed under ``v``.
        """
        fault_mask = self._fault_mask(self._check_faults(faults))
        rows = self._surviving_rows(fault_mask)
        return EvalCursor(self, fault_mask, rows)

    def candidate_diameters(
        self,
        base_faults: Iterable[Node],
        candidates: Iterable[Node],
        cap: Optional[float] = None,
    ) -> List[float]:
        """Surviving diameters of ``F | {v}`` for every candidate ``v``.

        The index-level face of :meth:`EvalCursor.batch_with_added`: one
        shared cursor for ``base_faults`` seeds a delta update per
        candidate, and the whole candidate round is evaluated as a single
        batch (one packed reach tensor on the numpy backend).  ``cap``
        follows the :meth:`surviving_diameter` contract — finite values are
        exact, ``inf`` means disconnected or proven above the cap.
        """
        cursor = self.cursor(base_faults)
        return [
            value
            for _child, value in cursor.batch_with_added(candidates, cap=cap)
        ]

    # ------------------------------------------------------------------
    # Historical set-based kernel (equivalence/benchmark reference)
    # ------------------------------------------------------------------
    def _ensure_set_kernel(
        self,
    ) -> Tuple[
        Dict[Node, Set[Node]],
        Dict[Node, Set[Pair]],
        Dict[Pair, Tuple[FrozenSet[Node], ...]],
    ]:
        if self._set_kernel is None:
            base_succ: Dict[Node, Set[Node]] = {node: set() for node in self._nodes}
            pairs_through: Dict[Node, Set[Pair]] = {}
            pair_routes: Dict[Pair, Tuple[FrozenSet[Node], ...]] = {}
            if self._multi:
                for pair in self.routing.pairs():
                    routes = tuple(
                        frozenset(path) for path in self.routing.get_routes(*pair)
                    )
                    if not routes:
                        continue
                    pair_routes[pair] = routes
                    base_succ[pair[0]].add(pair[1])
                    for node in frozenset().union(*routes):
                        pairs_through.setdefault(node, set()).add(pair)
            else:
                for pair, path in self.routing.items():
                    base_succ[pair[0]].add(pair[1])
                    for node in path:
                        pairs_through.setdefault(node, set()).add(pair)
            self._set_kernel = (base_succ, pairs_through, pair_routes)
        return self._set_kernel

    def _set_surviving_succ(self, fault_set: FrozenSet[Node]) -> Dict[Node, Set[Node]]:
        """Successor sets of ``R(G, rho)/F`` via the PR-1 set-based kernel."""
        base_succ, pairs_through, pair_routes = self._ensure_set_kernel()
        succ: Dict[Node, Set[Node]] = {}
        if not fault_set:
            for node, base in base_succ.items():
                succ[node] = set(base)
            return succ
        for node, base in base_succ.items():
            if node not in fault_set:
                succ[node] = base - fault_set

        affected: Set[Pair] = set()
        for fault in fault_set:
            affected |= pairs_through.get(fault, set())
        for source, target in affected:
            if source in fault_set or target in fault_set:
                continue
            if self._multi and any(
                routes.isdisjoint(fault_set)
                for routes in pair_routes[(source, target)]
            ):
                continue
            succ[source].discard(target)
        return succ


class EvalCursor:
    """Cached evaluation state for one fault set ``F`` over a :class:`RouteIndex`.

    A cursor owns the masked adjacency rows of ``R(G, rho)/F`` and memoises
    the diameter (and, for disconnected graphs, a witness of the
    disconnection).  :meth:`with_added` derives the cursor for ``F | {v}``
    with a delta update that touches only the rows indexed under ``v``.
    Cursors are immutable snapshots: deriving a new cursor never changes the
    parent, so one cursor can seed many trial evaluations.
    """

    __slots__ = (
        "_index",
        "_fault_mask",
        "_rows",
        "_pending_rows",
        "_alive",
        "_diameter",
        "_unreached",
        "_lower_bound",
        "_capped_unreached",
        "_sibling_bounds",
        "_fault_ids",
        "_faults_view",
    )

    def __init__(
        self, index: RouteIndex, fault_mask: int, rows: Optional[List[int]]
    ) -> None:
        self._index = index
        self._fault_mask = fault_mask
        # Masked adjacency rows, or ``None`` for a cursor whose rows have
        # not been derived yet.  :meth:`with_added` hands out lazy children
        # (``_pending_rows`` holds the parent cursor and the added node id)
        # because the numpy kernel evaluates from the fault mask alone: a
        # candidate cursor that loses its greedy round never pays the
        # row-delta cost.  ``_materialise_rows`` resolves the chain on first
        # access (bitset evaluation, digraph export, or deriving onward).
        self._rows = rows
        self._pending_rows: Optional[Tuple["EvalCursor", int]] = None
        self._alive = index._full_mask & ~fault_mask
        self._diameter: Optional[float] = None
        # (source bit, unreached mask) witnessing a disconnection, when known.
        self._unreached: Optional[Tuple[int, int]] = None
        # Proven lower bound on the diameter.  A capped evaluation that
        # exceeds its cap without finding a disconnection cannot memoise an
        # exact diameter, but it *does* prove ``diameter >= floor(cap) + 1``
        # — remembered here so later calls with a cap (or bound) below the
        # failed one short-circuit instead of repeating the BFS.
        self._lower_bound: float = 0
        # (source bit, unreached mask, lb): every node of the mask is at
        # distance >= lb from the source.  The per-source witness behind
        # ``_lower_bound``; ``with_added`` propagates it to derived cursors
        # (removing arcs only increases distances), so a failing bound check
        # transfers to children without running a single BFS.
        self._capped_unreached: Optional[Tuple[int, int, int]] = None
        # node id -> (source bit, unreached mask, lb): capped witnesses
        # learned for *sibling* fault sets ``F | {u}`` (one entry per
        # candidate ``u`` some batch evaluated from this cursor).  A bound
        # for ``F | {u}`` says nothing about ``F`` itself or about another
        # sibling ``F | {w}``, so it cannot live in ``_capped_unreached`` —
        # but it transfers to any *descendant* that re-adds ``u``:
        # ``with_added(v)`` hands the (bit-filtered) store down, and applies
        # the entry for ``v`` directly to the child.  This is what carries a
        # bound learned in one greedy round to the next round's candidates
        # instead of discarding it with the losing sibling cursor.
        self._sibling_bounds: Optional[Dict[int, Tuple[int, int, int]]] = None
        # Lazily computed views of the fault mask, cached because serving
        # workloads fire many identical queries at one cursor: the sorted
        # fault-id list every numpy evaluation needs, and the label
        # frozenset the ``faults`` property hands out.  Rebuilding either
        # per query is pure allocation churn — the mask never changes.
        self._fault_ids: Optional[List[int]] = None
        self._faults_view: Optional[FrozenSet[Node]] = None

    @property
    def faults(self) -> FrozenSet[Node]:
        """The cursor's fault set, in original node labels (cached)."""
        view = self._faults_view
        if view is None:
            nodes = self._index._nodes
            view = self._faults_view = frozenset(
                nodes[nid] for nid in self._fault_id_list()
            )
        return view

    def _fault_id_list(self) -> List[int]:
        """The cursor's fault ids, ascending — computed once per cursor."""
        ids = self._fault_ids
        if ids is None:
            ids = self._fault_ids = _mask_ids(self._fault_mask)
        return ids

    def _materialise_rows(self) -> List[int]:
        """Resolve (and cache) the cursor's masked adjacency rows.

        Lazy cursors hold ``(parent, nid)`` instead of rows; the chain backs
        up to the nearest materialised ancestor (bounded by the derivation
        depth, e.g. the greedy fault-set size) and applies each delta on the
        way down.
        """
        rows = self._rows
        if rows is None:
            parent, nid = self._pending_rows
            rows = self._derive_rows(parent._materialise_rows(), nid)
            self._rows = rows
            self._pending_rows = None
        return rows

    def _derive_rows(self, parent_rows: List[int], nid: int) -> List[int]:
        """Parent rows with node ``nid`` (newly faulty) masked out."""
        index = self._index
        bit = 1 << nid
        rows = list(parent_rows)
        rows[nid] = 0
        if not index._multi:
            # Kill masks cover every arc v affects, including arcs into v
            # (v lies on its own routes), in one AND per indexed source.
            for sid, mask in index._kill_rows[nid].items():
                rows[sid] &= ~mask
        else:
            not_bit = ~bit
            fault_mask = self._fault_mask
            # Drop v as a target of its surviving predecessors (the parent's
            # alive mask is this cursor's with v restored)...
            preds = index._base_preds[nid] & (self._alive | bit)
            while preds:
                pbit = preds & -preds
                rows[pbit.bit_length() - 1] &= not_bit
                preds ^= pbit
            # ... and kill the arcs of pairs all of whose routes now die.
            multi_routes = index._pair_routes
            for sid, tid in index._pairs_through.get(nid, _NO_PAIRS):
                if (fault_mask >> sid) & 1 or (fault_mask >> tid) & 1:
                    continue
                if any(mask & fault_mask == 0 for mask in multi_routes[(sid, tid)]):
                    continue
                rows[sid] &= ~(1 << tid)
        return rows

    def surviving_route_graph(self) -> DiGraph:
        """Materialise ``R(G, rho)/F`` for the cursor's fault set."""
        return self._index._build_digraph(self._materialise_rows(), self._alive)

    def diameter(self, cap: Optional[float] = None) -> float:
        """Return the surviving diameter (memoised; ``cap`` as in the index)."""
        if self._diameter is None:
            if cap is not None and cap < self._lower_bound:
                # A previous capped evaluation already proved the diameter
                # exceeds this cap; no BFS needed.
                return INFINITY
            value, witness, capped = self._evaluate(cap)
            if cap is not None and value == INFINITY and witness is None:
                # Cap exceeded without a disconnection witness: the exact
                # value is unknown, so do not memoise it — but the failed
                # cap is a proven lower bound, so remember that instead.
                bound = math.floor(cap) + 1
                if capped is not None and capped[2] > bound:
                    bound = capped[2]
                if bound > self._lower_bound:
                    self._lower_bound = bound
                if capped is not None:
                    self._capped_unreached = capped
                return INFINITY
            self._diameter = value
            self._unreached = witness
        return self._diameter

    def diameter_at_most(self, bound: float) -> bool:
        """Decide ``diameter() <= bound`` with the bounded BFS early exit."""
        if bound != bound:
            return False
        if bound == INFINITY:
            return True
        if self._diameter is not None:
            return self._diameter <= bound
        if bound < self._lower_bound:
            # diameter >= _lower_bound > bound, proven by an earlier capped
            # evaluation (possibly inherited from a parent cursor).
            return False
        return self.diameter(cap=bound) <= bound

    def _evaluate(
        self, cap: Optional[float]
    ) -> Tuple[float, Optional[Tuple[int, int]], Optional[Tuple[int, int, int]]]:
        """One diameter evaluation through the index's resolved backend."""
        index = self._index
        if index.eval_backend == EVAL_BACKEND_NUMPY:
            kernel = index._ensure_np_kernel()
            if kernel is not None:
                value, witness, capped = kernel.diameter_witness(
                    self._fault_id_list(), cap
                )
                return value, witness, capped
        return _rows_diameter_witness(
            self._materialise_rows(), self._alive, cap, index._density_threshold
        )

    def with_added(self, node: Node) -> "EvalCursor":
        """Return the cursor for ``F | {node}`` via a delta update.

        Only the surviving predecessors of ``node`` and the pairs routed
        through it are touched; every other row is shared with the parent by
        value (rows are immutable ints).  The delta itself is *deferred*:
        the child records ``(parent, node)`` and derives its rows on first
        access, so candidates evaluated purely through the numpy kernel
        (which reads the fault mask, not the rows) never pay for it.

        The returned cursor is always a distinct object, even when ``node``
        is already faulty (it then shares the parent's rows and memoised
        state): callers may memoise further results on it without mutating
        the parent.
        """
        index = self._index
        nid = index._id_of.get(node)
        if nid is None:
            raise FaultModelError(
                f"faulty node {node!r} is not a node of the graph"
            )
        bit = 1 << nid
        if self._fault_mask & bit:
            # Same fault set, but hand back a distinct cursor so memoising
            # on the child never aliases into the parent.
            twin = EvalCursor(index, self._fault_mask, self._rows)
            twin._pending_rows = self._pending_rows
            twin._diameter = self._diameter
            twin._unreached = self._unreached
            twin._lower_bound = self._lower_bound
            twin._capped_unreached = self._capped_unreached
            twin._fault_ids = self._fault_ids
            twin._faults_view = self._faults_view
            if self._sibling_bounds:
                # Same fault set, so every sibling bound applies verbatim —
                # but copy the store so memoising on the twin never mutates
                # the parent.
                twin._sibling_bounds = dict(self._sibling_bounds)
            return twin
        fault_mask = self._fault_mask | bit
        not_bit = ~bit
        # Rows stay lazy: the delta update is deferred until something
        # actually reads them (see ``_materialise_rows``), so a candidate
        # evaluated purely through the numpy kernel never derives its rows.
        child = EvalCursor(index, fault_mask, None)
        child._pending_rows = (self, nid)
        # Removing arcs can only shrink reachability: if the parent is
        # disconnected by a missing target other than v (from a source other
        # than v), the child is disconnected too — no BFS needed.
        if self._unreached is not None:
            source_bit, unreached = self._unreached
            if source_bit != bit and unreached & not_bit:
                child._diameter = INFINITY
                child._unreached = (source_bit, unreached & not_bit)
        # The capped witness transfers by the same monotonicity: nodes at
        # distance >= lb from the source stay at least that far away once
        # more arcs are removed, so the child inherits the lower bound.
        if self._capped_unreached is not None:
            source_bit, unreached, lb = self._capped_unreached
            if source_bit != bit and unreached & not_bit:
                if lb > child._lower_bound:
                    child._lower_bound = lb
                child._capped_unreached = (source_bit, unreached & not_bit, lb)
        if self._sibling_bounds:
            # A bound learned for ``F | {node}`` by an earlier batch from
            # this cursor is a bound on exactly the child's fault set.
            own = self._sibling_bounds.get(nid)
            if own is not None:
                source_bit, unreached, lb = own
                if lb > child._lower_bound:
                    child._lower_bound = lb
                if (
                    child._capped_unreached is None
                    or lb > child._capped_unreached[2]
                ):
                    child._capped_unreached = (source_bit, unreached, lb)
            # Bounds for the other siblings ``F | {u}`` transfer to the
            # child's own candidates ``F | {node} | {u}`` by monotonicity
            # (the child only removes more arcs), provided the witness
            # survives ``node``'s removal.
            inherited: Optional[Dict[int, Tuple[int, int, int]]] = None
            for uid, (source_bit, unreached, lb) in self._sibling_bounds.items():
                if uid == nid or source_bit == bit:
                    continue
                filtered = unreached & not_bit
                if filtered:
                    if inherited is None:
                        inherited = {}
                    inherited[uid] = (source_bit, filtered, lb)
            child._sibling_bounds = inherited
        return child

    def batch_with_added(
        self, nodes: Iterable[Node], cap: Optional[float] = None
    ) -> List[Tuple["EvalCursor", float]]:
        """Evaluate ``F | {v}`` for every candidate ``v``, in one batch.

        Returns ``[(child cursor, value), ...]`` in candidate order, where
        ``value`` follows the :meth:`diameter` contract for ``cap``: a
        finite value is always the exact surviving diameter, and ``inf``
        means disconnected *or* proven to exceed the cap.  This is the
        batched candidate-evaluation layer of the greedy adversary.

        On the numpy backend all candidates advance through one packed
        ``(k, B)`` uint64 reach tensor (one vectorised BFS for the whole
        round, with ``cap`` aborting hopeless lanes early); the bitset
        backend runs the equivalent loop over :meth:`with_added` children —
        both share this cursor's masked rows, so per-candidate setup is the
        usual delta update either way and the returned values are
        byte-identical across backends.

        Capped evaluations that fail leave their lower bound behind
        **twice**: on the child cursor itself, and in this cursor's sibling
        store, where later :meth:`with_added` derivations (e.g. the next
        greedy round's candidates) pick it up instead of re-proving it.
        Memoised children (a prior exact diameter, or a lower bound already
        above ``cap``) skip their BFS lane entirely.
        """
        index = self._index
        node_list = list(nodes)
        if index.eval_backend == EVAL_BACKEND_NUMPY:
            kernel = index._ensure_np_kernel()
            if kernel is not None:
                children = [self.with_added(node) for node in node_list]
                self._np_batch_evaluate(children, cap, kernel)
                for node, child in zip(node_list, children):
                    self._note_sibling_bound(node, child)
                return [
                    (child, child.diameter(cap=cap)) for child in children
                ]
        results: List[Tuple["EvalCursor", float]] = []
        for node in node_list:
            child = self.with_added(node)
            value = child.diameter(cap=cap)
            self._note_sibling_bound(node, child)
            results.append((child, value))
        return results

    def _note_sibling_bound(self, node: Node, child: "EvalCursor") -> None:
        """Record a capped bound learned for ``F | {node}`` on this cursor."""
        capped = child._capped_unreached
        if capped is None or child._fault_mask == self._fault_mask:
            return
        nid = self._index._id_of[node]
        store = self._sibling_bounds
        if store is None:
            store = self._sibling_bounds = {}
        known = store.get(nid)
        if known is None or capped[2] > known[2]:
            store[nid] = capped

    def _np_batch_evaluate(
        self, children: List["EvalCursor"], cap: Optional[float], kernel
    ) -> None:
        """Memoise diameters/bounds onto ``children`` via one numpy batch.

        Children whose answer is already memoised (an exact diameter, or a
        lower bound proving the cap unreachable) contribute no BFS lane.
        The rest stream through :meth:`NumpyKernel.candidate_witnesses` in
        :attr:`RouteIndex._NP_CANDIDATE_BATCH`-wide chunks — every child
        differs from this cursor by at most one node (``with_added``
        built them), so the kernel derives the per-lane setup once from
        the shared base — and each entry's result is memoised exactly as
        :meth:`diameter` would have.
        """
        pending = [
            child
            for child in children
            if child._diameter is None
            and not (cap is not None and cap < child._lower_bound)
        ]
        step = RouteIndex._NP_CANDIDATE_BATCH
        base_mask = self._fault_mask
        base_ids = _mask_ids(base_mask)
        for start in range(0, len(pending), step):
            chunk = pending[start : start + step]
            # A child's delta from the base is one bit (or none, for a
            # twin of the base set): -1 marks the bare-base lane.
            triples = kernel.candidate_witnesses(
                base_ids,
                [
                    (child._fault_mask & ~base_mask).bit_length() - 1
                    for child in chunk
                ],
                cap,
            )
            for child, (value, witness, capped) in zip(chunk, triples):
                if cap is not None and value == INFINITY and witness is None:
                    # Cap exceeded without a disconnection: remember the
                    # proven lower bound, not the (unknown) exact value.
                    bound = math.floor(cap) + 1
                    if capped is not None and capped[2] > bound:
                        bound = capped[2]
                    if bound > child._lower_bound:
                        child._lower_bound = bound
                    if capped is not None:
                        child._capped_unreached = capped
                else:
                    child._diameter = value
                    child._unreached = witness


def _rows_diameter(
    rows: List[int],
    alive: int,
    cap: Optional[float] = None,
    threshold: int = DEFAULT_DENSITY_THRESHOLD,
) -> float:
    """Diameter of the bitset digraph (``inf`` when > ``cap``, see below)."""
    value, _witness, _capped = _rows_diameter_witness(rows, alive, cap, threshold)
    return value


def _rows_diameter_witness(
    rows: List[int],
    alive: int,
    cap: Optional[float] = None,
    threshold: int = DEFAULT_DENSITY_THRESHOLD,
) -> Tuple[float, Optional[Tuple[int, int]], Optional[Tuple[int, int, int]]]:
    """Diameter of the digraph given by bitset rows.

    Matches the conventions of :func:`repro.graphs.traversal.diameter`:
    ``inf`` for the empty or non-strongly-connected graph, ``0`` for a single
    node.  With ``cap`` given, returns ``inf`` as soon as the diameter is
    proven to exceed the cap (a finite return value is always exact).

    The second component witnesses a disconnection when one was found: a
    source's bit and the mask of nodes it cannot reach.  The third component
    is the *capped witness* ``(source bit, unreached mask, lb)`` produced
    when the cap was exceeded without proving a disconnection: every node of
    the mask is at distance at least ``lb`` from the source.  At most one of
    the two witnesses is non-``None``; both are ``None`` when the graph is
    connected within the cap.

    Two strategies cover the two shapes surviving route graphs come in.
    Sparse graphs use *batched propagation*: every node's reachable set is a
    bitmask and one level advance is a single ``|=`` per surviving arc — all
    sources progress together, so the cost is ``O(arcs)`` per diameter unit.
    Dense graphs (where a BFS completes in a level or two and most sources
    terminate almost immediately) use per-source frontier BFS, which
    exploits that early exit.  Both return identical values.
    """
    if not alive:
        return INFINITY, None, None
    total = alive.bit_count()
    if total == 1:
        return 0, None, None
    arcs = 0
    for row in rows:
        arcs += row.bit_count()
    if arcs * threshold <= total * total:
        return _batched_diameter(rows, alive, total, cap)
    return _per_source_diameter(rows, alive, cap)


def _batched_diameter(
    rows: List[int], alive: int, total: int, cap: Optional[float]
) -> Tuple[float, Optional[Tuple[int, int]], Optional[Tuple[int, int, int]]]:
    """All-sources reachability propagation (one ``|=`` per arc per level)."""
    ids: List[int] = []
    remaining = alive
    while remaining:
        bit = remaining & -remaining
        ids.append(bit.bit_length() - 1)
        remaining ^= bit
    succ: List[List[int]] = [[] for _ in rows]
    for node in ids:
        row = rows[node]
        targets = succ[node]
        while row:
            bit = row & -row
            targets.append(bit.bit_length() - 1)
            row ^= bit
    # reach[u] = nodes within distance <= k of u; k starts at 1.
    reach: List[int] = [0] * len(rows)
    for node in ids:
        reach[node] = (1 << node) | rows[node]
    level = 1
    while True:
        complete = alive
        for node in ids:
            complete &= reach[node]
        if complete == alive:
            return level, None, None
        if cap is not None and level >= cap:
            # reach covers distance <= level, so any unreached node is at
            # distance >= level + 1 from its source: a capped witness.
            for node in ids:
                if reach[node] != alive:
                    return (
                        INFINITY,
                        None,
                        (1 << node, alive & ~reach[node], level + 1),
                    )
            return INFINITY, None, None  # pragma: no cover - incomplete above
        advanced: List[int] = [0] * len(rows)
        changed = False
        for node in ids:
            acc = reach[node]
            for target in succ[node]:
                acc |= reach[target]
            advanced[node] = acc
            if acc != reach[node]:
                changed = True
        if not changed:
            for node in ids:
                if reach[node] != alive:
                    return INFINITY, (1 << node, alive & ~reach[node]), None
        reach = advanced
        level += 1


def _per_source_diameter(
    rows: List[int], alive: int, cap: Optional[float]
) -> Tuple[float, Optional[Tuple[int, int]], Optional[Tuple[int, int, int]]]:
    """Per-source frontier BFS with early completion exit (dense graphs)."""
    worst = 0
    sources = alive
    while sources:
        source_bit = sources & -sources
        sources ^= source_bit
        visited = source_bit
        frontier = source_bit
        eccentricity = 0
        while visited != alive:
            reach = 0
            while frontier:
                fbit = frontier & -frontier
                reach |= rows[fbit.bit_length() - 1]
                frontier ^= fbit
            frontier = reach & ~visited
            if not frontier:
                return INFINITY, (source_bit, alive & ~visited), None
            eccentricity += 1
            if cap is not None and eccentricity > cap:
                # visited covers distance <= eccentricity - 1: the unvisited
                # nodes sit at distance >= eccentricity, a capped witness.
                return (
                    INFINITY,
                    None,
                    (source_bit, alive & ~visited, eccentricity),
                )
            visited |= frontier
        if eccentricity > worst:
            worst = eccentricity
    return worst, None, None


def _succ_diameter(succ: Dict[Node, Set[Node]]) -> float:
    """Diameter of the digraph given by successor sets, via level-set BFS.

    The PR-1 set-based kernel, kept as the equivalence/benchmark reference
    for the bitset kernel.  Matches the conventions of
    :func:`repro.graphs.traversal.diameter`: ``inf`` for the empty or
    non-strongly-connected graph, ``0`` for a single node.
    """
    total = len(succ)
    if total == 0:
        return INFINITY
    worst = 0
    for source in succ:
        visited = {source}
        frontier = {source}
        eccentricity = 0
        while frontier and len(visited) < total:
            level: Set[Node] = set()
            for node in frontier:
                level |= succ[node]
            level -= visited
            if not level:
                break
            eccentricity += 1
            visited |= level
            frontier = level
        if len(visited) != total:
            return INFINITY
        if eccentricity > worst:
            worst = eccentricity
    return worst

"""The tri-circular construction (Section 4, Theorem 13 and Remark 14).

The tri-circular routing strengthens the circular routing so that *every* two
surviving nodes share a surviving concentrator member at distance at most 2
from both (Property T-CIRC), which brings the surviving diameter down from 6
to 4.  It needs a larger neighbourhood set: ``K = 6t + 9`` for the
``(4, t)``-tolerant routing of Theorem 13, or ``K = 3t + 3`` / ``3t + 6``
(``t`` even / odd) for the ``(5, t)``-tolerant variant of Remark 14.

The concentrator is split into three "circular components" ``M^0, M^1, M^2``
of ``K/3`` nodes each.  Components of the routing:

* T-CIRC 1 — tree routings from every node outside ``Gamma`` to every set
  ``Gamma^j_i``;
* T-CIRC 2 — tree routings from every node of ``Gamma^j_i`` forward inside
  its own circular component, to ``Gamma^j_{(i+k) mod K/3}`` for
  ``1 <= k <= t + 1`` (Theorem 13) or ``1 <= k <= ceil((K/3)/2) - 1``
  (Remark 14's smaller variant);
* T-CIRC 3 — tree routings from every node of ``Gamma^j_i`` to every set of
  the *next* component ``Gamma^{(j+1) mod 3}_l``;
* T-CIRC 4 — direct edge routes between all adjacent pairs.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.circular import circular_component_range
from repro.core.concentrators import neighborhood_set, required_neighborhood_set_size
from repro.core.construction import ConstructionResult, Guarantee
from repro.core.routing import Routing
from repro.core.tree_routing import tree_routing_to_neighborhood
from repro.exceptions import ConstructionError, PropertyNotSatisfiedError
from repro.graphs.connectivity import connectivity_parameter
from repro.graphs.graph import Graph
from repro.graphs.properties import is_neighborhood_set

Node = Hashable


def tricircular_routing(
    graph: Graph,
    t: Optional[int] = None,
    concentrator: Optional[Sequence[Node]] = None,
    small: bool = False,
) -> ConstructionResult:
    """Construct the bidirectional tri-circular routing on ``graph``.

    Parameters
    ----------
    graph:
        The underlying ``(t + 1)``-connected network.
    t:
        Fault parameter; defaults to ``kappa(G) - 1``.
    concentrator:
        Optional explicit neighbourhood set of size (at least) ``K``; its
        order determines the partition into the three circular components
        (first ``K/3`` nodes form ``M^0`` and so on).
    small:
        When ``True`` build Remark 14's smaller variant (``K = 3t + 3`` or
        ``3t + 6``) whose guarantee is ``(5, t)``; otherwise Theorem 13's
        ``K = 6t + 9`` variant with guarantee ``(4, t)``.

    Raises
    ------
    PropertyNotSatisfiedError
        If no neighbourhood set of the required size exists / can be found.
    """
    if t is None:
        t = connectivity_parameter(graph)
    if t < 0:
        raise ConstructionError("t must be non-negative")

    variant = "tricircular-small" if small else "tricircular"
    k = required_neighborhood_set_size(t, variant)
    if k % 3 != 0:
        raise ConstructionError(f"internal error: tri-circular K={k} is not divisible by 3")
    third = k // 3

    members = _resolve_concentrator(graph, k, concentrator)
    components: List[List[Node]] = [
        members[j * third : (j + 1) * third] for j in range(3)
    ]
    gammas: Dict[Tuple[int, int], Set[Node]] = {}
    index_of: Dict[Node, Tuple[int, int]] = {}
    gamma_union: Set[Node] = set()
    for j in range(3):
        for i, member in enumerate(components[j]):
            gamma = graph.neighbors(member)
            gammas[(j, i)] = gamma
            for node in gamma:
                if node in index_of:
                    raise PropertyNotSatisfiedError(
                        f"node {node!r} belongs to two Gamma sets; the concentrator "
                        "is not a neighbourhood set"
                    )
                index_of[node] = (j, i)
            gamma_union |= gamma

    width = t + 1
    routing = Routing(graph, bidirectional=True, name="tri-circular")
    routing.add_all_edge_routes()

    # Component T-CIRC 1: nodes outside Gamma route to every Gamma^j_i.
    for node in graph.nodes():
        if node in gamma_union:
            continue
        for j in range(3):
            for member in components[j]:
                routes = tree_routing_to_neighborhood(graph, node, member, width)
                for endpoint, path in routes.items():
                    routing.set_route(node, endpoint, path)

    # Offsets for T-CIRC 2 inside a circular component.
    if small:
        offsets = list(circular_component_range(third))
    else:
        offsets = list(range(1, t + 2))
        if max(offsets, default=0) >= third:
            raise ConstructionError(
                "T-CIRC 2 offsets would wrap around the component; K is too small"
            )

    for node in sorted(gamma_union, key=repr):
        j, i = index_of[node]
        # Component T-CIRC 2: forward inside the own circular component.
        for offset in offsets:
            center = components[j][(i + offset) % third]
            routes = tree_routing_to_neighborhood(graph, node, center, width)
            for endpoint, path in routes.items():
                routing.set_route(node, endpoint, path)
        # Component T-CIRC 3: to every set of the next circular component.
        next_component = components[(j + 1) % 3]
        for center in next_component:
            routes = tree_routing_to_neighborhood(graph, node, center, width)
            for endpoint, path in routes.items():
                routing.set_route(node, endpoint, path)

    if small:
        guarantee = Guarantee(diameter_bound=5, max_faults=t, source="Remark 14")
    else:
        guarantee = Guarantee(diameter_bound=4, max_faults=t, source="Theorem 13")
    return ConstructionResult(
        routing=routing,
        scheme="tricircular-small" if small else "tricircular",
        t=t,
        guarantee=guarantee,
        concentrator=list(members),
        details={
            "k": k,
            "component_size": third,
            "components": components,
            "t_circ2_offsets": offsets,
            "gamma_union_size": len(gamma_union),
        },
    )


def _resolve_concentrator(
    graph: Graph, k: int, concentrator: Optional[Sequence[Node]]
) -> List[Node]:
    """Validate a supplied concentrator or construct one of size ``k``."""
    if concentrator is not None:
        members = list(concentrator)
        if len(members) < k:
            raise ConstructionError(
                f"concentrator has {len(members)} nodes; {k} are required"
            )
        members = members[:k]
        if len(set(members)) != len(members):
            raise ConstructionError("concentrator contains repeated nodes")
        if not is_neighborhood_set(graph, members):
            raise PropertyNotSatisfiedError(
                "the supplied concentrator is not a neighbourhood set"
            )
        return members
    return list(neighborhood_set(graph, k))[:k]

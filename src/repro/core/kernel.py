"""The basic kernel construction (Section 3, after Dolev et al. 1984).

Given a graph of connectivity ``t + 1`` and a minimal separating set ``M`` of
size ``t + 1``, the kernel routing consists of

* Component KERNEL 1 — a tree routing from every node ``x`` outside ``M``
  to ``M``;
* Component KERNEL 2 — a direct edge route between every pair of adjacent
  nodes.

Theorem 3 (Dolev et al.) shows the kernel routing is ``(2t, t)``-tolerant;
Theorem 4 — the paper's first new result — shows the same routing is in fact
``(4, floor(t/2))``-tolerant, i.e. the surviving diameter is at most the
constant 4 whenever fewer than half the connectivity's worth of nodes fail.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence, Set

from repro.core.construction import ConstructionResult, Guarantee
from repro.core.routing import Routing
from repro.core.tree_routing import tree_routing
from repro.exceptions import ConstructionError
from repro.graphs.connectivity import connectivity_parameter
from repro.graphs.graph import Graph
from repro.graphs.separators import is_separating_set, minimum_separator

Node = Hashable


def kernel_routing(
    graph: Graph,
    t: Optional[int] = None,
    separating_set: Optional[Iterable[Node]] = None,
) -> ConstructionResult:
    """Construct the kernel routing of Dolev et al. on ``graph``.

    Parameters
    ----------
    graph:
        The underlying network; must be ``(t + 1)``-connected.
    t:
        The fault parameter.  Defaults to ``kappa(G) - 1`` so the routing
        tolerates as many faults as the connectivity allows.
    separating_set:
        Optional separating set ``M`` to use as the kernel.  Must contain at
        least ``t + 1`` nodes and actually separate the graph; when omitted a
        minimum separator (of size exactly ``kappa(G)``) is computed.

    Returns
    -------
    ConstructionResult
        With ``scheme == "kernel"``, the concentrator ``M`` and *two*
        guarantees recorded: the primary one is Theorem 4's
        ``(4, floor(t/2))``; Theorem 3's ``(2t, t)`` is stored under
        ``details["theorem3_guarantee"]``.
    """
    if t is None:
        t = connectivity_parameter(graph)
    if t < 0:
        raise ConstructionError("t must be non-negative")
    width = t + 1

    if separating_set is None:
        kernel_set: Set[Node] = set(minimum_separator(graph))
    else:
        kernel_set = set(separating_set)
        if len(kernel_set) < width:
            raise ConstructionError(
                f"separating set has {len(kernel_set)} nodes; at least {width} required"
            )
        if not is_separating_set(graph, kernel_set):
            raise ConstructionError("the supplied node set does not separate the graph")
    if len(kernel_set) < width:
        raise ConstructionError(
            f"minimum separator has {len(kernel_set)} nodes (< t + 1 = {width}); "
            "the graph is not (t + 1)-connected for the requested t"
        )

    routing = Routing(graph, bidirectional=True, name="kernel")
    # Component KERNEL 2 first: all direct edge routes.  Tree routing paths
    # that terminate at an adjacent kernel node use the direct edge (the
    # shortcut rule), so the two components never conflict.
    routing.add_all_edge_routes()

    # Component KERNEL 1: a tree routing from every node outside M to M.
    for node in graph.nodes():
        if node in kernel_set:
            continue
        routes = tree_routing(graph, node, kernel_set, width)
        for endpoint, path in routes.items():
            routing.set_route(node, endpoint, path)

    concentrator = sorted(kernel_set, key=repr)
    guarantee = Guarantee(diameter_bound=4, max_faults=t // 2, source="Theorem 4")
    return ConstructionResult(
        routing=routing,
        scheme="kernel",
        t=t,
        guarantee=guarantee,
        concentrator=concentrator,
        details={
            "theorem3_guarantee": Guarantee(
                diameter_bound=max(2 * t, 1), max_faults=t, source="Theorem 3"
            ),
            "separating_set_size": len(kernel_set),
        },
    )


def kernel_guarantees(t: int) -> List[Guarantee]:
    """Return the two proven guarantees for the kernel routing at parameter ``t``.

    Theorem 3 gives ``(2t, t)`` (the paper states ``max(2t, 4)`` in the
    introduction when quoting Dolev et al.; the theorem itself is stated as
    ``2t`` and is vacuous for ``t = 0``); Theorem 4 gives ``(4, floor(t/2))``.
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    return [
        Guarantee(diameter_bound=max(2 * t, 4), max_faults=t, source="Theorem 3 / Dolev et al."),
        Guarantee(diameter_bound=4, max_faults=t // 2, source="Theorem 4"),
    ]

"""Concentrator construction: neighbourhood sets and two-trees roots.

Every routing in the paper is organised around a *concentrator*: a set of
nodes ``M`` such that every pair of surviving nodes can communicate quickly
through some member of ``M``.  Three kinds of concentrators appear:

* a minimal *separating set* (kernel routing, Section 3) — provided by
  :func:`repro.graphs.separators.minimum_separator`;
* a *neighbourhood set* — independent nodes with pairwise disjoint
  neighbourhoods (circular and tri-circular routings, Section 4); Lemma 15's
  greedy algorithm guarantees one of size ``ceil(n / (d^2 + 1))``;
* the neighbour sets of two *two-trees roots* (bipolar routings, Section 5).

This module implements the constructions and the associated size guarantees.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import PropertyNotSatisfiedError
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    find_two_trees_roots,
    is_neighborhood_set,
    satisfies_two_trees_property,
)

Node = Hashable


def greedy_neighborhood_set(
    graph: Graph, limit: Optional[int] = None, order: Optional[Sequence[Node]] = None
) -> List[Node]:
    """Construct a neighbourhood set with the greedy algorithm of Lemma 15.

    Starting from the full candidate set, repeatedly pick a candidate node,
    add it to ``M`` and discard every node within distance 2 of it.  Each step
    removes at most ``1 + d + d(d - 1) = d^2 + 1`` candidates, so the result
    has at least ``ceil(n / (d^2 + 1))`` members — the bound the degree
    threshold theorems rely on.

    Parameters
    ----------
    graph:
        The underlying graph.
    limit:
        Optional cap: stop once ``limit`` members have been selected (the
        constructions only need ``K`` members, so there is no point computing
        more).
    order:
        Optional candidate ordering.  The default prefers low-degree nodes
        (smaller neighbourhoods knock out fewer candidates, which empirically
        produces larger sets); experiments may pass an explicit order to make
        the greedy choice deterministic in other ways.

    Returns
    -------
    list of nodes forming a neighbourhood set (independent, pairwise disjoint
    neighbourhoods), in selection order.
    """
    if order is None:
        candidates_order = sorted(graph.nodes(), key=lambda node: (graph.degree(node), repr(node)))
    else:
        candidates_order = list(order)
    available: Set[Node] = set(graph.nodes())
    selected: List[Node] = []
    for node in candidates_order:
        if limit is not None and len(selected) >= limit:
            break
        if node not in available:
            continue
        selected.append(node)
        blocked = graph.neighborhood_at_distance(node, 2) | {node}
        available -= blocked
    return selected


def lemma15_lower_bound(graph: Graph) -> int:
    """Return Lemma 15's guaranteed neighbourhood-set size ``ceil(n/(d^2+1))``."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    d = graph.max_degree()
    return math.ceil(n / (d * d + 1))


def neighborhood_set(
    graph: Graph, size: int, exhaustive_threshold: int = 18
) -> List[Node]:
    """Return a neighbourhood set of at least ``size`` nodes, or raise.

    The greedy algorithm of Lemma 15 is tried first (with a couple of
    alternative candidate orderings); for small graphs where greedy falls
    short an exhaustive branch-and-bound search is attempted before giving up.

    Raises
    ------
    PropertyNotSatisfiedError
        If no neighbourhood set of the requested size could be found.  Note
        that for graphs within the degree bound of Theorem 16 the greedy
        algorithm always succeeds.
    """
    if size <= 0:
        return []
    orderings: List[Optional[Sequence[Node]]] = [None]
    # Insertion order often reflects a natural layout of the graph (e.g. the
    # numeric order around a cycle or circulant), where a straight sweep packs
    # the set optimally.
    orderings.append(list(graph.nodes()))
    orderings.append(sorted(graph.nodes(), key=lambda node: (-graph.degree(node), repr(node))))
    orderings.append(sorted(graph.nodes(), key=repr))
    best: List[Node] = []
    for order in orderings:
        candidate = greedy_neighborhood_set(graph, limit=None, order=order)
        if len(candidate) > len(best):
            best = candidate
        if len(best) >= size:
            return best[:size]

    if graph.number_of_nodes() <= exhaustive_threshold:
        exact = _exhaustive_neighborhood_set(graph, size)
        if exact is not None:
            return exact

    raise PropertyNotSatisfiedError(
        f"could not find a neighbourhood set of size {size} "
        f"(best found: {len(best)}); the graph does not satisfy the "
        "requirement of this construction"
    )


def _exhaustive_neighborhood_set(graph: Graph, size: int) -> Optional[List[Node]]:
    """Branch-and-bound search for a neighbourhood set of exactly ``size`` nodes."""
    nodes = sorted(graph.nodes(), key=repr)

    def expand(selected: List[Node], banned: Set[Node], start: int) -> Optional[List[Node]]:
        if len(selected) >= size:
            return selected
        if len(selected) + (len(nodes) - start) < size:
            return None
        for index in range(start, len(nodes)):
            node = nodes[index]
            if node in banned:
                continue
            blocked = graph.neighborhood_at_distance(node, 2) | {node}
            result = expand(selected + [node], banned | blocked, index + 1)
            if result is not None:
                return result
        return None

    return expand([], set(), 0)


def verify_neighborhood_set(graph: Graph, nodes: Iterable[Node]) -> bool:
    """Return ``True`` if ``nodes`` is a valid neighbourhood set (paper's sense)."""
    return is_neighborhood_set(graph, list(nodes))


def required_neighborhood_set_size(t: int, variant: str) -> int:
    """Return the neighbourhood-set size required by a circular-family construction.

    Parameters
    ----------
    t:
        The fault-tolerance parameter (connectivity is ``t + 1``).
    variant:
        One of ``"circular"`` (Theorem 10: ``t+1`` for even ``t``, ``t+2`` for
        odd), ``"circular-wide"`` (the ``2t+1`` variant of Lemma 7),
        ``"tricircular"`` (Theorem 13: ``6t+9``) or ``"tricircular-small"``
        (Remark 14: ``3t+3`` for even ``t``, ``3t+6`` for odd ``t``).
    """
    if t < 0:
        raise ValueError("t must be non-negative")
    if variant == "circular":
        return t + 1 if t % 2 == 0 else t + 2
    if variant == "circular-wide":
        return 2 * t + 1
    if variant == "tricircular":
        return 6 * t + 9
    if variant == "tricircular-small":
        return 3 * (t + 1) if t % 2 == 0 else 3 * (t + 2)
    raise ValueError(f"unknown variant {variant!r}")


def two_trees_concentrator(graph: Graph) -> Tuple[Node, Node, List[Node], List[Node]]:
    """Return ``(r1, r2, M1, M2)`` for the bipolar constructions.

    ``r1`` and ``r2`` are roots witnessing the two-trees property and ``M1``,
    ``M2`` their neighbour sets (the concentrator is ``M1 | M2``).

    Raises
    ------
    PropertyNotSatisfiedError
        If the graph has no pair of roots with the two-trees property.
    """
    roots = find_two_trees_roots(graph)
    if roots is None:
        raise PropertyNotSatisfiedError(
            "graph does not satisfy the two-trees property; the bipolar "
            "constructions are not applicable"
        )
    r1, r2 = roots
    m1 = sorted(graph.neighbors(r1), key=repr)
    m2 = sorted(graph.neighbors(r2), key=repr)
    return r1, r2, m1, m2


def two_trees_concentrator_for_roots(
    graph: Graph, r1: Node, r2: Node
) -> Tuple[Node, Node, List[Node], List[Node]]:
    """Like :func:`two_trees_concentrator` but with caller-chosen roots.

    The supplied roots are verified against the two-trees property.
    """
    if not satisfies_two_trees_property(graph, r1, r2):
        raise PropertyNotSatisfiedError(
            f"nodes {r1!r} and {r2!r} do not witness the two-trees property"
        )
    m1 = sorted(graph.neighbors(r1), key=repr)
    m2 = sorted(graph.neighbors(r2), key=repr)
    return r1, r2, m1, m2

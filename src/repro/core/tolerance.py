"""(d, f)-tolerance checking: measuring worst-case surviving diameters.

A routing is ``(d, f)``-tolerant when every fault set of at most ``f`` nodes
leaves a surviving route graph of diameter at most ``d``.  This module turns
that definition into executable checks:

* :func:`worst_case_diameter` evaluates a battery of fault sets and reports
  the worst surviving diameter found (and the fault set realising it);
* :func:`check_tolerance` compares that worst case against a claimed bound;
* :func:`verify_construction` does the same for a
  :class:`~repro.core.construction.ConstructionResult` using the guarantee
  recorded by the construction, choosing between exhaustive enumeration and
  the combined adversarial battery automatically based on problem size.

Exhaustive enumeration is exact; the adversarial battery yields a certified
*lower bound* on the worst case together with an upper-bound check (any
violation found disproves the claimed guarantee; absence of violations over
the battery is strong — but not exhaustive — evidence).

Both paths run through the campaign engine's bounded-diameter decision scan:
fault sets are evaluated with the claimed bound as an eccentricity cap and
the scan short-circuits at the first violation, whose exact diameter becomes
the report's witness.  Exhaustive enumerations stream through the engine's
generative shards, so they parallelise like random batteries.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Iterable, List, Optional, Sequence, Union

from repro.core.construction import ConstructionResult
from repro.core.routing import MultiRouting, Routing
from repro.core.surviving import surviving_diameter
from repro.faults.adversary import combined_fault_sets, count_fault_sets
from repro.faults.models import FaultSet
from repro.graphs.graph import Graph

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]


@dataclasses.dataclass
class ToleranceReport:
    """Outcome of a tolerance evaluation.

    Attributes
    ----------
    claimed_diameter, max_faults:
        The ``(d, f)`` bound that was checked.
    worst_diameter:
        The largest surviving diameter observed over the evaluated fault
        sets.  When the claimed bound is violated, the evaluation stops at
        the first violating fault set (the bounded-diameter decision path),
        so this is the exact diameter of that witness rather than the
        battery-wide maximum.
    worst_fault_set:
        A fault set realising ``worst_diameter``.
    evaluated:
        Number of fault sets evaluated (up to and including the violation
        witness when the bound is violated).
    exhaustive:
        ``True`` when the check enumerated every fault set of size at most
        ``max_faults`` (stopping early only on a violation), making a
        holding report a proof rather than evidence.
    """

    claimed_diameter: float
    max_faults: int
    worst_diameter: float
    worst_fault_set: Optional[FaultSet]
    evaluated: int
    exhaustive: bool

    @property
    def holds(self) -> bool:
        """``True`` when no evaluated fault set violated the claimed bound."""
        return self.worst_diameter <= self.claimed_diameter

    def __repr__(self) -> str:
        status = "holds" if self.holds else "VIOLATED"
        mode = "exhaustive" if self.exhaustive else "sampled"
        return (
            f"<ToleranceReport ({self.claimed_diameter}, {self.max_faults}) {status}: "
            f"worst={self.worst_diameter} over {self.evaluated} {mode} fault sets>"
        )


def worst_case_diameter(
    graph: Graph,
    routing: AnyRouting,
    fault_sets: Iterable[FaultSet],
    index=None,
    workers: int = 1,
) -> tuple:
    """Return ``(worst_diameter, worst_fault_set, evaluated_count)``.

    The baseline (no faults) is *not* added automatically; include the empty
    fault set in ``fault_sets`` if the fault-free diameter matters.

    The battery is evaluated through a :class:`~repro.faults.engine
    .CampaignEngine`: incrementally against a
    :class:`~repro.core.route_index.RouteIndex` (pass ``index`` to reuse a
    pre-built one) and, when ``workers > 1``, sharded across a process pool.
    """
    from repro.faults.engine import CampaignEngine

    engine = CampaignEngine(graph, routing, workers=workers, index=index)
    return engine.worst_case(fault_sets)


def check_tolerance(
    graph: Graph,
    routing: AnyRouting,
    diameter_bound: float,
    max_faults: int,
    fault_sets: Optional[Iterable[FaultSet]] = None,
    exhaustive_limit: int = 20000,
    concentrator: Sequence[Node] = (),
    seed: Optional[int] = 0,
    index=None,
    workers: int = 1,
    candidate_limit: int = 40,
) -> ToleranceReport:
    """Check whether ``routing`` is ``(diameter_bound, max_faults)``-tolerant.

    When ``fault_sets`` is omitted, exhaustive enumeration of every fault set
    of size at most ``max_faults`` is used if it stays below
    ``exhaustive_limit`` sets; otherwise the combined adversarial battery from
    :func:`repro.faults.adversary.combined_fault_sets` is used.

    Evaluation goes through the engine's bounded-diameter decision path:
    every fault set is checked with an eccentricity cap of
    ``diameter_bound`` (each source's BFS is abandoned the moment it exceeds
    the cap) and the scan stops at the first violating fault set, whose
    exact diameter is reported.  Exhaustive enumerations stream through the
    engine's generative shards (deterministic ``itertools.combinations``
    offsets), so they shard across the worker pool like random batteries do.
    ``index`` is reused when given (it also accelerates the greedy
    adversarial battery generation); with ``workers > 1`` the engine ships
    its pre-built index to the pool.  ``candidate_limit`` is the greedy
    adversary's per-round candidate budget (combined battery path only).
    """
    from repro.faults.engine import CampaignEngine

    engine = CampaignEngine(graph, routing, workers=workers, index=index)
    exhaustive = False
    if fault_sets is None:
        n = graph.number_of_nodes()
        if count_fault_sets(n, max_faults) <= exhaustive_limit:
            exhaustive = True
            worst, worst_set, evaluated, _holds = engine.exhaustive_worst_case(
                max_faults, diameter_bound
            )
            return ToleranceReport(
                claimed_diameter=diameter_bound,
                max_faults=max_faults,
                worst_diameter=worst,
                worst_fault_set=worst_set,
                evaluated=evaluated,
                exhaustive=exhaustive,
            )
        fault_sets = combined_fault_sets(
            graph,
            routing,
            max_faults,
            concentrator=concentrator,
            seed=seed,
            index=engine.index,
            candidate_limit=candidate_limit,
        )
    else:
        fault_sets = list(fault_sets)

    worst, worst_set, evaluated, _holds = engine.bounded_worst_case(
        fault_sets, diameter_bound
    )
    return ToleranceReport(
        claimed_diameter=diameter_bound,
        max_faults=max_faults,
        worst_diameter=worst,
        worst_fault_set=worst_set,
        evaluated=evaluated,
        exhaustive=exhaustive,
    )


def verify_construction(
    result: ConstructionResult,
    fault_sets: Optional[Iterable[FaultSet]] = None,
    exhaustive_limit: int = 20000,
    seed: Optional[int] = 0,
    workers: int = 1,
    candidate_limit: int = 40,
) -> ToleranceReport:
    """Check a construction against its own recorded guarantee.

    Uses the guarantee stored in ``result.guarantee`` (e.g. ``(4, t)`` for the
    tri-circular routing) and the construction's concentrator to aim the
    targeted fault sets at the right structures.  ``workers`` shards the
    battery evaluation across a process pool; ``candidate_limit`` tunes the
    greedy adversary inside the combined battery.
    """
    return check_tolerance(
        result.graph,
        result.routing,
        result.guarantee.diameter_bound,
        result.guarantee.max_faults,
        fault_sets=fault_sets,
        exhaustive_limit=exhaustive_limit,
        concentrator=result.concentrator,
        seed=seed,
        workers=workers,
        candidate_limit=candidate_limit,
    )


def diameter_profile(
    graph: Graph,
    routing: AnyRouting,
    fault_sets: Iterable[FaultSet],
    index=None,
) -> List[tuple]:
    """Return ``(fault_set, surviving_diameter)`` for every supplied fault set.

    Handy for tabulating how the surviving diameter degrades as specific fault
    patterns are applied (used by the examples and the figure benches).
    """
    profile = []
    for fault_set in fault_sets:
        profile.append(
            (fault_set, surviving_diameter(graph, routing, fault_set, index=index))
        )
    return profile

"""Changing the network (Section 6): concentrator clique augmentation.

The paper's final observation is that a designer allowed to *add links* can
take the basic kernel construction and turn its concentrator (a minimal
separating set ``M`` of ``t + 1`` nodes) into a clique.  The cost is at most
``t(t + 1)/2`` new links, and the payoff is a ``(3, t)``-tolerant routing on
the modified network: every surviving node still reaches a surviving
concentrator member in one hop (Lemma 1), and concentrator members are now
pairwise adjacent, so any two surviving nodes are at distance at most 3.

Whether the same can be achieved with only ``O(t)`` added edges is left open
by the paper (Open Problem 2); the benchmark for this experiment reports the
number of added edges alongside the measured worst-case diameter.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.construction import ConstructionResult, Guarantee
from repro.core.routing import Routing
from repro.core.tree_routing import tree_routing
from repro.exceptions import ConstructionError
from repro.graphs.connectivity import connectivity_parameter
from repro.graphs.graph import Graph
from repro.graphs.operations import add_clique
from repro.graphs.separators import is_separating_set, minimum_separator

Node = Hashable


def clique_augmented_kernel_routing(
    graph: Graph,
    t: Optional[int] = None,
    separating_set: Optional[Iterable[Node]] = None,
) -> ConstructionResult:
    """Build the Section 6 clique-augmented kernel routing.

    Parameters
    ----------
    graph:
        The original ``(t + 1)``-connected network (left unmodified; the
        returned construction is built on an augmented copy).
    t:
        Fault parameter; defaults to ``kappa(G) - 1`` computed on the
        *original* graph.
    separating_set:
        Optional explicit separating set of the original graph.

    Returns
    -------
    ConstructionResult
        The routing is defined over the augmented graph (available as
        ``result.graph`` / ``result.details["augmented_graph"]``); the list of
        added edges is recorded in ``details["added_edges"]`` so experiments
        can verify the ``<= t(t+1)/2`` cost bound.
    """
    if t is None:
        t = connectivity_parameter(graph)
    if t < 0:
        raise ConstructionError("t must be non-negative")
    width = t + 1

    if separating_set is None:
        kernel_set: Set[Node] = set(minimum_separator(graph))
    else:
        kernel_set = set(separating_set)
        if not is_separating_set(graph, kernel_set):
            raise ConstructionError("the supplied node set does not separate the graph")
    if len(kernel_set) < width:
        raise ConstructionError(
            f"separating set has {len(kernel_set)} nodes; at least {width} required"
        )

    augmented, added_edges = add_clique(graph, kernel_set)
    augmented.name = f"{graph.name or 'G'}+clique(M)"

    routing = Routing(augmented, bidirectional=True, name="kernel+clique")
    routing.add_all_edge_routes()
    for node in augmented.nodes():
        if node in kernel_set:
            continue
        # Tree routings are built in the *original* graph so that the added
        # links are used exclusively for concentrator-to-concentrator hops —
        # they exist only between kernel nodes anyway, and keeping the tree
        # routings unchanged shows the added edges alone account for the
        # improvement from diameter 4 to 3.
        routes = tree_routing(graph, node, kernel_set, width)
        for endpoint, path in routes.items():
            routing.set_route(node, endpoint, path)

    members = sorted(kernel_set, key=repr)
    max_added = t * (t + 1) // 2
    guarantee = Guarantee(diameter_bound=3, max_faults=t, source="Section 6 (network change)")
    return ConstructionResult(
        routing=routing,
        scheme="kernel+clique",
        t=t,
        guarantee=guarantee,
        concentrator=members,
        details={
            "added_edges": added_edges,
            "added_edge_count": len(added_edges),
            "added_edge_bound": max_added,
            "augmented_graph": augmented,
            "original_graph": graph,
        },
    )


def added_edge_cost(t: int) -> int:
    """Return the paper's bound ``t(t + 1)/2`` on the number of added links."""
    if t < 0:
        raise ValueError("t must be non-negative")
    return t * (t + 1) // 2

"""The routing model: fixed simple paths assigned to ordered node pairs.

Following Section 2 of the paper, a *routing* ``rho`` is a partial function
assigning to ordered pairs ``(x, y)`` of distinct nodes a fixed simple path
from ``x`` to ``y`` in the underlying graph.  A *bidirectional* routing uses
the same path for ``(x, y)`` and ``(y, x)``.

The model is "miserly": at most one route per ordered pair.  The constructions
in the paper are stitched together from several components (tree routings,
edge routes, ...) and the paper is careful that the components never assign
two *different* paths to the same pair; :class:`Routing` enforces exactly that
invariant — re-assigning an identical path is a no-op, re-assigning a
different path raises :class:`~repro.exceptions.ConflictingRouteError`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import ConflictingRouteError, InvalidRouteError
from repro.graphs.graph import Graph
from repro.graphs.traversal import is_simple_path

Node = Hashable
Pair = Tuple[Node, Node]
Path = Tuple[Node, ...]


def _as_path(path: Sequence[Node]) -> Path:
    """Normalise a node sequence into the internal tuple representation."""
    return tuple(path)


class Routing:
    """A routing ``rho`` over an underlying graph.

    Parameters
    ----------
    graph:
        The underlying network.  Routes are validated against it: every route
        must be a simple path of the graph with the correct endpoints.
    bidirectional:
        When ``True`` (the default for the paper's main constructions except
        the unidirectional bipolar routing), assigning a route to ``(x, y)``
        implicitly assigns the reversed path to ``(y, x)``, and a conflict on
        either direction is an error.
    name:
        Optional identifier used in reports (e.g. ``"kernel"``,
        ``"tri-circular"``).

    Notes
    -----
    The class stores one path per *ordered* pair.  For bidirectional routings
    both orientations are materialised so that lookups never need to know the
    orientation convention.
    """

    def __init__(self, graph: Graph, bidirectional: bool = True, name: str = "") -> None:
        self.graph = graph
        self.bidirectional = bidirectional
        self.name = name
        self._routes: Dict[Pair, Path] = {}

    # ------------------------------------------------------------------
    # Route assignment
    # ------------------------------------------------------------------
    def _validate(self, source: Node, target: Node, path: Path) -> None:
        if source == target:
            raise InvalidRouteError("routes require distinct endpoints")
        if len(path) < 2:
            raise InvalidRouteError(f"route {path!r} is too short")
        if path[0] != source or path[-1] != target:
            raise InvalidRouteError(
                f"route {path!r} does not join {source!r} to {target!r}"
            )
        if not is_simple_path(self.graph, path):
            raise InvalidRouteError(
                f"route {path!r} is not a simple path of the underlying graph"
            )

    def set_route(self, source: Node, target: Node, path: Sequence[Node]) -> None:
        """Assign the route ``rho(source, target) = path``.

        Assigning the path already stored for the pair is a no-op (the paper's
        constructions legitimately re-derive the same route from different
        components, e.g. the direct edge to a shared root).  Assigning a
        *different* path raises :class:`ConflictingRouteError`, because the
        miserly model allows at most one route per pair.

        For bidirectional routings the reversed path is assigned to the
        reversed pair as well, with the same conflict rule.
        """
        normalized = _as_path(path)
        self._validate(source, target, normalized)
        self._store(source, target, normalized)
        if self.bidirectional:
            self._store(target, source, tuple(reversed(normalized)))

    def _store(self, source: Node, target: Node, path: Path) -> None:
        existing = self._routes.get((source, target))
        if existing is None:
            self._routes[(source, target)] = path
        elif existing != path:
            raise ConflictingRouteError(
                f"pair ({source!r}, {target!r}) already routed via {existing!r}; "
                f"refusing to overwrite with {path!r}"
            )

    def set_edge_route(self, u: Node, v: Node) -> None:
        """Assign the direct edge route between adjacent nodes ``u`` and ``v``."""
        if not self.graph.has_edge(u, v):
            raise InvalidRouteError(f"{u!r} and {v!r} are not adjacent")
        self.set_route(u, v, (u, v))

    def add_all_edge_routes(self) -> None:
        """Assign a direct edge route between every pair of adjacent nodes.

        This is the "Component ... : a direct edge route between any two
        neighbouring nodes in G" clause shared by every construction in the
        paper.  Pairs that already carry the direct edge are left untouched;
        pairs that carry a different route would be a conflict, which the
        constructions avoid by the tree-routing shortcut rule.
        """
        for u, v in self.graph.edges():
            self.set_route(u, v, (u, v))
            if not self.bidirectional:
                self.set_route(v, u, (v, u))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get_route(self, source: Node, target: Node) -> Optional[Path]:
        """Return ``rho(source, target)`` or ``None`` when undefined."""
        return self._routes.get((source, target))

    def has_route(self, source: Node, target: Node) -> bool:
        """Return ``True`` if a route is defined for the ordered pair."""
        return (source, target) in self._routes

    def pairs(self) -> List[Pair]:
        """Return every ordered pair that carries a route."""
        return list(self._routes)

    def routes(self) -> Dict[Pair, Path]:
        """Return a copy of the full route table."""
        return dict(self._routes)

    def items(self) -> Iterator[Tuple[Pair, Path]]:
        """Iterate over ``((source, target), path)`` entries."""
        return iter(list(self._routes.items()))

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._routes

    # ------------------------------------------------------------------
    # Whole-table predicates
    # ------------------------------------------------------------------
    def is_total(self) -> bool:
        """Return ``True`` if every ordered pair of distinct nodes has a route."""
        n = self.graph.number_of_nodes()
        return len(self._routes) == n * (n - 1)

    def is_symmetric(self) -> bool:
        """Return ``True`` if ``rho(x, y)`` is always the reverse of ``rho(y, x)``.

        Bidirectional routings are symmetric by construction; a unidirectional
        routing may or may not be.
        """
        for (source, target), path in self._routes.items():
            other = self._routes.get((target, source))
            if other is None or other != tuple(reversed(path)):
                return False
        return True

    def max_route_length(self) -> int:
        """Return the number of edges of the longest route (0 if empty)."""
        if not self._routes:
            return 0
        return max(len(path) - 1 for path in self._routes.values())

    def total_route_length(self) -> int:
        """Return the summed number of edges over all routes."""
        return sum(len(path) - 1 for path in self._routes.values())

    def routed_pairs_from(self, source: Node) -> List[Node]:
        """Return the targets ``y`` such that ``rho(source, y)`` is defined."""
        return [target for (src, target) in self._routes if src == source]

    def nodes_on_route(self, source: Node, target: Node) -> Set[Node]:
        """Return the set of nodes appearing on ``rho(source, target)``.

        Raises ``KeyError`` if the pair carries no route.
        """
        path = self._routes.get((source, target))
        if path is None:
            raise KeyError((source, target))
        return set(path)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self) -> "Routing":
        """Return a deep copy bound to the same graph object."""
        clone = Routing(self.graph, bidirectional=self.bidirectional, name=self.name)
        clone._routes = dict(self._routes)
        return clone

    def fingerprint(self) -> str:
        """Return a SHA-256 hex digest of the canonical route table.

        The digest hashes every ``(source, target) -> path`` entry in
        repr-sorted order, so it identifies the routing's *content*
        independently of insertion order, interpreter run or
        ``PYTHONHASHSEED``.  Two routings have equal fingerprints iff their
        route tables are equal (up to repr collisions), which is what the
        construction-determinism regression tests compare across processes.
        """
        return _fingerprint_entries(
            (repr((source, target)), repr(path))
            for (source, target), path in self._routes.items()
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        kind = "bidirectional" if self.bidirectional else "unidirectional"
        return f"<Routing{label} {kind} routes={len(self._routes)}>"


class MultiRouting:
    """A multirouting: up to ``r`` parallel routes per ordered pair (Section 6).

    Section 6 of the paper relaxes the miserly model and allows several
    parallel routes between a pair of nodes.  The surviving graph then has an
    edge ``x -> y`` whenever *at least one* of the routes assigned to
    ``(x, y)`` survives the faults.
    """

    def __init__(self, graph: Graph, bidirectional: bool = True, name: str = "") -> None:
        self.graph = graph
        self.bidirectional = bidirectional
        self.name = name
        self._routes: Dict[Pair, List[Path]] = {}

    def add_route(self, source: Node, target: Node, path: Sequence[Node]) -> None:
        """Append a parallel route for ``(source, target)`` (duplicates ignored)."""
        normalized = _as_path(path)
        if source == target:
            raise InvalidRouteError("routes require distinct endpoints")
        if normalized[0] != source or normalized[-1] != target:
            raise InvalidRouteError(
                f"route {normalized!r} does not join {source!r} to {target!r}"
            )
        if not is_simple_path(self.graph, normalized):
            raise InvalidRouteError(
                f"route {normalized!r} is not a simple path of the underlying graph"
            )
        self._append(source, target, normalized)
        if self.bidirectional:
            self._append(target, source, tuple(reversed(normalized)))

    def _append(self, source: Node, target: Node, path: Path) -> None:
        bucket = self._routes.setdefault((source, target), [])
        if path not in bucket:
            bucket.append(path)

    def get_routes(self, source: Node, target: Node) -> List[Path]:
        """Return the (possibly empty) list of routes for the ordered pair."""
        return list(self._routes.get((source, target), []))

    def has_route(self, source: Node, target: Node) -> bool:
        """Return ``True`` if at least one route is defined for the pair."""
        return bool(self._routes.get((source, target)))

    def pairs(self) -> List[Pair]:
        """Return every ordered pair carrying at least one route."""
        return list(self._routes)

    def max_parallelism(self) -> int:
        """Return the largest number of parallel routes on any pair."""
        if not self._routes:
            return 0
        return max(len(bucket) for bucket in self._routes.values())

    def route_count(self) -> int:
        """Return the total number of stored routes (over all pairs)."""
        return sum(len(bucket) for bucket in self._routes.values())

    def __len__(self) -> int:
        return len(self._routes)

    def fingerprint(self) -> str:
        """Return a SHA-256 hex digest of the canonical multiroute table.

        Same contract as :meth:`Routing.fingerprint`: entries are hashed in
        repr-sorted order (parallel routes keep their stored order, which is
        part of the multirouting's identity).
        """
        return _fingerprint_entries(
            (repr((source, target)), repr(bucket))
            for (source, target), bucket in self._routes.items()
        )

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<MultiRouting{label} pairs={len(self._routes)} "
            f"routes={self.route_count()}>"
        )


def _fingerprint_entries(entries: Iterable[Tuple[str, str]]) -> str:
    """Hash ``(pair_repr, routes_repr)`` entries in sorted order (SHA-256)."""
    import hashlib

    digest = hashlib.sha256()
    for pair_repr, routes_repr in sorted(entries):
        digest.update(pair_repr.encode("utf-8"))
        digest.update(b"->")
        digest.update(routes_repr.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()

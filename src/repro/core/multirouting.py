"""Multiroutings (Section 6): relaxing the one-route-per-pair rule.

Section 6 of the paper observes that allowing several parallel routes per
ordered pair buys dramatically smaller surviving diameters:

1. with ``t + 1`` parallel routes per pair one can use ``t + 1`` internally
   disjoint paths everywhere, so the surviving graph is complete (diameter 1)
   for any ``|F| <= t``;
2. with ``t + 1`` parallel routes *only between concentrator nodes*, the
   kernel routing augmented with those multiroutes achieves diameter 3;
3. with at most two parallel routes per pair, a single separating set
   suffices to build a bipolar-like routing (components MULT 1–3).

All three variants are implemented here on top of
:class:`repro.core.routing.MultiRouting`.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, List, Optional, Sequence, Set

from repro.core.construction import ConstructionResult, Guarantee
from repro.core.routing import MultiRouting
from repro.core.tree_routing import tree_routing, tree_routing_to_neighborhood
from repro.exceptions import ConstructionError
from repro.graphs.connectivity import connectivity_parameter
from repro.graphs.disjoint_paths import vertex_disjoint_paths
from repro.graphs.graph import Graph
from repro.graphs.separators import is_separating_set, minimum_separator

Node = Hashable


def full_multirouting(graph: Graph, t: Optional[int] = None) -> ConstructionResult:
    """Section 6, observation (1): ``t + 1`` disjoint routes between every pair.

    Every ordered pair of nodes receives ``t + 1`` internally disjoint paths;
    with at most ``t`` faults at least one survives, so the surviving route
    graph is the complete graph on the surviving nodes (diameter 1).

    The route table is quadratic in the number of nodes with ``t + 1`` paths
    per pair, so this construction is only practical for small networks — the
    very trade-off (table size versus tolerance) that motivates the paper's
    miserly single-route model.
    """
    if t is None:
        t = connectivity_parameter(graph)
    if t < 0:
        raise ConstructionError("t must be non-negative")
    width = t + 1

    routing = MultiRouting(graph, bidirectional=True, name="multi-full")
    nodes = sorted(graph.nodes(), key=repr)
    for index, source in enumerate(nodes):
        for target in nodes[index + 1 :]:
            paths = vertex_disjoint_paths(graph, source, target, k=width)
            if len(paths) < width:
                raise ConstructionError(
                    f"only {len(paths)} disjoint paths between {source!r} and "
                    f"{target!r}; the graph is not (t + 1)-connected"
                )
            for path in paths:
                routing.add_route(source, target, path)

    guarantee = Guarantee(diameter_bound=1, max_faults=t, source="Section 6 (1)")
    return ConstructionResult(
        routing=routing,
        scheme="multi-full",
        t=t,
        guarantee=guarantee,
        concentrator=[],
        details={"routes_per_pair": width},
    )


def kernel_multirouting(
    graph: Graph,
    t: Optional[int] = None,
    separating_set: Optional[Iterable[Node]] = None,
) -> ConstructionResult:
    """Section 6, observation (2): kernel routing + multiroutes inside the kernel.

    The ordinary kernel routing (tree routings into a minimal separating set
    ``M`` plus edge routes) is augmented with ``t + 1`` parallel disjoint
    routes between every pair of concentrator nodes.  Any two surviving nodes
    then reach surviving concentrator members in one hop (Lemma 1) which are
    themselves mutually adjacent in the surviving graph, for a diameter of 3.
    """
    if t is None:
        t = connectivity_parameter(graph)
    if t < 0:
        raise ConstructionError("t must be non-negative")
    width = t + 1

    if separating_set is None:
        kernel_set: Set[Node] = set(minimum_separator(graph))
    else:
        kernel_set = set(separating_set)
        if not is_separating_set(graph, kernel_set):
            raise ConstructionError("the supplied node set does not separate the graph")
    if len(kernel_set) < width:
        raise ConstructionError(
            f"separating set has {len(kernel_set)} nodes; at least {width} required"
        )

    routing = MultiRouting(graph, bidirectional=True, name="multi-kernel")
    for u, v in graph.edges():
        routing.add_route(u, v, (u, v))
    for node in graph.nodes():
        if node in kernel_set:
            continue
        routes = tree_routing(graph, node, kernel_set, width)
        for endpoint, path in routes.items():
            routing.add_route(node, endpoint, path)
    members = sorted(kernel_set, key=repr)
    for source, target in itertools.combinations(members, 2):
        for path in vertex_disjoint_paths(graph, source, target, k=width):
            routing.add_route(source, target, path)

    guarantee = Guarantee(diameter_bound=3, max_faults=t, source="Section 6 (2)")
    return ConstructionResult(
        routing=routing,
        scheme="multi-kernel",
        t=t,
        guarantee=guarantee,
        concentrator=members,
        details={"separating_set_size": len(kernel_set)},
    )


def single_tree_multirouting(
    graph: Graph,
    t: Optional[int] = None,
    separating_set: Optional[Iterable[Node]] = None,
) -> ConstructionResult:
    """Section 6, observation (3): a bipolar-like routing with two routes per pair.

    Components (all bidirectional):

    * MULT 1 — a tree routing from every node outside ``M`` to ``M``;
    * MULT 2 — tree routings from every concentrator node ``m_j`` to the
      neighbour set ``Gamma(m_i)`` of every concentrator node;
    * MULT 3 — direct edge routes.

    Because MULT 1 and MULT 2 may both assign a route to the same pair (a
    ``Gamma`` node routed to from the concentrator also routes into ``M``),
    the result is a multirouting with at most two routes per pair.  The paper
    sketches this as an analogue of the bipolar construction concentrated on a
    single separating set; empirically it achieves small constant surviving
    diameters (the benchmarks record the measured worst case; we conservatively
    tag it with the bipolar-style bound of 4).
    """
    if t is None:
        t = connectivity_parameter(graph)
    if t < 0:
        raise ConstructionError("t must be non-negative")
    width = t + 1

    if separating_set is None:
        kernel_set: Set[Node] = set(minimum_separator(graph))
    else:
        kernel_set = set(separating_set)
        if not is_separating_set(graph, kernel_set):
            raise ConstructionError("the supplied node set does not separate the graph")
    if len(kernel_set) < width:
        raise ConstructionError(
            f"separating set has {len(kernel_set)} nodes; at least {width} required"
        )
    members = sorted(kernel_set, key=repr)

    routing = MultiRouting(graph, bidirectional=True, name="multi-single-tree")
    # Component MULT 3: edge routes.
    for u, v in graph.edges():
        routing.add_route(u, v, (u, v))
    # Component MULT 1: tree routings into M.
    for node in graph.nodes():
        if node in kernel_set:
            continue
        routes = tree_routing(graph, node, kernel_set, width)
        for endpoint, path in routes.items():
            routing.add_route(node, endpoint, path)
    # Component MULT 2: tree routings from each concentrator node to each
    # member's neighbour set.
    for member in members:
        for center in members:
            if member != center and graph.has_edge(member, center):
                # The centre's neighbourhood contains `member` itself in this
                # case; tree routings are undefined from inside the target
                # set, and the direct edge route already covers the pair.
                continue
            routes = tree_routing_to_neighborhood(graph, member, center, width)
            for endpoint, path in routes.items():
                routing.add_route(member, endpoint, path)

    guarantee = Guarantee(diameter_bound=4, max_faults=t, source="Section 6 (3)")
    return ConstructionResult(
        routing=routing,
        scheme="multi-single-tree",
        t=t,
        guarantee=guarantee,
        concentrator=members,
        details={"separating_set_size": len(kernel_set), "max_parallel_routes": 2},
    )

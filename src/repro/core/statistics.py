"""Routing-table statistics: length, stretch, load and table size.

The paper evaluates routings by one number — the worst surviving diameter —
but a systems designer choosing between the constructions also cares about
secondary costs:

* **route length**: how many links a single route traverses (the hop latency
  of one segment);
* **stretch**: route length divided by the graph distance of its endpoints
  (how much longer the fixed path is than the best possible path);
* **node load**: how many routes pass through each node — concentrator-based
  designs deliberately funnel traffic through the concentrator, and the load
  statistics quantify that hot-spotting;
* **table size**: how many (pairs, routes) a node has to store.

:func:`routing_statistics` computes all of these for any :class:`Routing` or
:class:`MultiRouting`; the hypercube example and the ablation bench use it to
compare constructions beyond their ``(d, f)`` guarantees.
"""

from __future__ import annotations

import dataclasses
import statistics as _statistics
from typing import Dict, Hashable, List, Optional, Tuple, Union

from repro.core.routing import MultiRouting, Routing
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Node = Hashable
AnyRouting = Union[Routing, MultiRouting]


@dataclasses.dataclass
class RoutingStatistics:
    """Aggregate statistics of a routing table."""

    routed_pairs: int
    stored_routes: int
    total_route_edges: int
    mean_route_length: float
    max_route_length: int
    mean_stretch: float
    max_stretch: float
    mean_node_load: float
    max_node_load: int
    max_load_node: Optional[Node]

    def as_row(self) -> Dict[str, object]:
        """Return the statistics as a flat table row."""
        return {
            "pairs": self.routed_pairs,
            "routes": self.stored_routes,
            "mean_len": round(self.mean_route_length, 2),
            "max_len": self.max_route_length,
            "mean_stretch": round(self.mean_stretch, 2),
            "max_stretch": round(self.max_stretch, 2),
            "mean_load": round(self.mean_node_load, 1),
            "max_load": self.max_node_load,
        }


def _iter_routes(routing: AnyRouting) -> List[Tuple[Tuple[Node, Node], Tuple[Node, ...]]]:
    """Flatten a routing / multirouting into ``((source, target), path)`` entries."""
    entries: List[Tuple[Tuple[Node, Node], Tuple[Node, ...]]] = []
    if isinstance(routing, MultiRouting):
        for pair in routing.pairs():
            for path in routing.get_routes(*pair):
                entries.append((pair, tuple(path)))
    else:
        for pair, path in routing.items():
            entries.append((pair, tuple(path)))
    return entries


def node_loads(routing: AnyRouting) -> Dict[Node, int]:
    """Return, for every node of the underlying graph, how many routes visit it.

    Endpoints count as visits: a node "handles" the routes it originates and
    terminates as well as the ones it forwards.
    """
    loads: Dict[Node, int] = {node: 0 for node in routing.graph.nodes()}
    for _pair, path in _iter_routes(routing):
        for node in path:
            loads[node] += 1
    return loads


def route_lengths(routing: AnyRouting) -> List[int]:
    """Return the edge-count of every stored route."""
    return [len(path) - 1 for _pair, path in _iter_routes(routing)]


def route_stretches(routing: AnyRouting) -> List[float]:
    """Return the stretch (route length / graph distance) of every stored route.

    Routes between adjacent nodes have stretch 1 by the direct-edge invariant;
    a stretch of 2.5 means the fixed path is 2.5 times longer than a shortest
    path between its endpoints.
    """
    graph = routing.graph
    distance_cache: Dict[Node, Dict[Node, int]] = {}
    stretches: List[float] = []
    for (source, target), path in _iter_routes(routing):
        if source not in distance_cache:
            distance_cache[source] = bfs_distances(graph, source)
        shortest = distance_cache[source].get(target)
        if not shortest:
            continue
        stretches.append((len(path) - 1) / shortest)
    return stretches


def routing_statistics(routing: AnyRouting) -> RoutingStatistics:
    """Compute the full :class:`RoutingStatistics` for a routing table."""
    entries = _iter_routes(routing)
    lengths = [len(path) - 1 for _pair, path in entries]
    stretches = route_stretches(routing)
    loads = node_loads(routing)
    max_load_node = max(loads, key=lambda node: loads[node]) if loads else None
    pairs = len(set(pair for pair, _path in entries))
    return RoutingStatistics(
        routed_pairs=pairs,
        stored_routes=len(entries),
        total_route_edges=sum(lengths),
        mean_route_length=_statistics.fmean(lengths) if lengths else 0.0,
        max_route_length=max(lengths) if lengths else 0,
        mean_stretch=_statistics.fmean(stretches) if stretches else 0.0,
        max_stretch=max(stretches) if stretches else 0.0,
        mean_node_load=_statistics.fmean(loads.values()) if loads else 0.0,
        max_node_load=max(loads.values()) if loads else 0,
        max_load_node=max_load_node,
    )


def concentrator_load_share(routing: AnyRouting, concentrator: List[Node]) -> float:
    """Return the fraction of total route-visits handled by the concentrator.

    A value of 0.4 means 40% of all (route, node) incidences fall on
    concentrator nodes — a direct measure of how much the construction funnels
    traffic through its concentrator.
    """
    loads = node_loads(routing)
    total = sum(loads.values())
    if total == 0:
        return 0.0
    member_set = set(concentrator)
    return sum(load for node, load in loads.items() if node in member_set) / total


def per_node_table_sizes(routing: AnyRouting) -> Dict[Node, int]:
    """Return, per node, the number of routes for which it is the source.

    In the paper's model the source attaches the route to the message, so this
    is the size of the forwarding table each node must store.
    """
    sizes: Dict[Node, int] = {node: 0 for node in routing.graph.nodes()}
    for (source, _target), _path in _iter_routes(routing):
        sizes[source] += 1
    return sizes

"""Empirical study of the two-trees property in sparse random graphs.

Lemma 24 shows that for ``G(n, p)`` with ``p <= c * n^eps / n`` and
``eps < 1/4``, the probability that the graph *lacks* the two-trees property
is ``O(n^{-delta})`` for some ``delta > 0`` — i.e. almost every sparse random
graph admits the bipolar routings of Theorem 25.  The proof works through
three "bad" events for a fixed labelled pair of vertices (1 and 2): either
vertex lies on a cycle of length at most 4, or they are at distance less than
4 (any *good* pair witnesses the property).

This module measures both quantities empirically:

* the fraction of samples in which the *fixed pair* ``(0, 1)`` is good
  (the event the lemma actually bounds), and
* the fraction in which *some* pair is good (the event Theorem 25 needs),

together with the lemma's analytic upper bound on the bad-pair probability,
so the benchmark can show the measured curve sitting below the bound.
"""

from __future__ import annotations

import dataclasses
import random as _random
from typing import Dict, List, Optional, Sequence, Union

from repro.graphs.generators import gnp_random_graph
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    has_two_trees_property,
    lies_on_short_cycle,
    satisfies_two_trees_property,
)
from repro.graphs.traversal import bfs_distances

RandomLike = Union[int, _random.Random, None]


@dataclasses.dataclass
class TwoTreesSample:
    """Empirical two-trees statistics for one ``(n, p)`` point."""

    n: int
    p: float
    samples: int
    fixed_pair_good: float
    some_pair_good: float
    bad_event_bound: float

    def as_row(self) -> Dict[str, object]:
        """Return the sample as a table row."""
        return {
            "n": self.n,
            "p": round(self.p, 5),
            "samples": self.samples,
            "fixed_pair_good": round(self.fixed_pair_good, 3),
            "some_pair_good": round(self.some_pair_good, 3),
            "lemma24_bad_bound": round(self.bad_event_bound, 3),
        }


def fixed_pair_is_good(graph: Graph, first=0, second=1) -> bool:
    """Return ``True`` if the fixed pair is "good" in Lemma 24's sense.

    Good means: neither vertex lies on a cycle of length at most 4 and their
    distance is at least 4.  Every good pair witnesses the two-trees property.
    """
    if not graph.has_node(first) or not graph.has_node(second):
        return False
    if lies_on_short_cycle(graph, first, 4) or lies_on_short_cycle(graph, second, 4):
        return False
    distance = bfs_distances(graph, first).get(second, float("inf"))
    if distance < 4:
        return False
    return satisfies_two_trees_property(graph, first, second)


def lemma24_bad_probability_bound(n: int, p: float) -> float:
    """Evaluate Lemma 24's explicit upper bound on ``P(bad)``.

    The proof bounds the probability of the union of the three bad events by

        ``2 * (n^2/2 * p^3 + n^3/2 * 3p^4)            (short cycles at 1 or 2)``
        ``+ n^3 p^4 + n^2 p^3 + n p^2 + p             (distance < 4)``

    (using the crude ``binom(n-1, 2) <= n^2/2`` style estimates of the paper).
    The bound can exceed 1 for dense graphs; it is only informative in the
    sparse regime the lemma addresses.
    """
    if n < 1:
        raise ValueError("n must be positive")
    cycle_bound = (n ** 2 / 2.0) * p ** 3 + (n ** 3 / 2.0) * 3 * p ** 4
    distance_bound = n ** 3 * p ** 4 + n ** 2 * p ** 3 + n * p ** 2 + p
    return min(1.0, 2 * cycle_bound + distance_bound)


def sample_two_trees_probability(
    n: int,
    p: float,
    samples: int = 20,
    seed: RandomLike = None,
    search_all_pairs: bool = True,
) -> TwoTreesSample:
    """Estimate the two-trees probabilities for ``G(n, p)`` by sampling.

    Parameters
    ----------
    search_all_pairs:
        When ``True`` (default) also record whether *any* pair of vertices
        witnesses the property (the quantity Theorem 25 cares about); the
        search is the expensive part, so large sweeps may disable it and rely
        on the fixed-pair estimate, which is a lower bound.
    """
    rng = _random.Random(seed) if not isinstance(seed, _random.Random) else seed
    fixed_good = 0
    any_good = 0
    for _ in range(samples):
        graph = gnp_random_graph(n, p, seed=rng)
        if fixed_pair_is_good(graph):
            fixed_good += 1
            any_good += 1
        elif search_all_pairs and has_two_trees_property(graph):
            any_good += 1
    return TwoTreesSample(
        n=n,
        p=p,
        samples=samples,
        fixed_pair_good=fixed_good / samples,
        some_pair_good=(any_good / samples) if search_all_pairs else float("nan"),
        bad_event_bound=lemma24_bad_probability_bound(n, p),
    )


def sweep_two_trees(
    sizes: Sequence[int],
    c: float = 1.0,
    eps: float = 0.2,
    samples: int = 20,
    seed: RandomLike = 0,
    search_all_pairs: bool = True,
) -> List[TwoTreesSample]:
    """Sweep ``G(n, p)`` with ``p = c * n^eps / n`` over the given sizes.

    ``eps < 1/4`` keeps the sweep inside the regime of Lemma 24 / Theorem 25.
    """
    if not 0 <= eps:
        raise ValueError("eps must be non-negative")
    results = []
    for n in sizes:
        p = min(1.0, c * (n ** eps) / n)
        results.append(
            sample_two_trees_probability(
                n, p, samples=samples, seed=seed, search_all_pairs=search_all_pairs
            )
        )
    return results

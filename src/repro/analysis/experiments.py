"""Experiment runner: construct a routing, attack it, tabulate the results.

Every benchmark in :mod:`benchmarks` follows the same shape: build a family of
graphs, apply a construction, search (exhaustively or adversarially) for the
worst fault set of each admissible size, and report the worst surviving
diameter next to the paper's bound.  :class:`ExperimentRunner` factors that
shape out so individual benches stay short and declarative.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Union

from repro.core.construction import ConstructionResult
from repro.core.tolerance import ToleranceReport, check_tolerance
from repro.faults.adversary import all_fault_sets, combined_fault_sets, count_fault_sets
from repro.faults.models import FaultSet
from repro.graphs.graph import Graph

Node = Hashable


@dataclasses.dataclass
class ExperimentRecord:
    """One row of an experiment: a graph, a construction and its verification."""

    experiment: str
    graph_name: str
    nodes: int
    edges: int
    t: int
    scheme: str
    paper_bound: int
    max_faults: int
    measured_worst: float
    fault_sets_evaluated: int
    exhaustive: bool
    elapsed_seconds: float

    @property
    def holds(self) -> bool:
        """``True`` when the measured worst case respects the paper's bound."""
        return self.measured_worst <= self.paper_bound

    def as_row(self) -> Dict[str, object]:
        """Return the record as a flat dict for table rendering."""
        return {
            "experiment": self.experiment,
            "graph": self.graph_name,
            "n": self.nodes,
            "m": self.edges,
            "t": self.t,
            "scheme": self.scheme,
            "paper_d": self.paper_bound,
            "faults<=": self.max_faults,
            "measured_d": self.measured_worst,
            "fault_sets": self.fault_sets_evaluated,
            "exhaustive": "yes" if self.exhaustive else "no",
            "ok": "yes" if self.holds else "NO",
        }

    def record(self) -> Dict[str, object]:
        """Return the unified result record for this experiment.

        The experiment's tolerance check is a bounded decision — "does the
        worst fault set respect the paper's diameter bound" — so it emits a
        ``decision`` record: ``bound`` carries the paper bound,
        ``worst_diam`` the measured worst surviving diameter, and
        ``violations`` whether the bound held (1 marks at least one
        violating fault set; the early-exit scan does not count the rest).
        """
        return {
            "source": "experiment",
            "kind": "decision",
            "family": self.graph_name,
            "scheme": self.scheme,
            "n": self.nodes,
            "m": self.edges,
            "t": self.t,
            "faults": self.max_faults,
            "samples": self.fault_sets_evaluated,
            "bound": float(self.paper_bound),
            "violations": 0 if self.holds else 1,
            "worst_diam": float(self.measured_worst),
        }


class ExperimentRunner:
    """Run "construct + attack + compare" experiments and collect records.

    Fault batteries are evaluated through the indexed campaign engine; set
    ``workers > 1`` to shard each battery across a process pool (results are
    identical for any worker count).
    """

    def __init__(
        self, exhaustive_limit: int = 20000, seed: int = 0, workers: int = 1
    ) -> None:
        self.exhaustive_limit = exhaustive_limit
        self.seed = seed
        self.workers = workers
        self.records: List[ExperimentRecord] = []

    def run(
        self,
        experiment: str,
        graph: Graph,
        construct: Callable[[Graph], ConstructionResult],
        fault_sets: Optional[Iterable[FaultSet]] = None,
        max_faults: Optional[int] = None,
        diameter_bound: Optional[int] = None,
    ) -> ExperimentRecord:
        """Run a single experiment and append (and return) its record.

        Parameters
        ----------
        experiment:
            Identifier used in the report (e.g. ``"E02/Theorem4"``).
        graph:
            The underlying graph.
        construct:
            Callable building the construction from the graph.
        fault_sets:
            Optional explicit fault sets; default chooses exhaustive or the
            combined adversarial battery depending on problem size.
        max_faults, diameter_bound:
            Optional overrides of the construction's recorded guarantee
            (e.g. to check Theorem 3's ``(2t, t)`` instead of Theorem 4's
            ``(4, floor(t/2))`` on the same kernel routing).
        """
        start = time.perf_counter()
        result = construct(graph)
        bound = diameter_bound if diameter_bound is not None else result.guarantee.diameter_bound
        faults = max_faults if max_faults is not None else result.guarantee.max_faults
        report = check_tolerance(
            result.graph,
            result.routing,
            bound,
            faults,
            fault_sets=fault_sets,
            exhaustive_limit=self.exhaustive_limit,
            concentrator=result.concentrator,
            seed=self.seed,
            workers=self.workers,
        )
        elapsed = time.perf_counter() - start
        record = ExperimentRecord(
            experiment=experiment,
            graph_name=graph.name or "G",
            nodes=result.graph.number_of_nodes(),
            edges=result.graph.number_of_edges(),
            t=result.t,
            scheme=result.scheme,
            paper_bound=bound,
            max_faults=faults,
            measured_worst=report.worst_diameter,
            fault_sets_evaluated=report.evaluated,
            exhaustive=report.exhaustive,
            elapsed_seconds=elapsed,
        )
        self.records.append(record)
        return record

    def rows(self) -> List[Dict[str, object]]:
        """Return all records as table rows."""
        return [record.as_row() for record in self.records]

    def frame(self):
        """Return the collected records as a unified result frame."""
        from repro.results.records import result_frame

        return result_frame(record.record() for record in self.records)

    def all_hold(self) -> bool:
        """Return ``True`` when every recorded experiment respects its bound."""
        return all(record.holds for record in self.records)

    def worst_by_experiment(self) -> Dict[str, float]:
        """Return the worst measured diameter per experiment identifier."""
        worst: Dict[str, float] = {}
        for record in self.records:
            worst[record.experiment] = max(
                worst.get(record.experiment, 0.0), record.measured_worst
            )
        return worst

"""Experiment runners, sweeps and report formatting for the benchmarks."""

from repro.analysis.experiments import ExperimentRecord, ExperimentRunner
from repro.analysis.degree_bounds import (
    CIRCULAR_CONSTANT,
    TRICIRCULAR_CONSTANT,
    DegreeBoundRecord,
    evaluate_degree_bounds,
    minimum_size_for_circular,
    minimum_size_for_tricircular,
)
from repro.analysis.random_graphs import (
    TwoTreesSample,
    fixed_pair_is_good,
    lemma24_bad_probability_bound,
    sample_two_trees_probability,
    sweep_two_trees,
)
from repro.analysis.reporting import (
    bullet_list,
    format_comparison,
    format_table,
    render_csv_table,
    render_markdown_table,
    render_scaling_report,
    render_traffic_report,
    scaling_table,
    traffic_table,
)

__all__ = [
    "ExperimentRecord",
    "ExperimentRunner",
    "CIRCULAR_CONSTANT",
    "TRICIRCULAR_CONSTANT",
    "DegreeBoundRecord",
    "evaluate_degree_bounds",
    "minimum_size_for_circular",
    "minimum_size_for_tricircular",
    "TwoTreesSample",
    "fixed_pair_is_good",
    "lemma24_bad_probability_bound",
    "sample_two_trees_probability",
    "sweep_two_trees",
    "bullet_list",
    "format_comparison",
    "format_table",
    "render_csv_table",
    "render_markdown_table",
    "render_scaling_report",
    "render_traffic_report",
    "scaling_table",
    "traffic_table",
]

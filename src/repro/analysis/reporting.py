"""Table formatting and paper-style scaling reports for experiment results.

The paper has no numeric tables of its own (it is a theory paper), so the
reproduction's "tables" are the per-theorem verification tables printed by the
benchmarks and examples.  This module renders them consistently: fixed-width
columns, a header rule, and a caption line naming the experiment and the
paper result it corresponds to.

On top of the generic :func:`format_table`, the **scaling report** functions
render the paper's headline artifact — fault tolerance swept across graph
families and sizes — straight from a stored
:class:`~repro.results.frame.ResultFrame`: rows are ``family/n``, columns
are the fault parameter ``t``, and each cell folds the cell's campaigns
into **two metrics at once** — the mean and the worst outcome, rendered
``mean ± worst`` (collapsed to one number when they agree).  Exact
campaigns report surviving diameters, bounded-decision campaigns report
pass rates.  When the frame holds more than one routing strategy (a
``kernel|circular`` grid, or several merged single-strategy stores), the
table switches to the paper's **strategy-comparison layout**: the columns
become ``strategy × t`` groups, so constructions line up side by side at
equal fault parameters.  Markdown and CSV renderings are deterministic
functions of the frame and the run manifest, so a resumed campaign's
report is byte-identical to an uninterrupted run's.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    caption: str = "",
) -> str:
    """Render a list of dict rows as a fixed-width text table.

    Parameters
    ----------
    rows:
        The table body; every row is a mapping from column name to value.
    columns:
        Optional explicit column order (defaults to the keys of the first row
        in insertion order).
    caption:
        Optional caption printed above the table.
    """
    if not rows:
        return caption + "\n(no rows)" if caption else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            if value == float("inf"):
                return "inf"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    widths = {column: len(column) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [render(row.get(column, "")) for column in columns]
        rendered_rows.append(rendered)
        for column, cell in zip(columns, rendered):
            widths[column] = max(widths[column], len(cell))

    header = "  ".join(column.ljust(widths[column]) for column in columns)
    rule = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(cell.ljust(widths[column]) for column, cell in zip(columns, rendered))
        for rendered in rendered_rows
    ]
    lines = []
    if caption:
        lines.append(caption)
    lines.extend([header, rule])
    lines.extend(body)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Scaling tables over a ResultFrame
# ----------------------------------------------------------------------
def _render_scalar(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        rendered = f"{value:.3f}".rstrip("0").rstrip(".")
        return rendered if rendered else "0"
    return str(value)


def _render_cell(value: object) -> str:
    """Render one scaling-table cell (shared by markdown and CSV).

    Two-metric cells arrive as ``(mean, worst)`` tuples and render
    ``mean ± worst``; when the two metrics render identically (single
    campaign, or every campaign agreeing) the cell collapses to the one
    number.
    """
    if isinstance(value, tuple):
        parts = [_render_scalar(item) for item in value]
        if len(set(parts)) == 1:
            return parts[0]
        return " ± ".join(parts)
    return _render_scalar(value)


#: Cell annotation per status-row disposition (see
#: :data:`repro.results.records.STATUS_DISPOSITIONS`).
_STATUS_LABELS = {"inapplicable": "n/a", "failed": "failed"}


def _status_annotations(frame, comparison: bool) -> Dict[Tuple, str]:
    """Map pivot cell coordinates to status labels for ``kind="status"`` rows.

    Keys are ``((family, n), cell)`` with ``cell`` matching the pivot's
    column values — ``(strategy, t)`` tuples under the comparison layout,
    bare ``t`` otherwise.  ``failed`` outranks ``n/a`` when both land on
    one cell.
    """
    names = set(frame.column_names)
    if "kind" not in names or not len(frame):
        return {}
    from repro.results.records import effective_strategy

    none_column = (None,) * len(frame)

    def column(name):
        return frame.column(name) if name in names else none_column

    annotations: Dict[Tuple, str] = {}
    for kind, disposition, family, size, strategy, scheme, t in zip(
        column("kind"),
        column("disposition"),
        column("family"),
        column("n"),
        column("strategy"),
        column("scheme"),
        column("t"),
    ):
        if kind != "status":
            continue
        label = _STATUS_LABELS.get(disposition, str(disposition))
        if comparison:
            effective = effective_strategy(
                {"strategy": strategy, "scheme": scheme}
            )
            cell = (effective if effective is not None else "unspecified", t)
        else:
            cell = t
        key = ((family, size), cell)
        if key not in annotations or label == "failed":
            annotations[key] = label
    return annotations


def _comparison_strategies(frame) -> List[str]:
    """Return the distinct effective strategies of a frame (sorted).

    Reads only the two relevant columns — no per-row dict materialisation,
    so calling it per render stays cheap even on large merged frames.
    """
    from repro.results.records import effective_strategy

    names = set(frame.column_names)
    if "strategy" not in names and "scheme" not in names:
        return []
    none_column = (None,) * len(frame)
    strategy_column = (
        frame.column("strategy") if "strategy" in names else none_column
    )
    scheme_column = frame.column("scheme") if "scheme" in names else none_column
    strategies = {
        effective_strategy({"strategy": strategy, "scheme": scheme})
        for strategy, scheme in zip(strategy_column, scheme_column)
    } - {None}
    return sorted(strategies)


def _uses_comparison_layout(frame) -> bool:
    """Whether :func:`scaling_table` picks the strategy-comparison layout.

    One predicate shared by the table builder and the report renderer so
    the caption can never drift from the layout actually rendered.  The
    layout re-keys the strategy column, so the frame must have one.
    """
    return (
        len(_comparison_strategies(frame)) > 1
        and "strategy" in frame.column_names
    )


def scaling_table(frame) -> Tuple[List[Dict[str, object]], List[str], str]:
    """Pivot a result frame into the paper-style scaling table.

    Returns ``(rows, columns, metric)``: one row per ``(family, n)`` sorted
    by family then size, one column per fault parameter observed, and the
    metric name describing the cells.  Every cell folds its campaigns into
    ``(mean, worst)``: exact-campaign frames report the **surviving
    diameter** (mean of the campaigns' worst diameters ± the worst overall
    — ``inf`` marks a disconnection); frames holding bounded-decision rows
    report the **pass rate** (mean ± the weakest campaign's rate).

    With a single routing strategy in the frame the columns are ``t=<k>``.
    When the frame's rows span **several strategies** — a strategy-axis
    grid, or several merged single-strategy stores — the table switches to
    the comparison layout: one ``<strategy> t=<k>`` column per observed
    ``(strategy, t)`` pair (strategy groups sorted by name), so the paper's
    kernel-vs-circular tables come out of the same pivot.  The strategy of
    a row is the *effective* one: the scheme actually built when the
    scenario asked for ``auto``.

    ``kind="status"`` rows carry no statistics but still shape the table:
    they contribute their ``(family, n)`` row and column coordinates, and
    any cell left empty where a status row lands is annotated ``n/a``
    (scenario inapplicable, dropped under ``--skip-inapplicable``) or
    ``failed`` (campaign quarantined by the supervisor) — distinguishing
    both from ``-``, a cell that simply was not swept.
    """
    kinds = set(frame.column("kind")) if len(frame) else set()
    decision = "decision" in kinds
    if decision:
        value_column, folds = "pass_rate", ("mean", "min")
        metric = "pass rate, mean ± worst"
    else:
        value_column, folds = "worst_diam", ("mean", "max")
        metric = "surviving diameter, mean ± worst"
    comparison = _uses_comparison_layout(frame)
    if comparison:
        from repro.results.frame import ResultFrame
        from repro.results.records import effective_strategy

        # Re-key the strategy column to the effective strategy so the pivot
        # groups auto-resolved schemes with explicitly requested ones.  Only
        # the pivot's own columns are copied — not the full record — and
        # rows carrying no strategy at all (bare engine campaigns) group
        # under "unspecified" rather than a literal None label.
        names = set(frame.column_names)
        needed = [
            column
            for column in frame.columns
            if column.name in ("family", "n", "strategy", "t", value_column)
        ]
        work = ResultFrame(needed)
        columns_by_name = {
            name: (
                frame.column(name)
                if name in names
                else (None,) * len(frame)
            )
            for name in ("family", "n", "strategy", "scheme", "t", value_column)
        }
        for family, size, strategy, scheme, t, value in zip(
            *(columns_by_name[name]
              for name in ("family", "n", "strategy", "scheme", "t", value_column))
        ):
            effective = effective_strategy(
                {"strategy": strategy, "scheme": scheme}
            )
            work.append(
                {
                    "family": family,
                    "n": size,
                    "strategy": effective if effective is not None else "unspecified",
                    "t": t,
                    value_column: value,
                }
            )
        pivoted, cells = work.pivot(
            ("family", "n"), ("strategy", "t"), value_column, folds
        )
        labels = {cell: f"{cell[0]} t={cell[1]}" for cell in cells}
    else:
        pivoted, cells = frame.pivot(("family", "n"), "t", value_column, folds)
        labels = {cell: f"t={cell}" for cell in cells}
    # Status rows have no value, so their cells pivoted to None; fill the
    # ones a status row explains.  Cells with partial data keep their
    # (partial) aggregate — the fold already reflects what did run.
    annotations = _status_annotations(frame, comparison)
    if annotations:
        for entry in pivoted:
            for cell in cells:
                if entry[cell] is None:
                    label = annotations.get(
                        ((entry["family"], entry["n"]), cell)
                    )
                    if label is not None:
                        entry[cell] = label
    pivoted.sort(
        key=lambda row: (
            str(row["family"]),
            row["n"] if isinstance(row["n"], int) else -1,
        )
    )
    columns = ["family", "n"] + [labels[cell] for cell in cells]
    rows = [
        {
            "family": entry["family"],
            "n": entry["n"],
            **{labels[cell]: entry[cell] for cell in cells},
        }
        for entry in pivoted
    ]
    return rows, columns, metric


#: Columns of the traffic report, in render order.
_TRAFFIC_COLUMNS = (
    "scenario",
    "strategy",
    "workload",
    "injected",
    "delivered",
    "drop_rate",
    "throughput",
    "mean_latency",
    "p99_latency",
    "max_queue_depth",
)


def _is_traffic_frame(frame) -> bool:
    """Whether a frame holds only ``kind="traffic"`` rows (traffic layout)."""
    if "kind" not in frame.column_names or not len(frame):
        return False
    return set(frame.column("kind")) == {"traffic"}


def traffic_table(frame) -> Tuple[List[Dict[str, object]], List[str]]:
    """Flatten a traffic frame into the per-run metric table.

    One row per stored traffic run, sorted by ``(scenario, strategy,
    workload)`` so merged stores render deterministically; cells are the
    load/latency metrics the event-driven simulator measured.
    """
    names = set(frame.column_names)
    none_column = (None,) * len(frame)

    def column(name):
        return frame.column(name) if name in names else none_column

    rows: List[Dict[str, object]] = []
    for values in zip(*(column(name) for name in _TRAFFIC_COLUMNS)):
        rows.append(dict(zip(_TRAFFIC_COLUMNS, values)))
    rows.sort(
        key=lambda row: (
            str(row["scenario"]),
            str(row["strategy"]),
            str(row["workload"]),
        )
    )
    return rows, list(_TRAFFIC_COLUMNS)


def render_traffic_report(
    frame,
    run: Optional[Mapping[str, object]] = None,
    fmt: str = "markdown",
) -> str:
    """Render the traffic report (markdown or CSV) for a traffic frame.

    Same determinism contract as :func:`render_scaling_report`: a pure
    function of ``(frame, run)``, byte-identical across machines, hash
    seeds and resumptions.
    """
    if fmt not in ("markdown", "csv"):
        raise ValueError(f"unknown report format {fmt!r}; use markdown or csv")
    rows, columns = traffic_table(frame)
    if fmt == "csv":
        return render_csv_table(rows, columns)
    lines: List[str] = ["# Traffic report", ""]
    if run:
        details = [
            f"{key}={run[key]}"
            for key in ("workload", "seed", "hop_latency", "link", "service")
            if run.get(key) is not None
        ]
        if details:
            lines.append("Parameters: " + ", ".join(details))
            lines.append("")
        faults = run.get("faults")
        if faults:
            lines.append("Fault schedule: " + ", ".join(str(f) for f in faults))
            lines.append("")
    lines.append(
        "Cells: per-run load metrics (latencies in simulated time units, "
        "throughput in delivered messages per unit)."
    )
    lines.append("")
    lines.append(render_markdown_table(rows, columns))
    lines.append("")
    lines.append(f"Traffic rows: {len(frame)}")
    return "\n".join(lines)


def render_markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    caption: str = "",
) -> str:
    """Render dict rows as a GitHub-flavoured markdown pipe table."""
    lines: List[str] = []
    if caption:
        lines.extend([caption, ""])
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    lines.append("| " + " | ".join(str(column) for column in columns) + " |")
    lines.append("|" + "|".join(" --- " for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| "
            + " | ".join(_render_cell(row.get(column)) for column in columns)
            + " |"
        )
    return "\n".join(lines)


def render_csv_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str]
) -> str:
    """Render dict rows as CSV text (header + one line per row)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for row in rows:
        writer.writerow([_render_cell(row.get(column)) for column in columns])
    return buffer.getvalue()


def render_scaling_report(
    frame,
    run: Optional[Mapping[str, object]] = None,
    fmt: str = "markdown",
) -> str:
    """Render the scaling report for a result frame (markdown or CSV).

    ``run`` is the store's run manifest; in markdown it becomes the header
    lines naming the swept scenarios and campaign parameters.  The output
    is a pure function of ``(frame, run)`` — no timestamps, no environment
    — so reports are comparable across machines and resumptions.
    """
    if fmt not in ("markdown", "csv"):
        raise ValueError(f"unknown report format {fmt!r}; use markdown or csv")
    if _is_traffic_frame(frame):
        # Stores written by ``repro traffic`` hold only traffic rows; the
        # scaling pivot has nothing to show for them, so ``repro report``
        # transparently renders the traffic layout instead.
        return render_traffic_report(frame, run, fmt=fmt)
    rows, columns, metric = scaling_table(frame)
    if fmt == "csv":
        return render_csv_table(rows, columns)
    lines: List[str] = ["# Scaling report", ""]
    if run:
        scenarios = run.get("scenarios")
        if scenarios:
            lines.append(f"Scenarios ({len(scenarios)}):")
            lines.extend(f"- `{scenario}`" for scenario in scenarios)
            lines.append("")
        details = [
            f"{key}={run[key]}"
            for key in ("samples", "seed", "bound", "chunk_size")
            if run.get(key) is not None
        ]
        if details:
            lines.append("Parameters: " + ", ".join(details))
            lines.append("")
    if _uses_comparison_layout(frame):
        lines.append(
            f"Cells: {metric} (rows = graph family / size, column groups = "
            "strategy × fault parameter t)."
        )
    else:
        lines.append(
            f"Cells: {metric} (rows = graph family / size, columns = fault "
            "parameter t)."
        )
    lines.append("")
    lines.append(render_markdown_table(rows, columns))
    lines.append("")
    footer = f"Campaign rows: {len(frame)}"
    names = set(frame.column_names)
    if "kind" in names and "disposition" in names and len(frame):
        counts: Dict[object, int] = {}
        for kind, disposition in zip(
            frame.column("kind"), frame.column("disposition")
        ):
            if kind == "status":
                counts[disposition] = counts.get(disposition, 0) + 1
        parts = []
        if counts.get("failed"):
            parts.append(f"{counts['failed']} failed")
        if counts.get("inapplicable"):
            parts.append(f"{counts['inapplicable']} not applicable")
        if parts:
            footer += " (" + ", ".join(parts) + ")"
    lines.append(footer)
    return "\n".join(lines)


def format_comparison(
    experiment: str,
    paper_value: object,
    measured_value: object,
    note: str = "",
) -> str:
    """Render a one-line "paper vs measured" comparison used in EXPERIMENTS.md."""
    line = f"{experiment}: paper bound = {paper_value}, measured worst = {measured_value}"
    if note:
        line += f" ({note})"
    return line


def bullet_list(items: Iterable[str], indent: str = "  ") -> str:
    """Render an indented bullet list."""
    return "\n".join(f"{indent}* {item}" for item in items)

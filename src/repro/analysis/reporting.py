"""Plain-text table formatting for experiment reports.

The paper has no numeric tables of its own (it is a theory paper), so the
reproduction's "tables" are the per-theorem verification tables printed by the
benchmarks and examples.  This module renders them consistently: fixed-width
columns, a header rule, and a caption line naming the experiment and the
paper result it corresponds to.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    caption: str = "",
) -> str:
    """Render a list of dict rows as a fixed-width text table.

    Parameters
    ----------
    rows:
        The table body; every row is a mapping from column name to value.
    columns:
        Optional explicit column order (defaults to the keys of the first row
        in insertion order).
    caption:
        Optional caption printed above the table.
    """
    if not rows:
        return caption + "\n(no rows)" if caption else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            if value == float("inf"):
                return "inf"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    widths = {column: len(column) for column in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [render(row.get(column, "")) for column in columns]
        rendered_rows.append(rendered)
        for column, cell in zip(columns, rendered):
            widths[column] = max(widths[column], len(cell))

    header = "  ".join(column.ljust(widths[column]) for column in columns)
    rule = "  ".join("-" * widths[column] for column in columns)
    body = [
        "  ".join(cell.ljust(widths[column]) for column, cell in zip(columns, rendered))
        for rendered in rendered_rows
    ]
    lines = []
    if caption:
        lines.append(caption)
    lines.extend([header, rule])
    lines.extend(body)
    return "\n".join(lines)


def format_comparison(
    experiment: str,
    paper_value: object,
    measured_value: object,
    note: str = "",
) -> str:
    """Render a one-line "paper vs measured" comparison used in EXPERIMENTS.md."""
    line = f"{experiment}: paper bound = {paper_value}, measured worst = {measured_value}"
    if note:
        line += f" ({note})"
    return line


def bullet_list(items: Iterable[str], indent: str = "  ") -> str:
    """Render an indented bullet list."""
    return "\n".join(f"{indent}* {item}" for item in items)

"""Degree-threshold analysis (Lemma 15, Theorem 16, Corollary 17).

Corollary 17 states that every ``(t + 1)``-connected graph with maximal degree
``d < 0.79 * n^(1/3)`` admits the ``(6, t)``-tolerant circular routing, and
every one with ``d < 0.46 * n^(1/3)`` admits the ``(4, t)``-tolerant
tri-circular routing.  The mechanism is purely counting: Lemma 15's greedy
algorithm always finds a neighbourhood set of at least ``ceil(n / (d^2 + 1))``
nodes, and under the degree threshold that guaranteed size exceeds the ``K``
the construction needs (``t + 2`` and ``6t + 9`` respectively, with
``t + 1 <= d``).

This module evaluates both sides of that inequality for concrete graphs so
the corresponding benchmark can tabulate: the paper's threshold, the graph's
actual maximal degree, the guaranteed and the actually-found neighbourhood-set
sizes, and whether the construction's requirement is met.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence

from repro.core.concentrators import (
    greedy_neighborhood_set,
    lemma15_lower_bound,
    required_neighborhood_set_size,
)
from repro.graphs.graph import Graph

#: Corollary 17 constants.
CIRCULAR_CONSTANT = 0.79
TRICIRCULAR_CONSTANT = 0.46


@dataclasses.dataclass
class DegreeBoundRecord:
    """Evaluation of the degree-threshold machinery on one graph."""

    graph_name: str
    n: int
    max_degree: int
    t: int
    circular_threshold: float
    tricircular_threshold: float
    within_circular_bound: bool
    within_tricircular_bound: bool
    lemma15_guarantee: int
    greedy_found: int
    circular_required: int
    tricircular_required: int

    def as_row(self) -> Dict[str, object]:
        """Return the record as a table row."""
        return {
            "graph": self.graph_name,
            "n": self.n,
            "max_deg": self.max_degree,
            "t": self.t,
            "0.79*n^(1/3)": round(self.circular_threshold, 2),
            "0.46*n^(1/3)": round(self.tricircular_threshold, 2),
            "circ_bound_ok": "yes" if self.within_circular_bound else "no",
            "tricirc_bound_ok": "yes" if self.within_tricircular_bound else "no",
            "lemma15>=": self.lemma15_guarantee,
            "greedy_found": self.greedy_found,
            "circ_needs_K": self.circular_required,
            "tricirc_needs_K": self.tricircular_required,
        }

    @property
    def circular_applicable(self) -> bool:
        """``True`` when the greedy set is large enough for the circular routing."""
        return self.greedy_found >= self.circular_required

    @property
    def tricircular_applicable(self) -> bool:
        """``True`` when the greedy set is large enough for the tri-circular routing."""
        return self.greedy_found >= self.tricircular_required


def evaluate_degree_bounds(graph: Graph, t: Optional[int] = None) -> DegreeBoundRecord:
    """Evaluate Lemma 15 / Corollary 17 quantities on ``graph``.

    ``t`` defaults to ``max_degree - 1`` *upper-bounding* the connectivity-based
    parameter (the corollary's inequality ``t + 1 <= d`` is what the proof
    uses), so the record is meaningful even for graphs whose exact
    connectivity has not been computed; pass the true ``t`` for sharper
    numbers.
    """
    n = graph.number_of_nodes()
    d = graph.max_degree()
    if t is None:
        t = max(d - 1, 0)
    circular_threshold = CIRCULAR_CONSTANT * n ** (1.0 / 3.0)
    tricircular_threshold = TRICIRCULAR_CONSTANT * n ** (1.0 / 3.0)
    greedy = greedy_neighborhood_set(graph)
    return DegreeBoundRecord(
        graph_name=graph.name or "G",
        n=n,
        max_degree=d,
        t=t,
        circular_threshold=circular_threshold,
        tricircular_threshold=tricircular_threshold,
        within_circular_bound=d < circular_threshold,
        within_tricircular_bound=d < tricircular_threshold,
        lemma15_guarantee=lemma15_lower_bound(graph),
        greedy_found=len(greedy),
        circular_required=required_neighborhood_set_size(t, "circular"),
        tricircular_required=required_neighborhood_set_size(t, "tricircular"),
    )


def minimum_size_for_circular(max_degree: int, t: int) -> int:
    """Return the smallest ``n`` for which Theorem 16's counting argument closes.

    The circular routing needs ``ceil(n / (d^2 + 1)) >= t + 2``; since
    ``t + 1 <= d`` it suffices that ``n >= (d + 1)(d^2 + 1)`` — the quantity
    returned here (the ``d^3 + d^2 + d + 1`` of the proof of Theorem 16).
    """
    if max_degree < 1:
        raise ValueError("max_degree must be positive")
    if t < 0:
        raise ValueError("t must be non-negative")
    d = max_degree
    return d ** 3 + d ** 2 + d + 1


def minimum_size_for_tricircular(max_degree: int, t: int) -> int:
    """Return the ``n`` threshold of Theorem 16(2): ``6d^3 + 3d^2 + 6d + 3``."""
    if max_degree < 1:
        raise ValueError("max_degree must be positive")
    if t < 0:
        raise ValueError("t must be non-negative")
    d = max_degree
    return 6 * d ** 3 + 3 * d ** 2 + 6 * d + 3

"""Unit tests for the JSONL result store (manifest, resume, truncation)."""

import json

import pytest

from repro.results import Column, ResultStore, ResultStoreError

COLUMNS = (
    Column("name", "str"),
    Column("value", "float"),
)

RUN = {"experiment": "unit", "seed": 7}


def make_store(path):
    return ResultStore.create(str(path), RUN, COLUMNS)


class TestCreate:
    def test_create_writes_manifest_first(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
        lines = path.read_text().splitlines()
        manifest = json.loads(lines[0])
        assert manifest["kind"] == "manifest"
        assert manifest["run"] == RUN
        assert manifest["columns"] == [["name", "str"], ["value", "float"]]
        row = json.loads(lines[1])
        assert row["kind"] == "row"
        assert row["key"] == "a"
        assert row["record"] == {"name": "a", "value": 1.0}

    def test_create_refuses_existing_file(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text("whatever\n")
        with pytest.raises(ResultStoreError, match="already exists"):
            make_store(path)

    def test_duplicate_keys_rejected(self, tmp_path):
        with make_store(tmp_path / "out.jsonl") as store:
            store.append("a", {"name": "a"})
            with pytest.raises(ResultStoreError, match="already recorded"):
                store.append("a", {"name": "a"})

    def test_infinity_round_trips(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": float("inf")})
        loaded = ResultStore.load(str(path), COLUMNS)
        assert loaded.get("a")["value"] == float("inf")


class TestOpenResume:
    def test_open_creates_missing_file(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        with ResultStore.open(str(path), RUN, COLUMNS) as store:
            assert len(store) == 0
        assert path.exists()

    def test_open_loads_existing_rows(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
            store.append("b", {"name": "b", "value": 2.0})
        with ResultStore.open(str(path), RUN, COLUMNS) as resumed:
            assert len(resumed) == 2
            assert "a" in resumed and "b" in resumed
            assert resumed.keys() == ("a", "b")
            assert resumed.get("b")["value"] == 2.0
            resumed.append("c", {"name": "c", "value": 3.0})
        assert len(ResultStore.load(str(path), COLUMNS)) == 3

    def test_open_rejects_different_run(self, tmp_path):
        path = tmp_path / "out.jsonl"
        make_store(path).close()
        with pytest.raises(ResultStoreError, match="different .*run"):
            ResultStore.open(str(path), {"experiment": "unit", "seed": 8}, COLUMNS)

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
            store.append("b", {"name": "b", "value": 2.0})
        # Simulate a kill mid-write: chop the final line in half.
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        path.write_text(lines[0] + lines[1] + lines[2][: len(lines[2]) // 2])
        with ResultStore.open(str(path), RUN, COLUMNS) as resumed:
            assert resumed.keys() == ("a",)
            resumed.append("b", {"name": "b", "value": 2.0})
        # The repaired file is byte-identical to the uninterrupted one.
        assert path.read_text() == text

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a"})
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n{broken\n" + lines[1] + "\n")
        with pytest.raises(ResultStoreError, match="corrupt"):
            ResultStore.open(str(path), RUN, COLUMNS)

    def test_missing_manifest_raises(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text('{"kind":"row","key":"a","record":{}}\n')
        with pytest.raises(ResultStoreError, match="manifest"):
            ResultStore.open(str(path), RUN, COLUMNS)

    def test_duplicate_stored_keys_raise(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a"})
        line = path.read_text().splitlines()[1]
        with open(path, "a") as handle:
            handle.write(line + "\n")
        with pytest.raises(ResultStoreError, match="twice"):
            ResultStore.open(str(path), RUN, COLUMNS)


class TestLoad:
    def test_load_reads_run_and_rows(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.5})
        loaded = ResultStore.load(str(path), COLUMNS)
        assert loaded.run == RUN
        assert loaded.frame.column("value") == (1.5,)

    def test_load_is_read_only(self, tmp_path):
        path = tmp_path / "out.jsonl"
        make_store(path).close()
        loaded = ResultStore.load(str(path), COLUMNS)
        with pytest.raises(ResultStoreError, match="read-only"):
            loaded.append("x", {"name": "x"})

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ResultStoreError, match="does not exist"):
            ResultStore.load(str(tmp_path / "nope.jsonl"), COLUMNS)

"""Unit tests for the JSONL result store (manifest, resume, truncation, merge)."""

import json

import pytest

from repro.results import (
    Column,
    ResultStore,
    ResultStoreError,
    merge_result_stores,
)

COLUMNS = (
    Column("name", "str"),
    Column("value", "float"),
)

RUN = {"experiment": "unit", "seed": 7}


def make_store(path):
    return ResultStore.create(str(path), RUN, COLUMNS)


class TestCreate:
    def test_create_writes_manifest_first(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
        lines = path.read_text().splitlines()
        manifest = json.loads(lines[0])
        assert manifest["kind"] == "manifest"
        assert manifest["run"] == RUN
        assert manifest["columns"] == [["name", "str"], ["value", "float"]]
        row = json.loads(lines[1])
        assert row["kind"] == "row"
        assert row["key"] == "a"
        assert row["record"] == {"name": "a", "value": 1.0}

    def test_create_refuses_existing_file(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text("whatever\n")
        with pytest.raises(ResultStoreError, match="already exists"):
            make_store(path)

    def test_duplicate_keys_rejected(self, tmp_path):
        with make_store(tmp_path / "out.jsonl") as store:
            store.append("a", {"name": "a"})
            with pytest.raises(ResultStoreError, match="already recorded"):
                store.append("a", {"name": "a"})

    def test_infinity_round_trips(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": float("inf")})
        loaded = ResultStore.load(str(path), COLUMNS)
        assert loaded.get("a")["value"] == float("inf")


class TestOpenResume:
    def test_open_creates_missing_file(self, tmp_path):
        path = tmp_path / "fresh.jsonl"
        with ResultStore.open(str(path), RUN, COLUMNS) as store:
            assert len(store) == 0
        assert path.exists()

    def test_open_loads_existing_rows(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
            store.append("b", {"name": "b", "value": 2.0})
        with ResultStore.open(str(path), RUN, COLUMNS) as resumed:
            assert len(resumed) == 2
            assert "a" in resumed and "b" in resumed
            assert resumed.keys() == ("a", "b")
            assert resumed.get("b")["value"] == 2.0
            resumed.append("c", {"name": "c", "value": 3.0})
        assert len(ResultStore.load(str(path), COLUMNS)) == 3

    def test_open_rejects_different_run(self, tmp_path):
        path = tmp_path / "out.jsonl"
        make_store(path).close()
        with pytest.raises(ResultStoreError, match="different .*run"):
            ResultStore.open(str(path), {"experiment": "unit", "seed": 8}, COLUMNS)

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
            store.append("b", {"name": "b", "value": 2.0})
        # Simulate a kill mid-write: chop the final line in half.
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        path.write_text(lines[0] + lines[1] + lines[2][: len(lines[2]) // 2])
        with ResultStore.open(str(path), RUN, COLUMNS) as resumed:
            assert resumed.keys() == ("a",)
            resumed.append("b", {"name": "b", "value": 2.0})
        # The repaired file is byte-identical to the uninterrupted one.
        assert path.read_text() == text

    def test_open_treats_zero_byte_file_as_fresh_store(self, tmp_path):
        # A writer killed before its first flush leaves an empty file; that
        # is a fresh store, not a parse error.
        path = tmp_path / "out.jsonl"
        path.write_text("")
        with ResultStore.open(str(path), RUN, COLUMNS) as store:
            assert len(store) == 0
            store.append("a", {"name": "a", "value": 1.0})
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "manifest"
        assert json.loads(lines[1])["key"] == "a"

    def test_open_treats_truncated_manifest_as_fresh_store(self, tmp_path):
        # Kill mid-manifest-write: the file holds a prefix of this run's
        # manifest line and no newline.  Resume starts fresh.
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
        full = path.read_text()
        manifest_line = full.splitlines()[0]
        path.write_text(manifest_line[: len(manifest_line) // 2])
        with ResultStore.open(str(path), RUN, COLUMNS) as resumed:
            assert len(resumed) == 0
            resumed.append("a", {"name": "a", "value": 1.0})
        assert path.read_text() == full

    def test_open_refuses_foreign_newline_less_file(self, tmp_path):
        # A newline-less file that is NOT a prefix of this run's manifest is
        # somebody else's data; refuse rather than clobber it.
        path = tmp_path / "out.jsonl"
        path.write_text("precious non-store content")
        with pytest.raises(ResultStoreError, match="no complete manifest"):
            ResultStore.open(str(path), RUN, COLUMNS)
        assert path.read_text() == "precious non-store content"

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a"})
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n{broken\n" + lines[1] + "\n")
        with pytest.raises(ResultStoreError, match="corrupt"):
            ResultStore.open(str(path), RUN, COLUMNS)

    def test_version_1_store_refused(self, tmp_path):
        # Format 1 stores were written under the position-hashed battery
        # seed scheme; resuming one would silently mix rows two schemes can
        # never reconcile, so the version gate must refuse it loudly.
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
        lines = path.read_text().splitlines(keepends=True)
        manifest = json.loads(lines[0])
        from repro.results.store import STORE_FORMAT_VERSION

        assert manifest["format"] == STORE_FORMAT_VERSION
        manifest["format"] = 1
        path.write_text(
            json.dumps(manifest, sort_keys=True, separators=(",", ":"))
            + "\n"
            + "".join(lines[1:])
        )
        with pytest.raises(ResultStoreError, match="has format 1"):
            ResultStore.open(str(path), RUN, COLUMNS)
        with pytest.raises(ResultStoreError, match="has format 1"):
            ResultStore.load(str(path), COLUMNS)

    def test_torn_tail_is_quarantined_not_destroyed(self, tmp_path):
        # Resume must preserve the torn bytes in the sidecar — evidence of
        # the crash — instead of silently truncating them away.
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
            store.append("b", {"name": "b", "value": 2.0})
        lines = path.read_text().splitlines(keepends=True)
        torn = lines[2][: len(lines[2]) // 2]
        path.write_text(lines[0] + lines[1] + torn)
        ResultStore.open(str(path), RUN, COLUMNS).close()
        sidecar = tmp_path / "out.jsonl.quarantine"
        assert sidecar.read_text() == torn + "\n"

    def test_repeated_crashes_accumulate_in_sidecar(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
        base = path.read_text()
        for fragment in ("first torn tail", "second torn tail"):
            path.write_text(base + fragment)
            ResultStore.open(str(path), RUN, COLUMNS).close()
        sidecar = tmp_path / "out.jsonl.quarantine"
        assert sidecar.read_text() == "first torn tail\nsecond torn tail\n"

    def test_clean_resume_writes_no_sidecar(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
        ResultStore.open(str(path), RUN, COLUMNS).close()
        assert not (tmp_path / "out.jsonl.quarantine").exists()

    def test_missing_manifest_raises(self, tmp_path):
        path = tmp_path / "out.jsonl"
        path.write_text('{"kind":"row","key":"a","record":{}}\n')
        with pytest.raises(ResultStoreError, match="manifest"):
            ResultStore.open(str(path), RUN, COLUMNS)

    def test_duplicate_stored_keys_raise(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a"})
        line = path.read_text().splitlines()[1]
        with open(path, "a") as handle:
            handle.write(line + "\n")
        with pytest.raises(ResultStoreError, match="twice"):
            ResultStore.open(str(path), RUN, COLUMNS)


class TestSalvage:
    def test_salvage_repairs_torn_tail_and_reports_sidecar(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
            store.append("b", {"name": "b", "value": 2.0})
        lines = path.read_text().splitlines(keepends=True)
        clean = lines[0] + lines[1]
        path.write_text(clean + lines[2][: len(lines[2]) // 2])
        store, sidecar = ResultStore.salvage(str(path), COLUMNS)
        assert sidecar == str(path) + ".quarantine"
        assert store.keys() == ("a",)
        assert path.read_text() == clean
        # The salvaged store resumes normally afterwards.
        with ResultStore.open(str(path), RUN, COLUMNS) as resumed:
            resumed.append("b", {"name": "b", "value": 2.0})
        assert path.read_text() == "".join(lines)

    def test_salvage_clean_store_returns_no_sidecar(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.0})
        before = path.read_text()
        store, sidecar = ResultStore.salvage(str(path), COLUMNS)
        assert sidecar is None
        assert store.keys() == ("a",)
        assert path.read_text() == before

    def test_salvage_is_read_only(self, tmp_path):
        path = tmp_path / "out.jsonl"
        make_store(path).close()
        store, _ = ResultStore.salvage(str(path), COLUMNS)
        with pytest.raises(ResultStoreError, match="read-only"):
            store.append("x", {"name": "x"})

    def test_salvage_missing_file(self, tmp_path):
        with pytest.raises(ResultStoreError, match="does not exist"):
            ResultStore.salvage(str(tmp_path / "nope.jsonl"), COLUMNS)


class TestFsyncPolicy:
    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(ResultStoreError, match="fsync policy"):
            ResultStore.create(
                str(tmp_path / "out.jsonl"), RUN, COLUMNS, fsync="sometimes"
            )

    def test_policy_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_FSYNC", "close")
        store = make_store(tmp_path / "out.jsonl")
        assert store.fsync == "close"
        store.close()

    def test_explicit_policy_overrides_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_FSYNC", "close")
        store = ResultStore.create(
            str(tmp_path / "out.jsonl"), RUN, COLUMNS, fsync="always"
        )
        assert store.fsync == "always"
        store.close()

    def test_always_policy_writes_rows_durably(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with ResultStore.create(str(path), RUN, COLUMNS, fsync="always") as store:
            store.append("a", {"name": "a", "value": 1.0})
            # Visible on disk before close: the line plus its newline.
            assert path.read_text().endswith('"value":1.0}}\n')


#: Schema exercising the (family, n, strategy) secondary index and merging.
GROUP_COLUMNS = (
    Column("family", "str"),
    Column("n", "int"),
    Column("strategy", "str"),
    Column("scheme", "str"),
    Column("fingerprint", "str"),
    Column("value", "float"),
)


def _group_store(path, rows, run=RUN):
    store = ResultStore.create(str(path), run, GROUP_COLUMNS)
    for key, record in rows:
        store.append(key, record)
    store.close()
    return store


class TestGroupIndex:
    def test_groups_key_family_n_strategy(self, tmp_path):
        store = _group_store(
            tmp_path / "out.jsonl",
            [
                ("a#0", {"family": "cycle", "n": 10, "strategy": "kernel",
                         "value": 1.0}),
                ("a#1", {"family": "cycle", "n": 10, "strategy": "kernel",
                         "value": 2.0}),
                ("b#0", {"family": "cycle", "n": 10, "strategy": "circular",
                         "value": 3.0}),
            ],
        )
        index = store.group_index()
        assert index[("cycle", 10, "kernel")] == ("a#0", "a#1")
        assert store.keys_for("cycle", 10, "circular") == ("b#0",)
        assert store.keys_for("cycle", 99, "kernel") == ()

    def test_auto_strategy_indexed_under_built_scheme(self, tmp_path):
        store = _group_store(
            tmp_path / "out.jsonl",
            [("a#0", {"family": "cycle", "n": 10, "strategy": "auto",
                      "scheme": "circular", "value": 1.0})],
        )
        assert store.keys_for("cycle", 10, "circular") == ("a#0",)

    def test_index_survives_reload(self, tmp_path):
        path = tmp_path / "out.jsonl"
        _group_store(
            path,
            [("a#0", {"family": "cycle", "n": 10, "strategy": "kernel",
                      "value": 1.0})],
        )
        loaded = ResultStore.load(str(path), GROUP_COLUMNS)
        assert loaded.keys_for("cycle", 10, "kernel") == ("a#0",)


class TestMerge:
    def _row(self, key, strategy, value, fingerprint="f" * 8):
        return (
            key,
            {"family": "cycle", "n": 10, "strategy": strategy,
             "fingerprint": fingerprint, "value": value},
        )

    def test_merge_unions_disjoint_stores(self, tmp_path):
        _group_store(
            tmp_path / "a.jsonl",
            [self._row("k#0", "kernel", 1.0)],
            run={"experiment": "unit", "seed": 7, "scenarios": ["k"]},
        )
        _group_store(
            tmp_path / "b.jsonl",
            [self._row("c#0", "circular", 2.0)],
            run={"experiment": "unit", "seed": 7, "scenarios": ["c"]},
        )
        merged = merge_result_stores(
            [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")],
            GROUP_COLUMNS,
        )
        assert merged.keys() == ("k#0", "c#0")
        assert merged.get("c#0")["value"] == 2.0
        # Manifests: scenarios union, agreeing keys kept.
        assert merged.run["scenarios"] == ["k", "c"]
        assert merged.run["seed"] == 7
        # The secondary index spans both stores.
        assert merged.keys_for("cycle", 10, "kernel") == ("k#0",)
        assert merged.keys_for("cycle", 10, "circular") == ("c#0",)

    def test_merge_dedupes_identical_records(self, tmp_path):
        for name in ("a.jsonl", "b.jsonl"):
            _group_store(tmp_path / name, [self._row("k#0", "kernel", 1.0)])
        merged = merge_result_stores(
            [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")],
            GROUP_COLUMNS,
        )
        assert merged.keys() == ("k#0",)

    def test_merge_conflicting_fingerprints_is_hard_error(self, tmp_path):
        _group_store(
            tmp_path / "a.jsonl",
            [self._row("k#0", "kernel", 1.0, fingerprint="aaaa")],
        )
        _group_store(
            tmp_path / "b.jsonl",
            [self._row("k#0", "kernel", 1.0, fingerprint="bbbb")],
        )
        with pytest.raises(ResultStoreError, match="different constructions"):
            merge_result_stores(
                [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")],
                GROUP_COLUMNS,
            )

    def test_merge_same_fingerprint_differing_values_is_error(self, tmp_path):
        _group_store(tmp_path / "a.jsonl", [self._row("k#0", "kernel", 1.0)])
        _group_store(tmp_path / "b.jsonl", [self._row("k#0", "kernel", 9.0)])
        with pytest.raises(ResultStoreError, match="differing values.*value"):
            merge_result_stores(
                [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")],
                GROUP_COLUMNS,
            )

    def test_merge_disagreeing_run_parameters_are_dropped(self, tmp_path):
        _group_store(
            tmp_path / "a.jsonl",
            [self._row("k#0", "kernel", 1.0)],
            run={"experiment": "unit", "seed": 7},
        )
        _group_store(
            tmp_path / "b.jsonl",
            [self._row("c#0", "circular", 2.0)],
            run={"experiment": "unit", "seed": 8},
        )
        merged = merge_result_stores(
            [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")],
            GROUP_COLUMNS,
        )
        assert merged.run["experiment"] == "unit"
        assert "seed" not in merged.run

    def test_merged_store_is_read_only(self, tmp_path):
        _group_store(tmp_path / "a.jsonl", [self._row("k#0", "kernel", 1.0)])
        merged = merge_result_stores([str(tmp_path / "a.jsonl")], GROUP_COLUMNS)
        with pytest.raises(ResultStoreError, match="read-only"):
            merged.append("x", {"family": "cycle"})

    def test_merge_no_stores_rejected(self):
        with pytest.raises(ResultStoreError, match="no result stores"):
            merge_result_stores([])


class TestLoad:
    def test_load_reads_run_and_rows(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with make_store(path) as store:
            store.append("a", {"name": "a", "value": 1.5})
        loaded = ResultStore.load(str(path), COLUMNS)
        assert loaded.run == RUN
        assert loaded.frame.column("value") == (1.5,)

    def test_load_is_read_only(self, tmp_path):
        path = tmp_path / "out.jsonl"
        make_store(path).close()
        loaded = ResultStore.load(str(path), COLUMNS)
        with pytest.raises(ResultStoreError, match="read-only"):
            loaded.append("x", {"name": "x"})

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ResultStoreError, match="does not exist"):
            ResultStore.load(str(tmp_path / "nope.jsonl"), COLUMNS)


class TestStreamingMerge:
    """Properties specific to the streaming (scan + seek-read) merge."""

    def _row(self, key, value, fingerprint="f" * 8):
        return (
            key,
            {"family": "cycle", "n": 10, "strategy": "kernel",
             "fingerprint": fingerprint, "value": value},
        )

    def test_merge_tolerates_torn_tail(self, tmp_path):
        # Merging a crashed (torn-tail) store keeps its complete rows, the
        # same forgiveness ResultStore.load extends.
        path = tmp_path / "a.jsonl"
        _group_store(path, [self._row("k#0", 1.0), self._row("k#1", 2.0)])
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0] + lines[1] + lines[2][: len(lines[2]) // 2])
        merged = merge_result_stores([str(path)], GROUP_COLUMNS)
        assert merged.keys() == ("k#0",)

    def test_merge_conflict_names_first_origin_store(self, tmp_path):
        # With three stores sharing a key, a conflict in the last one is
        # attributed to the *first* store that recorded the key.
        _group_store(tmp_path / "a.jsonl", [self._row("k#0", 1.0)])
        _group_store(tmp_path / "b.jsonl", [self._row("k#0", 1.0)])
        _group_store(tmp_path / "c.jsonl", [self._row("k#0", 9.0)])
        paths = [str(tmp_path / name) for name in ("a.jsonl", "b.jsonl", "c.jsonl")]
        with pytest.raises(ResultStoreError, match="a.jsonl.*c.jsonl"):
            merge_result_stores(paths, GROUP_COLUMNS)

    def test_merge_corrupt_middle_line_raises(self, tmp_path):
        path = tmp_path / "a.jsonl"
        _group_store(path, [self._row("k#0", 1.0)])
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n{broken\n" + lines[1] + "\n")
        with pytest.raises(ResultStoreError, match="corrupt"):
            merge_result_stores([str(path)], GROUP_COLUMNS)

    def test_merge_peak_memory_stays_below_input_payload(self, tmp_path):
        # The point of streaming: merging two fully-overlapping stores must
        # not materialise both as frames.  Peak allocation stays well under
        # the total input bytes (the historical implementation loaded every
        # store plus the merged copy — over twice the payload).
        import tracemalloc

        blob = "x" * 20_000
        rows = [
            (f"k#{i}", {"family": "cycle", "n": 10, "strategy": "kernel",
                        "fingerprint": "f" * 8, "scheme": blob + str(i)})
            for i in range(80)
        ]
        for name in ("a.jsonl", "b.jsonl"):
            _group_store(tmp_path / name, rows)
        paths = [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]
        total_bytes = sum(__import__("os").path.getsize(p) for p in paths)
        tracemalloc.start()
        merged = merge_result_stores(paths, GROUP_COLUMNS)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(merged) == 80
        assert peak < 0.75 * total_bytes

"""Unit tests for the columnar ResultFrame."""

import pytest

from repro.results import Column, ResultFrame, result_frame
from repro.results.records import RESULT_COLUMNS, scenario_family

COLUMNS = (
    Column("family", "str"),
    Column("n", "int"),
    Column("t", "int"),
    Column("diam", "float"),
    Column("ok", "bool"),
    Column("extra", "json"),
)


def make_frame(rows=()):
    frame = ResultFrame(COLUMNS)
    frame.extend(rows)
    return frame


class TestFrameBasics:
    def test_empty_frame(self):
        frame = make_frame()
        assert len(frame) == 0
        assert frame.rows() == []
        assert frame.column_names == ("family", "n", "t", "diam", "ok", "extra")

    def test_append_fills_missing_with_none(self):
        frame = make_frame()
        index = frame.append({"family": "cycle", "n": 12})
        assert index == 0
        row = frame.row(0)
        assert row["family"] == "cycle"
        assert row["t"] is None
        assert row["extra"] is None

    def test_append_rejects_unknown_columns(self):
        frame = make_frame()
        with pytest.raises(ValueError, match="not in the frame"):
            frame.append({"family": "cycle", "bogus": 1})

    def test_int_column_coerces_and_validates(self):
        frame = make_frame()
        frame.append({"n": 5})
        assert frame.column("n") == (5,)
        with pytest.raises(TypeError):
            frame.append({"n": "five"})
        with pytest.raises(TypeError):
            frame.append({"n": 5.0})
        with pytest.raises(TypeError):
            frame.append({"n": True})  # bools are not ints here

    def test_float_column_accepts_ints_and_inf(self):
        frame = make_frame()
        frame.append({"diam": 3})
        frame.append({"diam": float("inf")})
        assert frame.column("diam") == (3.0, float("inf"))
        with pytest.raises(TypeError):
            frame.append({"diam": "3"})

    def test_str_and_bool_columns(self):
        frame = make_frame()
        frame.append({"family": "torus", "ok": True})
        with pytest.raises(TypeError):
            frame.append({"family": 3})
        with pytest.raises(TypeError):
            frame.append({"ok": 1})

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ValueError):
            ResultFrame((Column("a", "int"), Column("a", "str")))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Column("x", "complex")

    def test_unknown_column_read_raises(self):
        frame = make_frame()
        with pytest.raises(KeyError):
            frame.column("bogus")

    def test_rows_preserve_append_order(self):
        frame = make_frame(
            [{"family": "a", "n": 1}, {"family": "b", "n": 2}]
        )
        assert [row["family"] for row in frame] == ["a", "b"]


class TestRelationalHelpers:
    def setup_method(self):
        self.frame = make_frame(
            [
                {"family": "hypercube", "n": 8, "t": 1, "diam": 3.0},
                {"family": "hypercube", "n": 8, "t": 2, "diam": 4.0},
                {"family": "hypercube", "n": 16, "t": 1, "diam": 4.0},
                {"family": "torus", "n": 16, "t": 1, "diam": 6.0},
                {"family": "torus", "n": 16, "t": 1, "diam": 5.0},
            ]
        )

    def test_where_equality(self):
        sub = self.frame.where(family="torus")
        assert len(sub) == 2
        assert set(sub.column("diam")) == {5.0, 6.0}

    def test_where_predicate_and_equality_combined(self):
        sub = self.frame.where(lambda row: row["diam"] >= 4, family="hypercube")
        assert len(sub) == 2

    def test_where_unknown_column(self):
        with pytest.raises(KeyError):
            self.frame.where(bogus=1)

    def test_distinct(self):
        assert self.frame.distinct("family") == [("hypercube",), ("torus",)]
        assert self.frame.distinct("family", "n") == [
            ("hypercube", 8),
            ("hypercube", 16),
            ("torus", 16),
        ]

    def test_group_by(self):
        groups = dict(self.frame.group_by("family"))
        assert len(groups[("hypercube",)]) == 3
        assert len(groups[("torus",)]) == 2

    def test_aggregate_named_functions(self):
        rows = self.frame.aggregate(
            ["family"], worst=("diam", "max"), count=("diam", "count")
        )
        assert rows == [
            {"family": "hypercube", "worst": 4.0, "count": 3},
            {"family": "torus", "worst": 6.0, "count": 2},
        ]

    def test_aggregate_callable(self):
        rows = self.frame.aggregate(["family"], span=("diam", lambda v: max(v) - min(v)))
        assert rows[0]["span"] == 1.0

    def test_aggregate_unknown_aggregation(self):
        with pytest.raises(ValueError):
            self.frame.aggregate(["family"], x=("diam", "median"))

    def test_aggregate_skips_none_values(self):
        frame = make_frame([{"family": "a", "diam": None}, {"family": "a", "diam": 2.0}])
        rows = frame.aggregate(["family"], worst=("diam", "max"))
        assert rows == [{"family": "a", "worst": 2.0}]

    def test_pivot_shape(self):
        rows, columns = self.frame.pivot(("family", "n"), "t", "diam", "max")
        assert columns == [1, 2]
        assert rows[0] == {"family": "hypercube", "n": 8, 1: 3.0, 2: 4.0}
        # torus has no t=2 rows -> empty cell.
        torus = [row for row in rows if row["family"] == "torus"][0]
        assert torus[2] is None
        assert torus[1] == 6.0

    def test_pivot_mixed_type_column_values_sort_without_crashing(self):
        # A json column may hold ints alongside strings (e.g. t values next
        # to strategy names); the column sort must not compare int < str.
        frame = make_frame(
            [
                {"family": "a", "extra": 2, "diam": 1.0},
                {"family": "a", "extra": "kernel", "diam": 2.0},
                {"family": "a", "extra": 1, "diam": 3.0},
                {"family": "a", "extra": None, "diam": 4.0},
            ]
        )
        rows, columns = frame.pivot(("family",), "extra", "diam", "max")
        # Numbers first (numeric order), then strings, None last.
        assert columns == [1, 2, "kernel", None]
        assert rows[0][1] == 3.0 and rows[0]["kernel"] == 2.0

    def test_pivot_multiple_aggregations_fold_cells_into_tuples(self):
        rows, _ = self.frame.pivot(("family",), "t", "diam", ("mean", "max"))
        torus = [row for row in rows if row["family"] == "torus"][0]
        assert torus[1] == (5.5, 6.0)
        assert torus[2] is None  # empty cells stay None, not (None, None)

    def test_pivot_composite_columns_produce_tuple_values(self):
        rows, columns = self.frame.pivot(("family",), ("n", "t"), "diam", "max")
        assert columns == [(8, 1), (8, 2), (16, 1)]
        hyper = [row for row in rows if row["family"] == "hypercube"][0]
        assert hyper[(8, 1)] == 3.0
        assert hyper[(16, 1)] == 4.0

    def test_pivot_unknown_column_raises(self):
        with pytest.raises(KeyError):
            self.frame.pivot(("family",), "bogus", "diam")
        with pytest.raises(KeyError):
            self.frame.pivot(("family",), ("t", "bogus"), "diam")

    def test_pivot_unknown_aggregation_raises(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            self.frame.pivot(("family",), "t", "diam", "median")
        with pytest.raises(ValueError, match="unknown aggregation"):
            self.frame.pivot(("family",), "t", "diam", ("max", "median"))


class TestUnifiedSchema:
    def test_result_frame_uses_shared_columns(self):
        frame = result_frame()
        assert frame.columns == RESULT_COLUMNS

    def test_scenario_family(self):
        assert scenario_family("hypercube:d=3/kernel/sizes:1") == "hypercube"
        assert scenario_family("petersen/kernel/sizes:1") == "petersen"
        assert scenario_family("") is None

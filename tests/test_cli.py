"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import GRAPH_FACTORIES, build_parser, main, parse_graph_spec
from repro.serialization import construction_from_dict, load_json


class TestGraphSpecParsing:
    def test_cycle_spec(self):
        graph = parse_graph_spec("cycle:10")
        assert graph.number_of_nodes() == 10

    def test_circulant_spec_with_offsets(self):
        graph = parse_graph_spec("circulant:12,1,3")
        assert graph.degree(0) == 4

    def test_grid_spec(self):
        graph = parse_graph_spec("grid:3,4")
        assert graph.number_of_nodes() == 12

    def test_gnp_spec(self):
        graph = parse_graph_spec("gnp:20,0.2,3")
        assert graph.number_of_nodes() == 20

    def test_flower_and_two_trees(self):
        assert parse_graph_spec("flower:1,5").number_of_nodes() == 5 * 3 + 5
        assert parse_graph_spec("two-trees:1").number_of_nodes() > 0

    def test_defaults_when_args_missing(self):
        graph = parse_graph_spec("hypercube")
        assert graph.number_of_nodes() == 8

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            parse_graph_spec("klein-bottle:3")

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            parse_graph_spec("gnp:20,not-a-float")

    def test_every_registered_family_builds(self):
        for name in GRAPH_FACTORIES:
            graph = parse_graph_spec(name)
            assert graph.number_of_nodes() > 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "--graph", "cycle:10"])
        assert args.strategy == "auto"
        assert args.t is None


class TestCommands:
    def test_graphs_command(self, capsys):
        assert main(["graphs"]) == 0
        output = capsys.readouterr().out
        assert "cycle" in output
        assert "hypercube" in output

    def test_build_command(self, capsys):
        assert main(["build", "--graph", "cycle:12", "--strategy", "kernel"]) == 0
        output = capsys.readouterr().out
        assert "scheme" in output
        assert "kernel" in output

    def test_build_with_output(self, tmp_path, capsys):
        target = str(tmp_path / "routing.json")
        code = main(["build", "--graph", "cycle:10", "--strategy", "circular", "--output", target])
        assert code == 0
        document = load_json(target)
        restored = construction_from_dict(document)
        assert restored.scheme == "circular"

    def test_verify_command_success(self, capsys):
        assert main(["verify", "--graph", "cycle:12", "--strategy", "circular"]) == 0
        assert "holds" in capsys.readouterr().out

    def test_stats_command(self, capsys):
        assert main(["stats", "--graph", "circulant:10,1,2", "--strategy", "kernel"]) == 0
        output = capsys.readouterr().out
        assert "mean_len" in output
        assert "concentrator load share" in output

    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "--graph", "cycle:12",
                "--strategy", "circular",
                "--faults", "3",
                "--messages", "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Simulated deliveries" in output
        assert "delivered" in output

    def test_simulate_unknown_fault_node(self, capsys):
        code = main(
            ["simulate", "--graph", "cycle:12", "--faults", "99", "--messages", "1"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_campaign_command(self, capsys):
        code = main(
            [
                "campaign",
                "--graph", "circulant:12,1,2",
                "--sizes", "0,1,2",
                "--samples", "10",
                "--seed", "0",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Fault campaigns" in output
        assert "mean_diam" in output

    def test_campaign_command_worker_count_invariance(self, capsys):
        argv = [
            "campaign",
            "--graph", "circulant:12,1,2",
            "--sizes", "1,2",
            "--samples", "12",
            "--seed", "5",
        ]
        assert main(argv) == 0
        sequential = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # The rows must be identical; only the caption mentions the workers.
        assert sequential.replace("workers=1", "workers=2") == parallel

    def test_campaign_command_rejects_bad_sizes(self, capsys):
        code = main(["campaign", "--graph", "cycle:12", "--sizes", "-1"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_error_exit_code_on_bad_graph(self, capsys):
        assert main(["build", "--graph", "nonsense:1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_error_on_inapplicable_strategy(self, capsys):
        # The hypercube lacks the two-trees property; requesting bipolar fails cleanly.
        code = main(["build", "--graph", "hypercube:3", "--strategy", "bipolar-uni"])
        assert code == 2


class TestScenarioCampaignFlags:
    def test_scenario_rejects_graph_mode_flags(self, capsys):
        for flags in (
            ["--strategy", "kernel"],
            ["--t", "2"],
            ["--sizes", "4,5"],
        ):
            code = main(
                ["campaign", "--scenario", "petersen/kernel/sizes:1", *flags]
            )
            assert code == 2
            assert "has no effect with --scenario" in capsys.readouterr().err

    def test_scenario_and_graph_are_exclusive(self, capsys):
        code = main(
            ["campaign", "--scenario", "petersen", "--graph", "cycle:12"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_scenario_campaign_runs(self, capsys):
        code = main(
            [
                "campaign",
                "--scenario", "hypercube:d=3/kernel/sizes:1",
                "--samples", "5",
                "--seed", "3",
                "--bound", "6",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "hypercube:d=3/kernel/sizes:1" in output
        assert "fingerprint" in output

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "fault model" in output
        assert "hypercube" in output

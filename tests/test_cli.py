"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import GRAPH_FACTORIES, build_parser, main, parse_graph_spec
from repro.serialization import construction_from_dict, load_json


class TestGraphSpecParsing:
    def test_cycle_spec(self):
        graph = parse_graph_spec("cycle:10")
        assert graph.number_of_nodes() == 10

    def test_circulant_spec_with_offsets(self):
        graph = parse_graph_spec("circulant:12,1,3")
        assert graph.degree(0) == 4

    def test_grid_spec(self):
        graph = parse_graph_spec("grid:3,4")
        assert graph.number_of_nodes() == 12

    def test_gnp_spec(self):
        graph = parse_graph_spec("gnp:20,0.2,3")
        assert graph.number_of_nodes() == 20

    def test_flower_and_two_trees(self):
        assert parse_graph_spec("flower:1,5").number_of_nodes() == 5 * 3 + 5
        assert parse_graph_spec("two-trees:1").number_of_nodes() > 0

    def test_defaults_when_args_missing(self):
        graph = parse_graph_spec("hypercube")
        assert graph.number_of_nodes() == 8

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            parse_graph_spec("klein-bottle:3")

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            parse_graph_spec("gnp:20,not-a-float")

    def test_every_registered_family_builds(self):
        for name in GRAPH_FACTORIES:
            graph = parse_graph_spec(name)
            assert graph.number_of_nodes() > 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_defaults(self):
        args = build_parser().parse_args(["build", "--graph", "cycle:10"])
        assert args.strategy == "auto"
        assert args.t is None


class TestCommands:
    def test_graphs_command(self, capsys):
        assert main(["graphs"]) == 0
        output = capsys.readouterr().out
        assert "cycle" in output
        assert "hypercube" in output

    def test_build_command(self, capsys):
        assert main(["build", "--graph", "cycle:12", "--strategy", "kernel"]) == 0
        output = capsys.readouterr().out
        assert "scheme" in output
        assert "kernel" in output

    def test_build_with_output(self, tmp_path, capsys):
        target = str(tmp_path / "routing.json")
        code = main(["build", "--graph", "cycle:10", "--strategy", "circular", "--output", target])
        assert code == 0
        document = load_json(target)
        restored = construction_from_dict(document)
        assert restored.scheme == "circular"

    def test_verify_command_success(self, capsys):
        assert main(["verify", "--graph", "cycle:12", "--strategy", "circular"]) == 0
        assert "holds" in capsys.readouterr().out

    def test_stats_command(self, capsys):
        assert main(["stats", "--graph", "circulant:10,1,2", "--strategy", "kernel"]) == 0
        output = capsys.readouterr().out
        assert "mean_len" in output
        assert "concentrator load share" in output

    def test_simulate_command(self, capsys):
        code = main(
            [
                "simulate",
                "--graph", "cycle:12",
                "--strategy", "circular",
                "--faults", "3",
                "--messages", "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Simulated deliveries" in output
        assert "delivered" in output

    def test_simulate_unknown_fault_node(self, capsys):
        code = main(
            ["simulate", "--graph", "cycle:12", "--faults", "99", "--messages", "1"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_campaign_command(self, capsys):
        code = main(
            [
                "campaign",
                "--graph", "circulant:12,1,2",
                "--sizes", "0,1,2",
                "--samples", "10",
                "--seed", "0",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Fault campaigns" in output
        assert "mean_diam" in output

    def test_campaign_command_worker_count_invariance(self, capsys):
        argv = [
            "campaign",
            "--graph", "circulant:12,1,2",
            "--sizes", "1,2",
            "--samples", "12",
            "--seed", "5",
        ]
        assert main(argv) == 0
        sequential = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # The rows must be identical; only the caption mentions the workers.
        assert sequential.replace("workers=1", "workers=2") == parallel

    def test_campaign_command_rejects_bad_sizes(self, capsys):
        code = main(["campaign", "--graph", "cycle:12", "--sizes", "-1"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_error_exit_code_on_bad_graph(self, capsys):
        assert main(["build", "--graph", "nonsense:1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_error_on_inapplicable_strategy(self, capsys):
        # The hypercube lacks the two-trees property; requesting bipolar fails cleanly.
        code = main(["build", "--graph", "hypercube:3", "--strategy", "bipolar-uni"])
        assert code == 2


class TestScenarioCampaignFlags:
    def test_scenario_rejects_graph_mode_flags(self, capsys):
        for flags in (
            ["--strategy", "kernel"],
            ["--t", "2"],
            ["--sizes", "4,5"],
        ):
            code = main(
                ["campaign", "--scenario", "petersen/kernel/sizes:1", *flags]
            )
            assert code == 2
            assert "has no effect with --scenario" in capsys.readouterr().err

    def test_scenario_and_graph_are_exclusive(self, capsys):
        code = main(
            ["campaign", "--scenario", "petersen", "--graph", "cycle:12"]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_scenario_campaign_runs(self, capsys):
        code = main(
            [
                "campaign",
                "--scenario", "hypercube:d=3/kernel/sizes:1",
                "--samples", "5",
                "--seed", "3",
                "--bound", "6",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "hypercube:d=3/kernel/sizes:1" in output
        assert "fingerprint" in output

    def test_scenarios_command(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        assert "fault model" in output
        assert "hypercube" in output

    def test_scenarios_listing_sorted_and_unique(self, capsys):
        assert main(["scenarios"]) == 0
        table = capsys.readouterr().out.split("\n\n")[0]
        families = [line.split()[0] for line in table.splitlines()[3:]]
        assert families == sorted(families)
        assert len(families) == len(set(families))
        assert len(families) == 25  # every registered family listed once

    def test_scenarios_family_filter(self, capsys):
        assert main(["scenarios", "--family", "hyper"]) == 0
        output = capsys.readouterr().out
        assert "hypercube" in output
        # Non-matching families are filtered out of the table.
        table = output.split("\nsegments")[0]
        assert "torus" not in table

    def test_scenarios_family_filter_no_match(self, capsys):
        assert main(["scenarios", "--family", "klein-bottle"]) == 2
        assert "no graph family matches" in capsys.readouterr().err


class TestGridCommand:
    GRID = "hypercube:d=3..4/kernel/t=1..2/sizes:1-2"

    def test_grid_runs_and_prints_scaling_report(self, capsys):
        assert main(["grid", self.GRID, "--samples", "4", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "Grid sweep" in output
        assert "4 scenarios" in output
        assert "# Scaling report" in output
        assert "| family | n | t=1 | t=2 |" in output

    def test_grid_store_resume_matches_uninterrupted_run(self, tmp_path, capsys):
        store = str(tmp_path / "rows.jsonl")
        argv = [
            "grid", self.GRID, "--samples", "4", "--seed", "7", "--store", store,
        ]
        assert main(argv) == 0
        capsys.readouterr()
        full_text = open(store).read()
        # Simulate a kill: keep the manifest, two finished rows and half of a
        # third, then resume.
        lines = full_text.splitlines(keepends=True)
        with open(store, "w") as handle:
            handle.write("".join(lines[:3]) + lines[3][: len(lines[3]) // 2])
        assert main(argv + ["--resume"]) == 0
        resumed_output = capsys.readouterr().out
        assert "resumed 2 stored rows" in resumed_output
        assert open(store).read() == full_text

    def test_grid_refuses_existing_store_without_resume(self, tmp_path, capsys):
        store = str(tmp_path / "rows.jsonl")
        argv = ["grid", "hypercube:d=3/kernel/sizes:1", "--samples", "2",
                "--store", store]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 2
        assert "already exists" in capsys.readouterr().err

    def test_grid_resume_requires_store(self, capsys):
        assert main(["grid", "hypercube:d=3/kernel/sizes:1", "--resume"]) == 2
        assert "--resume needs --store" in capsys.readouterr().err

    def test_grid_report_file_and_csv(self, tmp_path, capsys):
        report = str(tmp_path / "report.csv")
        code = main(
            [
                "grid", "hypercube:d=3/kernel/sizes:1", "--samples", "2",
                "--report", report, "--format", "csv",
            ]
        )
        assert code == 0
        text = open(report).read()
        assert text.splitlines()[0].startswith("family,n,t=")

    def test_grid_bound_violation_exit_code(self, capsys):
        # A diameter bound of 1 is hopeless for a hypercube: every campaign
        # violates it, so the sweep exits 1 and names the violations.
        code = main(
            ["grid", "hypercube:d=3/kernel/sizes:1", "--samples", "2",
             "--bound", "1"]
        )
        assert code == 1
        assert "bound violated" in capsys.readouterr().out

    def test_grid_bad_spec(self, capsys):
        assert main(["grid", "hypercube:d=5..3/kernel"]) == 2
        assert "reversed" in capsys.readouterr().err

    def test_grid_report_dash_prints_clean_report_to_stdout(self, capsys):
        code = main(
            ["grid", "hypercube:d=3/kernel/sizes:1", "--samples", "2",
             "--report", "-"]
        )
        assert code == 0
        captured = capsys.readouterr()
        # stdout is the report alone (pipeable / golden-diffable); the
        # human-oriented grid table moves to stderr.
        assert captured.out.startswith("# Scaling report")
        assert "Grid sweep" not in captured.out
        assert "Grid sweep" in captured.err


class TestStrategyComparisonGrid:
    GRID = "cycle:n=10..11/kernel|circular/t=1/sizes:1"

    def test_strategy_grid_emits_comparison_table(self, capsys):
        assert main(["grid", self.GRID, "--samples", "4", "--seed", "7"]) == 0
        output = capsys.readouterr().out
        assert "4 scenarios" in output
        assert "| family | n | circular t=1 | kernel t=1 |" in output
        assert "column groups = strategy" in output

    def test_strategy_grid_skips_inapplicable_combos(self, capsys):
        # circular does not apply to hypercubes below d=5: those cells stay
        # empty and the sweep reports what it skipped instead of dying.
        code = main(
            ["grid", "hypercube:d=3..4/kernel|circular/t=1/sizes:1",
             "--samples", "2", "--seed", "7"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "skipped (strategy not applicable)" in output
        assert "hypercube:d=3/circular" in output
        # Only one strategy survived, so the table keeps the plain layout.
        assert "| family | n | t=1 |" in output

    def test_single_strategy_grid_still_fails_loudly(self, capsys):
        assert main(
            ["grid", "hypercube:d=3/circular/sizes:1", "--samples", "2"]
        ) == 2
        assert "neighbourhood set" in capsys.readouterr().err

    def test_skip_eligibility_is_per_grid_in_mixed_invocations(self, capsys):
        # A strategy-set grid alongside an explicit single-strategy grid:
        # only the former may drop inapplicable scenarios — the explicit
        # request still fails loudly.
        code = main(
            ["grid", "cycle:n=10/kernel|circular/t=1/sizes:1",
             "hypercube:d=3/circular/sizes:1", "--samples", "2"]
        )
        assert code == 2
        assert "neighbourhood set" in capsys.readouterr().err

    def test_skip_eligibility_is_positional_for_overlapping_scenarios(self, capsys):
        # Even when the strategy-set grid sweeps the IDENTICAL scenario,
        # the explicitly requested copy keeps its fail-loudly contract.
        code = main(
            ["grid", "hypercube:d=3..4/kernel|circular/t=1/sizes:1",
             "hypercube:d=3/circular/t=1/sizes:1", "--samples", "2"]
        )
        assert code == 2
        assert "neighbourhood set" in capsys.readouterr().err

    def test_skip_inapplicable_flag_opts_single_strategy_grids_in(self, capsys):
        code = main(
            ["grid", "hypercube:d=3..4/circular/t=1/sizes:1", "--samples", "2",
             "--skip-inapplicable"]
        )
        assert code == 0
        assert "skipped (strategy not applicable)" in capsys.readouterr().out

    def test_split_stores_merge_to_the_combined_table(self, tmp_path, capsys):
        """The acceptance path: one grid run whole vs. split per strategy
        into two stores and merged by `repro report a b` — identical table."""
        combined = str(tmp_path / "combined.jsonl")
        assert main(
            ["grid", self.GRID, "--samples", "4", "--seed", "7",
             "--store", combined]
        ) == 0
        store_a = str(tmp_path / "kernel.jsonl")
        store_b = str(tmp_path / "circular.jsonl")
        assert main(
            ["grid", "cycle:n=10..11/kernel/t=1/sizes:1", "--samples", "4",
             "--seed", "7", "--store", store_a]
        ) == 0
        assert main(
            ["grid", "cycle:n=10..11/circular/t=1/sizes:1", "--samples", "4",
             "--seed", "7", "--store", store_b]
        ) == 0
        capsys.readouterr()
        single_csv = str(tmp_path / "single.csv")
        merged_csv = str(tmp_path / "merged.csv")
        assert main(["report", combined, "--format", "csv",
                     "--output", single_csv]) == 0
        assert main(["report", store_a, store_b, "--format", "csv",
                     "--output", merged_csv]) == 0
        captured = capsys.readouterr()
        # The merge diagnostic goes to stderr so piped stdout stays clean.
        assert "merged 2 stores" in captured.err
        assert "merged 2 stores" not in captured.out
        assert open(merged_csv).read() == open(single_csv).read()
        assert "circular t=1" in open(merged_csv).read()

    def test_merged_report_stdout_stays_clean_csv(self, tmp_path, capsys):
        store_a = str(tmp_path / "a.jsonl")
        store_b = str(tmp_path / "b.jsonl")
        assert main(
            ["grid", "cycle:n=10/kernel/t=1/sizes:1", "--samples", "2",
             "--seed", "7", "--store", store_a]
        ) == 0
        assert main(
            ["grid", "cycle:n=10/circular/t=1/sizes:1", "--samples", "2",
             "--seed", "7", "--store", store_b]
        ) == 0
        capsys.readouterr()
        assert main(["report", store_a, store_b, "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("family,n,")


class TestReportCommand:
    def test_report_renders_stored_run(self, tmp_path, capsys):
        store = str(tmp_path / "rows.jsonl")
        assert main(
            ["grid", "hypercube:d=3..4/kernel/sizes:1", "--samples", "2",
             "--store", store]
        ) == 0
        capsys.readouterr()
        assert main(["report", "--store", store]) == 0
        output = capsys.readouterr().out
        assert "# Scaling report" in output
        assert "hypercube:d=3/kernel/sizes:1" in output
        assert "| hypercube | 8 |" in output
        assert "| hypercube | 16 |" in output

    def test_report_csv_to_file(self, tmp_path, capsys):
        store = str(tmp_path / "rows.jsonl")
        main(["grid", "hypercube:d=3/kernel/sizes:1", "--samples", "2",
              "--store", store])
        capsys.readouterr()
        out = str(tmp_path / "table.csv")
        assert main(["report", "--store", store, "--format", "csv",
                     "--output", out]) == 0
        assert open(out).read().startswith("family,n,")

    def test_report_positional_store_path(self, tmp_path, capsys):
        store = str(tmp_path / "rows.jsonl")
        main(["grid", "hypercube:d=3/kernel/sizes:1", "--samples", "2",
              "--store", store])
        capsys.readouterr()
        assert main(["report", store]) == 0
        assert "# Scaling report" in capsys.readouterr().out

    def test_report_conflicting_stores_error(self, tmp_path, capsys):
        # The same grid run under two different seeds records the same keys
        # against different batteries: merging them must be refused.
        store_a = str(tmp_path / "a.jsonl")
        store_b = str(tmp_path / "b.jsonl")
        argv = ["grid", "hypercube:d=3/kernel/sizes:1", "--samples", "2"]
        assert main(argv + ["--seed", "1", "--store", store_a]) == 0
        assert main(argv + ["--seed", "2", "--store", store_b]) == 0
        capsys.readouterr()
        assert main(["report", store_a, store_b]) == 2
        assert "cannot be merged" in capsys.readouterr().err

    def test_report_requires_a_store(self, capsys):
        assert main(["report"]) == 2
        assert "no result store" in capsys.readouterr().err

    def test_report_missing_store(self, capsys):
        assert main(["report", "--store", "/nonexistent/rows.jsonl"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestServingCommands:
    def _compiled(self, tmp_path, capsys):
        target = str(tmp_path / "routing.repart")
        code = main(
            ["compile", "--graph", "circulant:12,1,2", "--strategy", "kernel",
             "--output", target]
        )
        assert code == 0
        output = capsys.readouterr().out
        return target, output

    def test_compile_writes_artifact(self, tmp_path, capsys):
        target, output = self._compiled(tmp_path, capsys)
        assert "fingerprint" in output
        from repro.serving import load_artifact

        artifact = load_artifact(target)
        assert artifact.n == 12
        assert artifact.scheme == "kernel"

    def test_serve_probe_from_artifact(self, tmp_path, capsys):
        target, _ = self._compiled(tmp_path, capsys)
        assert main(["serve", "--artifact", target, "--probe"]) == 0
        output = capsys.readouterr().out
        assert "serving on" in output
        assert "probe ok" in output

    def test_serve_probe_compiling_in_process(self, capsys):
        code = main(
            ["serve", "--graph", "circulant:10,1,2", "--strategy", "kernel",
             "--probe"]
        )
        assert code == 0
        assert "probe ok" in capsys.readouterr().out

    def test_serve_refuses_fingerprint_mismatch(self, tmp_path, capsys):
        target, _ = self._compiled(tmp_path, capsys)
        code = main(
            ["serve", "--artifact", target,
             "--expect-fingerprint", "0" * 64, "--probe"]
        )
        assert code == 2
        assert "fingerprint" in capsys.readouterr().err

    def test_serve_refuses_artifact_for_different_graph(self, tmp_path, capsys):
        # Rebuilding from --graph pins the expected fingerprint: serving a
        # stale artifact against a changed network must fail loudly.
        target, _ = self._compiled(tmp_path, capsys)
        code = main(
            ["serve", "--artifact", target, "--graph", "cycle:8",
             "--strategy", "kernel", "--probe"]
        )
        assert code == 2
        assert "fingerprint" in capsys.readouterr().err

    def test_serve_accepts_matching_expectation(self, tmp_path, capsys):
        target, output = self._compiled(tmp_path, capsys)
        fingerprint = next(
            line.split()[-1]
            for line in output.splitlines()
            if line.startswith("fingerprint:")
        )
        code = main(
            ["serve", "--artifact", target,
             "--expect-fingerprint", fingerprint, "--probe"]
        )
        assert code == 0
        assert "probe ok" in capsys.readouterr().out

    def test_serve_without_graph_or_artifact(self, capsys):
        assert main(["serve", "--probe"]) == 2
        assert "error" in capsys.readouterr().err


class TestTrafficCommand:
    SPEC = "circulant:n=16,offsets=1+2/kernel"

    def test_traffic_table_output(self, capsys):
        code = main(
            ["traffic", self.SPEC,
             "--workload", "uniform", "--messages", "40",
             "--duration", "30", "--seed", "5"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Traffic [uniform:messages=40,duration=30]" in output
        for column in ("throughput", "p99_latency", "drop_rate", "max_queue_depth"):
            assert column in output
        assert self.SPEC in output

    def test_traffic_store_holds_traffic_records(self, tmp_path, capsys):
        target = str(tmp_path / "traffic.jsonl")
        code = main(
            ["traffic", self.SPEC,
             "--messages", "20", "--duration", "10",
             "--fail", "4:3", "--repair", "8:3",
             "--store", target]
        )
        assert code == 0
        assert "result store" in capsys.readouterr().out
        lines = [
            json.loads(line)
            for line in open(target, encoding="utf-8")
            if line.strip()
        ]
        header, rows = lines[0], lines[1:]
        assert header["run"]["experiment"] == "traffic"
        assert header["run"]["faults"] == ["fail@4:3", "repair@8:3"]
        assert len(rows) == 1
        assert rows[0]["record"]["kind"] == "traffic"
        assert rows[0]["record"]["injected"] == 20

    def test_traffic_refuses_fault_model_segment(self, capsys):
        # Timed --fail/--repair schedules replace the static fault-model
        # segment; specs carrying one must be rejected, not silently ignored.
        code = main(
            ["traffic", self.SPEC + "/sizes:1", "--messages", "5"]
        )
        assert code == 2
        assert "fault-model segment" in capsys.readouterr().err

    def test_traffic_buffer_requires_capacity(self, capsys):
        code = main(
            ["traffic", self.SPEC, "--messages", "5", "--buffer", "4"]
        )
        assert code == 2
        assert "--buffer needs --capacity" in capsys.readouterr().err

    def test_traffic_congested_link_flags(self, capsys):
        code = main(
            ["traffic", self.SPEC,
             "--workload", "hotspot", "--messages", "80",
             "--duration", "20", "--capacity", "1", "--buffer", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "link=capacity=1,buffer=2" in output

    def test_traffic_bad_fault_spec(self, capsys):
        code = main(
            ["traffic", self.SPEC, "--messages", "5", "--fail", "nope"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

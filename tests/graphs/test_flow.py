"""Unit tests for the Dinic max-flow engine."""

import pytest

from repro.graphs.flow import FlowNetwork, unit_max_flow


class TestFlowNetworkBasics:
    def test_add_arc_and_capacity(self):
        network = FlowNetwork()
        network.add_arc("s", "t", 3)
        assert network.capacity("s", "t") == 3
        assert network.capacity("t", "s") == 0

    def test_capacity_accumulates(self):
        network = FlowNetwork()
        network.add_arc(0, 1, 2)
        network.add_arc(0, 1, 3)
        assert network.capacity(0, 1) == 5

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlowNetwork().add_arc(0, 1, -1)

    def test_nodes(self):
        network = FlowNetwork()
        network.add_arc(0, 1)
        network.add_node(5)
        assert set(network.nodes()) == {0, 1, 5}

    def test_max_flow_same_endpoints(self):
        network = FlowNetwork()
        network.add_arc(0, 1)
        with pytest.raises(ValueError):
            network.max_flow(0, 0)

    def test_max_flow_unknown_nodes(self):
        network = FlowNetwork()
        assert network.max_flow("a", "b") == 0


class TestMaxFlowValues:
    def test_single_arc(self):
        network = FlowNetwork()
        network.add_arc("s", "t", 4)
        assert network.max_flow("s", "t") == 4

    def test_series_bottleneck(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 5)
        network.add_arc("a", "t", 2)
        assert network.max_flow("s", "t") == 2

    def test_parallel_paths(self):
        network = FlowNetwork()
        for middle in ("a", "b", "c"):
            network.add_arc("s", middle, 1)
            network.add_arc(middle, "t", 1)
        assert network.max_flow("s", "t") == 3

    def test_classic_diamond(self):
        # The textbook network where a naive augmenting path needs residual arcs.
        network = FlowNetwork()
        network.add_arc("s", "a", 1)
        network.add_arc("s", "b", 1)
        network.add_arc("a", "b", 1)
        network.add_arc("a", "t", 1)
        network.add_arc("b", "t", 1)
        assert network.max_flow("s", "t") == 2

    def test_disconnected_sink(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 1)
        network.add_node("t")
        assert network.max_flow("s", "t") == 0

    def test_cutoff_stops_early(self):
        network = FlowNetwork()
        for middle in range(5):
            network.add_arc("s", middle, 1)
            network.add_arc(middle, "t", 1)
        assert network.max_flow("s", "t", cutoff=2) == 2

    def test_larger_grid_flow(self):
        # 3x3 grid of unit arcs from left column to right column.
        network = FlowNetwork()
        for row in range(3):
            network.add_arc("s", ("l", row), 1)
            network.add_arc(("r", row), "t", 1)
            network.add_arc(("l", row), ("r", row), 1)
        assert network.max_flow("s", "t") == 3

    def test_integer_capacities(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 10)
        network.add_arc("a", "t", 7)
        network.add_arc("s", "t", 4)
        assert network.max_flow("s", "t") == 11


class TestMinCut:
    def test_min_cut_reachable_after_flow(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 1)
        network.add_arc("a", "t", 1)
        network.max_flow("s", "t")
        reachable = network.min_cut_reachable("s")
        assert "s" in reachable
        assert "t" not in reachable

    def test_min_cut_separates_bottleneck(self):
        network = FlowNetwork()
        network.add_arc("s", "a", 5)
        network.add_arc("a", "b", 1)
        network.add_arc("b", "t", 5)
        network.max_flow("s", "t")
        reachable = network.min_cut_reachable("s")
        assert "a" in reachable
        assert "b" not in reachable


class TestUnitMaxFlow:
    def test_unit_max_flow_path(self):
        arcs = [(0, 1), (1, 2)]
        assert unit_max_flow(arcs, 0, 2) == 1

    def test_unit_max_flow_disjoint_paths(self):
        arcs = [(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)]
        assert unit_max_flow(arcs, 0, 4) == 3

    def test_unit_max_flow_with_cutoff(self):
        arcs = [(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)]
        assert unit_max_flow(arcs, 0, 4, cutoff=1) == 1

    def test_unit_max_flow_no_path(self):
        assert unit_max_flow([(0, 1)], 0, 5) == 0

"""Unit tests for BFS/DFS traversal, distances and diameters."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs import DiGraph, Graph
from repro.graphs import (
    INFINITY,
    all_pairs_distances,
    bfs_distances,
    bfs_tree,
    connected_components,
    diameter,
    distance,
    eccentricity,
    is_connected,
    is_simple_path,
    is_strongly_connected,
    path_length,
    radius,
    shortest_path,
)
from repro.graphs.traversal import dfs_preorder, induced_path_exists
from repro.graphs import generators


class TestBfs:
    def test_bfs_distances_path(self):
        graph = generators.path_graph(5)
        assert bfs_distances(graph, 0) == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_bfs_distances_unreachable_omitted(self):
        graph = Graph(edges=[(0, 1)], nodes=[2])
        assert 2 not in bfs_distances(graph, 0)

    def test_bfs_distances_missing_source(self):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(Graph(), 0)

    def test_bfs_tree_parents(self):
        graph = generators.path_graph(4)
        parents = bfs_tree(graph, 0)
        assert parents[0] is None
        assert parents[1] == 0
        assert parents[3] == 2

    def test_bfs_directed_respects_orientation(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2)])
        assert bfs_distances(digraph, 0) == {0: 0, 1: 1, 2: 2}
        assert bfs_distances(digraph, 2) == {2: 0}


class TestShortestPath:
    def test_path_endpoints(self):
        graph = generators.cycle_graph(6)
        path = shortest_path(graph, 0, 3)
        assert path[0] == 0
        assert path[-1] == 3
        assert len(path) == 4

    def test_path_same_node(self):
        graph = generators.path_graph(3)
        assert shortest_path(graph, 1, 1) == [1]

    def test_path_unreachable(self):
        graph = Graph(edges=[(0, 1)], nodes=[2])
        assert shortest_path(graph, 0, 2) is None

    def test_path_missing_nodes(self):
        graph = generators.path_graph(2)
        with pytest.raises(NodeNotFoundError):
            shortest_path(graph, 0, 99)
        with pytest.raises(NodeNotFoundError):
            shortest_path(graph, 99, 0)

    def test_distance_matches_path_length(self):
        graph = generators.grid_graph(3, 3)
        path = shortest_path(graph, (0, 0), (2, 2))
        assert distance(graph, (0, 0), (2, 2)) == len(path) - 1

    def test_distance_unreachable_is_infinite(self):
        graph = Graph(edges=[(0, 1)], nodes=[2])
        assert distance(graph, 0, 2) == INFINITY


class TestDfs:
    def test_dfs_preorder_visits_component(self):
        graph = generators.cycle_graph(5)
        order = dfs_preorder(graph, 0)
        assert set(order) == set(range(5))
        assert order[0] == 0

    def test_dfs_preorder_missing_source(self):
        with pytest.raises(NodeNotFoundError):
            dfs_preorder(Graph(), 7)


class TestConnectivityPredicates:
    def test_connected_components(self):
        graph = Graph(edges=[(0, 1), (2, 3)], nodes=[4])
        components = connected_components(graph)
        assert sorted(len(c) for c in components) == [1, 2, 2]

    def test_is_connected_true(self, cycle12):
        assert is_connected(cycle12)

    def test_is_connected_false(self):
        assert not is_connected(Graph(edges=[(0, 1)], nodes=[2]))

    def test_is_connected_empty(self):
        assert not is_connected(Graph())

    def test_strongly_connected_cycle(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2), (2, 0)])
        assert is_strongly_connected(digraph)

    def test_strongly_connected_false_for_dag(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2)])
        assert not is_strongly_connected(digraph)

    def test_strongly_connected_empty(self):
        assert not is_strongly_connected(DiGraph())


class TestDiameterAndRadius:
    def test_path_diameter(self):
        assert diameter(generators.path_graph(7)) == 6

    def test_cycle_diameter(self):
        assert diameter(generators.cycle_graph(8)) == 4

    def test_complete_graph_diameter(self):
        assert diameter(generators.complete_graph(6)) == 1

    def test_single_node_diameter(self):
        assert diameter(Graph(nodes=["only"])) == 0

    def test_disconnected_diameter_infinite(self):
        assert diameter(Graph(edges=[(0, 1)], nodes=[2])) == INFINITY

    def test_empty_graph_diameter_infinite(self):
        assert diameter(Graph()) == INFINITY

    def test_directed_diameter(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2), (2, 0)])
        assert diameter(digraph) == 2

    def test_directed_not_strongly_connected(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2)])
        assert diameter(digraph) == INFINITY

    def test_eccentricity(self):
        graph = generators.path_graph(5)
        assert eccentricity(graph, 0) == 4
        assert eccentricity(graph, 2) == 2

    def test_radius_le_diameter(self, petersen):
        assert radius(petersen) <= diameter(petersen)

    def test_petersen_diameter(self, petersen):
        assert diameter(petersen) == 2

    def test_hypercube_diameter_equals_dimension(self):
        for d in (2, 3, 4):
            assert diameter(generators.hypercube_graph(d)) == d

    def test_all_pairs_distances(self):
        graph = generators.cycle_graph(5)
        table = all_pairs_distances(graph)
        assert table[0][2] == 2
        assert len(table) == 5


class TestPathPredicates:
    def test_path_length(self):
        assert path_length([1, 2, 3]) == 2
        assert path_length([7]) == 0

    def test_path_length_empty_raises(self):
        with pytest.raises(ValueError):
            path_length([])

    def test_is_simple_path_true(self, cycle12):
        assert is_simple_path(cycle12, [0, 1, 2, 3])

    def test_is_simple_path_repeated_node(self, cycle12):
        assert not is_simple_path(cycle12, [0, 1, 0])

    def test_is_simple_path_nonedge(self, cycle12):
        assert not is_simple_path(cycle12, [0, 2])

    def test_is_simple_path_missing_node(self, cycle12):
        assert not is_simple_path(cycle12, [0, "ghost"])

    def test_is_simple_path_single_node(self, cycle12):
        assert is_simple_path(cycle12, [5])

    def test_is_simple_path_empty(self, cycle12):
        assert not is_simple_path(cycle12, [])

    def test_is_simple_path_directed(self):
        digraph = DiGraph(edges=[(0, 1), (1, 2)])
        assert is_simple_path(digraph, [0, 1, 2])
        assert not is_simple_path(digraph, [2, 1, 0])

    def test_induced_path_exists(self):
        assert induced_path_exists(Graph(edges=[(0, 1)]), [0, 1], forbidden=[5])
        assert not induced_path_exists(Graph(edges=[(0, 1)]), [0, 1], forbidden=[1])

"""Unit tests for vertex-disjoint path extraction (the Menger machinery)."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graphs import (
    Graph,
    are_internally_disjoint,
    is_simple_path,
    local_node_connectivity,
    truncate_paths_at_set,
    vertex_disjoint_paths,
)
from repro.graphs import generators


def assert_valid_disjoint_paths(graph, paths, source, target):
    """All paths are simple graph paths from source to target, internally disjoint."""
    assert paths, "expected at least one path"
    for path in paths:
        assert path[0] == source
        assert path[-1] == target
        assert is_simple_path(graph, path)
    assert are_internally_disjoint(paths)


class TestVertexDisjointPaths:
    def test_cycle_two_paths(self):
        graph = generators.cycle_graph(8)
        paths = vertex_disjoint_paths(graph, 0, 4)
        assert len(paths) == 2
        assert_valid_disjoint_paths(graph, paths, 0, 4)

    def test_adjacent_pair_includes_direct_edge(self):
        graph = generators.cycle_graph(6)
        paths = vertex_disjoint_paths(graph, 0, 1)
        assert [0, 1] in paths
        assert len(paths) == 2
        assert_valid_disjoint_paths(graph, paths, 0, 1)

    def test_count_matches_menger(self):
        graph = generators.hypercube_graph(3)
        for target in (3, 5, 7):
            paths = vertex_disjoint_paths(graph, 0, target)
            assert len(paths) == local_node_connectivity(graph, 0, target)
            assert_valid_disjoint_paths(graph, paths, 0, target)

    def test_complete_graph(self):
        graph = generators.complete_graph(6)
        paths = vertex_disjoint_paths(graph, 0, 5)
        assert len(paths) == 5
        assert_valid_disjoint_paths(graph, paths, 0, 5)

    def test_petersen(self, petersen):
        nodes = petersen.nodes()
        source, target = nodes[0], nodes[7]
        paths = vertex_disjoint_paths(petersen, source, target)
        assert len(paths) == 3
        assert_valid_disjoint_paths(petersen, paths, source, target)

    def test_k_cap(self):
        graph = generators.complete_graph(6)
        paths = vertex_disjoint_paths(graph, 0, 5, k=2)
        assert len(paths) == 2
        assert_valid_disjoint_paths(graph, paths, 0, 5)

    def test_k_cap_one_adjacent(self):
        graph = generators.complete_graph(4)
        paths = vertex_disjoint_paths(graph, 0, 1, k=1)
        assert paths == [[0, 1]]

    def test_no_path(self):
        graph = Graph(edges=[(0, 1)], nodes=[2])
        assert vertex_disjoint_paths(graph, 0, 2) == []

    def test_same_node_rejected(self):
        graph = generators.path_graph(3)
        with pytest.raises(ValueError):
            vertex_disjoint_paths(graph, 1, 1)

    def test_missing_node_rejected(self):
        graph = generators.path_graph(3)
        with pytest.raises(NodeNotFoundError):
            vertex_disjoint_paths(graph, 0, 77)

    def test_torus_four_paths(self):
        graph = generators.torus_graph(4, 4)
        paths = vertex_disjoint_paths(graph, (0, 0), (2, 2))
        assert len(paths) == 4
        assert_valid_disjoint_paths(graph, paths, (0, 0), (2, 2))

    def test_circulant_paths(self):
        graph = generators.circulant_graph(12, [1, 2, 3])
        paths = vertex_disjoint_paths(graph, 0, 6)
        assert len(paths) == 6
        assert_valid_disjoint_paths(graph, paths, 0, 6)

    def test_original_graph_untouched(self):
        graph = generators.cycle_graph(6)
        edges_before = sorted(map(sorted, graph.edges()))
        vertex_disjoint_paths(graph, 0, 1)
        assert sorted(map(sorted, graph.edges())) == edges_before


class TestAreInternallyDisjoint:
    def test_disjoint(self):
        assert are_internally_disjoint([[0, 1, 2], [0, 3, 2]])

    def test_shared_internal(self):
        assert not are_internally_disjoint([[0, 1, 2], [0, 1, 3]])

    def test_shared_endpoints_only(self):
        assert are_internally_disjoint([[0, 1, 5], [0, 2, 5], [0, 5]])

    def test_empty(self):
        assert are_internally_disjoint([])


class TestTruncatePathsAtSet:
    def test_basic_truncation(self):
        paths = [[0, 1, 2, 3], [0, 4, 5, 3]]
        truncated = truncate_paths_at_set(paths, {2, 5})
        assert truncated == [[0, 1, 2], [0, 4, 5]]

    def test_path_missing_set_dropped(self):
        paths = [[0, 1, 2], [0, 4, 5]]
        truncated = truncate_paths_at_set(paths, {2})
        assert truncated == [[0, 1, 2]]

    def test_source_in_set_not_counted(self):
        # The source (index 0) never counts as the "first occurrence".
        paths = [[2, 1, 3]]
        truncated = truncate_paths_at_set(paths, {2, 3})
        assert truncated == [[2, 1, 3]]

    def test_truncation_stops_at_first_occurrence(self):
        paths = [[0, 1, 2, 3, 4]]
        truncated = truncate_paths_at_set(paths, {2, 4})
        assert truncated == [[0, 1, 2]]

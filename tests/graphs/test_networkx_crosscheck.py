"""Cross-validation of the graph substrate against networkx.

The library itself never imports networkx; these tests use it purely as an
independent oracle for connectivity, shortest paths, diameters and separator
sizes on randomly generated instances, so that a bug in the from-scratch
substrate cannot silently skew every downstream theorem check.
"""

import random

import pytest

networkx = pytest.importorskip("networkx")

from repro.graphs import (
    Graph,
    diameter,
    distance,
    edge_connectivity,
    girth,
    is_connected,
    local_node_connectivity,
    minimum_separator,
    node_connectivity,
    vertex_disjoint_paths,
)
from repro.graphs import generators


def to_networkx(graph: Graph):
    nx_graph = networkx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


def random_graphs(count=8, seed=123):
    rng = random.Random(seed)
    graphs = []
    for index in range(count):
        n = rng.randint(8, 22)
        p = rng.uniform(0.15, 0.5)
        graphs.append(generators.gnp_random_graph(n, p, seed=rng.randint(0, 10 ** 6)))
    return graphs


NAMED = [
    generators.cycle_graph(11),
    generators.hypercube_graph(3),
    generators.petersen_graph(),
    generators.grid_graph(3, 4),
    generators.circulant_graph(12, [1, 3]),
    generators.complete_bipartite_graph(3, 4),
]


@pytest.mark.parametrize("graph", NAMED, ids=lambda g: g.name)
class TestNamedGraphsAgainstNetworkx:
    def test_connectivity_matches(self, graph):
        assert node_connectivity(graph) == networkx.node_connectivity(to_networkx(graph))

    def test_edge_connectivity_matches(self, graph):
        assert edge_connectivity(graph) == networkx.edge_connectivity(to_networkx(graph))

    def test_diameter_matches(self, graph):
        assert diameter(graph) == networkx.diameter(to_networkx(graph))

    def test_is_connected_matches(self, graph):
        assert is_connected(graph) == networkx.is_connected(to_networkx(graph))


class TestRandomGraphsAgainstNetworkx:
    @pytest.mark.parametrize("index,graph", list(enumerate(random_graphs())))
    def test_connectivity_and_distances(self, index, graph):
        nx_graph = to_networkx(graph)
        assert is_connected(graph) == networkx.is_connected(nx_graph)
        if not is_connected(graph):
            return
        assert node_connectivity(graph) == networkx.node_connectivity(nx_graph)
        nodes = graph.nodes()
        rng = random.Random(index)
        for _ in range(5):
            u, v = rng.sample(nodes, 2)
            assert distance(graph, u, v) == networkx.shortest_path_length(nx_graph, u, v)

    @pytest.mark.parametrize("index,graph", list(enumerate(random_graphs(count=5, seed=77))))
    def test_local_connectivity(self, index, graph):
        if not is_connected(graph):
            return
        nx_graph = to_networkx(graph)
        nodes = graph.nodes()
        rng = random.Random(index + 1000)
        for _ in range(4):
            u, v = rng.sample(nodes, 2)
            expected = networkx.connectivity.local_node_connectivity(nx_graph, u, v)
            assert local_node_connectivity(graph, u, v) == expected
            assert len(vertex_disjoint_paths(graph, u, v)) == expected

    @pytest.mark.parametrize("index,graph", list(enumerate(random_graphs(count=5, seed=999))))
    def test_minimum_separator_size(self, index, graph):
        if not is_connected(graph):
            return
        n = graph.number_of_nodes()
        if all(graph.degree(node) == n - 1 for node in graph.nodes()):
            return
        separator = minimum_separator(graph)
        assert len(separator) == networkx.node_connectivity(to_networkx(graph))


class TestGirthAgainstNetworkx:
    @pytest.mark.parametrize("graph", NAMED, ids=lambda g: g.name)
    def test_girth_matches(self, graph):
        expected = networkx.girth(to_networkx(graph)) if hasattr(networkx, "girth") else None
        if expected is None:
            pytest.skip("networkx version without girth()")
        assert girth(graph) == expected
